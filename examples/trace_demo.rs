//! Trace demo: record one estimation job as a structured event stream.
//!
//! Runs a windowed COUNT query with MA-TARW under logical telemetry,
//! records every walker step, charge, cache touch and resilience event
//! through the [`RingRecorder`], then:
//!
//! 1. exports the stream to `trace_demo.jsonl` (one JSON object per line),
//! 2. prints the `ma-cli trace --summary` cost tree — charged calls
//!    attributed to walk phases, split by endpoint and level-graph level,
//! 3. re-runs the identical job and checks the export is *byte-identical*
//!    — logical ticks make traces replayable artifacts, not log spew.
//!
//! Run with: `cargo run --release -p microblog-service --example trace_demo`
//!
//! [`RingRecorder`]: microblog_obs::RingRecorder

use microblog_analyzer::query::parse::parse_query;
use microblog_analyzer::Algorithm;
use microblog_api::ApiProfile;
use microblog_obs::{render_jsonl, RecorderConfig, TelemetryMode};
use microblog_platform::scenario::{twitter_2013, Scale};
use microblog_service::request::JobSpec;
use microblog_service::traceview::{record_job, TraceRun, TraceSummary};
use std::sync::Arc;

const QUERY: &str = "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'privacy' \
                     AND TIME BETWEEN DAY 0 AND DAY 303";

fn run_once() -> TraceRun {
    let scenario = twitter_2013(Scale::Tiny, 2014);
    let platform = Arc::new(scenario.platform);
    let query = parse_query(QUERY, platform.keywords()).expect("query parses");
    let spec = JobSpec::new(
        query,
        // T = 1 day keeps the level split visible in the cost tree.
        Algorithm::MaTarw {
            interval: Some(microblog_platform::Duration::DAY),
        },
        5_000,
        7,
    );
    record_job(
        platform,
        ApiProfile::twitter(),
        spec,
        TelemetryMode::Logical,
        RecorderConfig::default(),
    )
    .expect("single job within quota")
}

fn main() {
    println!("tracing: {QUERY}");
    let run = run_once();
    let jsonl = render_jsonl(&run.events);
    std::fs::write("trace_demo.jsonl", &jsonl).expect("write trace_demo.jsonl");
    println!(
        "recorded {} events ({} seen, {} lost) -> trace_demo.jsonl",
        run.events.len(),
        run.stats.total_seen(),
        run.stats.total_lost(),
    );

    let out = run.outcome.output().expect("estimate");
    println!(
        "estimate {:.3}  charged {}  samples {}\n",
        out.estimate.value, out.estimate.cost, out.estimate.samples
    );

    let summary = TraceSummary::from_events(&run.events);
    print!("{}", summary.render_text());

    // The acceptance bar from the paper-repro roadmap: the trace must
    // explain where (nearly) all the budget went.
    assert!(
        summary.attribution() >= 0.95,
        "attribution {:.3} below 95%",
        summary.attribution()
    );

    // Same seed + logical clock => the export replays byte-for-byte.
    let again = render_jsonl(&run_once().events);
    assert_eq!(jsonl, again, "logical traces must be byte-identical");
    println!("\ndemo OK: >=95% cost attribution, byte-identical replay");
}
