//! The same aggregate across Twitter-, Google+- and Tumblr-flavoured
//! platforms and API limits (the paper's §6: Figures 8, 12, 14).
//!
//! Demonstrates why absolute query costs differ wildly per platform:
//! Google+'s 20-results-per-call pages make everything ~10x costlier than
//! Twitter's 200-per-page timeline, and Tumblr's 1-request-per-10-seconds
//! quota dominates wall-clock time.
//!
//! Run with: `cargo run --release -p microblog-analyzer --example platform_comparison`

use microblog_analyzer::prelude::*;
use microblog_api::rate::{human_duration, wall_clock};
use microblog_platform::scenario::{google_plus_2013, tumblr_2013, twitter_2013, Scale};

fn main() {
    let budget = 30_000;
    println!("AVG(display-name length) of users who posted 'privacy', per platform\n");
    println!(
        "{:<10} {:>10} {:>10} {:>8} {:>12} {:>14}",
        "platform", "estimate", "truth", "rel.err", "API calls", "wall-clock"
    );

    let worlds = [
        (
            "twitter",
            twitter_2013(Scale::Small, 5),
            ApiProfile::twitter(),
        ),
        (
            "google+",
            google_plus_2013(Scale::Small, 5),
            ApiProfile::google_plus(),
        ),
        ("tumblr", tumblr_2013(Scale::Small, 5), ApiProfile::tumblr()),
    ];

    for (name, scenario, api) in worlds {
        let kw = scenario.keyword("privacy").expect("scenario keyword");
        // Tumblr's headline metric is likes per post (Fig. 14); the others
        // use display-name length (Fig. 11/12).
        let query = if name == "tumblr" {
            AggregateQuery::post_avg(
                UserMetric::KeywordPostLikes,
                UserMetric::KeywordPostCount,
                kw,
            )
            .in_window(scenario.window)
        } else {
            AggregateQuery::avg(UserMetric::DisplayNameLength, kw).in_window(scenario.window)
        };
        let analyzer = MicroblogAnalyzer::new(&scenario.platform, api);
        let truth = analyzer.ground_truth(&query).expect("ground truth");
        let est = analyzer
            .estimate(&query, budget, Algorithm::MaTarw { interval: None }, 11)
            .expect("estimation");
        println!(
            "{:<10} {:>10.2} {:>10.2} {:>7.1}% {:>12} {:>14}",
            name,
            est.value,
            truth,
            100.0 * est.relative_error(truth),
            est.cost,
            human_duration(wall_clock(analyzer.api_profile(), est.cost)),
        );
    }
    println!(
        "\n(the wall-clock column is what the paper's rate limits would cost in real time;\n \
         Tumblr's 1-call-per-10s quota is why sampling efficiency matters there most)"
    );
}
