//! Quickstart: estimate an aggregate over a synthetic microblog platform.
//!
//! Builds a small "Twitter 2013" world, then answers the paper's running
//! example — *AVG(number of followers) of users who tweeted `privacy` in
//! 2013* — through the rate-limited API with MA-TARW, and compares the
//! estimate against the exact ground truth.
//!
//! Run with: `cargo run --release -p microblog-analyzer --example quickstart`

use microblog_analyzer::prelude::*;
use microblog_api::rate::{human_duration, wall_clock};
use microblog_platform::scenario::{twitter_2013, Scale};

fn main() {
    println!("building a synthetic Twitter-2013 world (Scale::Small)...");
    let scenario = twitter_2013(Scale::Small, 2014);
    let platform = &scenario.platform;
    println!(
        "  {} users, {} posts, {} keywords",
        platform.user_count(),
        platform.post_count(),
        platform.keywords().len()
    );

    let kw = scenario.keyword("privacy").expect("scenario keyword");
    let query = AggregateQuery::avg(UserMetric::FollowerCount, kw).in_window(scenario.window);

    let analyzer = MicroblogAnalyzer::new(platform, ApiProfile::twitter());
    let truth = analyzer.ground_truth(&query).expect("ground truth defined");
    println!("\nquery : AVG(#followers) of users who posted 'privacy' in 2013");
    println!("truth : {truth:.2} (from the simulator's omniscient view)");

    let budget = 25_000;
    // T = 1 day: the paper's example segmentation. (`interval: None`
    // would auto-select T with pilot walks — §4.2.3 — but pilots are
    // noisy on worlds this small; see the interval_selection example.)
    let day = Some(microblog_platform::Duration::DAY);
    for (algo, label) in [
        (
            Algorithm::MaTarw { interval: day },
            "MA-TARW (topology-aware walk)",
        ),
        (
            Algorithm::MaSrw { interval: day },
            "MA-SRW  (level-by-level SRW)",
        ),
    ] {
        let est = analyzer
            .estimate(&query, budget, algo, 7)
            .expect("estimation");
        let wall = wall_clock(analyzer.api_profile(), est.cost);
        println!(
            "\n{label}\n  estimate {:.2}  (relative error {:.1}%)\n  cost {} API calls \
             ≈ {} of real Twitter wall-clock\n  {} samples across {} walk instance(s)",
            est.value,
            100.0 * est.relative_error(truth),
            est.cost,
            human_duration(wall),
            est.samples,
            est.instances,
        );
    }
}
