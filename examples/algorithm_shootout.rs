//! All estimators on one query at increasing budgets — a miniature of the
//! paper's Figure 8/10 cost-vs-accuracy story.
//!
//! Run with: `cargo run --release -p microblog-analyzer --example algorithm_shootout`

use microblog_analyzer::prelude::*;
use microblog_platform::scenario::{twitter_2013, Scale};
use microblog_platform::Duration;

fn main() {
    let scenario = twitter_2013(Scale::Small, 17);
    let platform = &scenario.platform;
    let kw = scenario.keyword("privacy").expect("scenario keyword");
    let analyzer = MicroblogAnalyzer::new(platform, ApiProfile::twitter());

    let avg = AggregateQuery::avg(UserMetric::FollowerCount, kw).in_window(scenario.window);
    let count = AggregateQuery::count(kw).in_window(scenario.window);
    let t_avg = analyzer.ground_truth(&avg).expect("avg truth");
    let t_count = analyzer.ground_truth(&count).expect("count truth");
    println!(
        "'privacy' ground truth: {} matching users, AVG(#followers) = {:.1}\n",
        t_count, t_avg
    );

    let day = Some(Duration::DAY);
    let algos: [(Algorithm, &AggregateQuery, f64); 5] = [
        (Algorithm::MaTarw { interval: day }, &avg, t_avg),
        (Algorithm::MaSrw { interval: day }, &avg, t_avg),
        (Algorithm::SrwTermInduced, &avg, t_avg),
        (Algorithm::MaTarw { interval: day }, &count, t_count),
        (
            Algorithm::MarkRecapture {
                view: ViewKind::level(Duration::DAY),
            },
            &count,
            t_count,
        ),
    ];

    println!(
        "{:<12} {:<6} {:>8} {:>12} {:>10} {:>9}",
        "algorithm", "query", "budget", "estimate", "rel.err", "samples"
    );
    for (algo, query, truth) in algos {
        let qname = match query.aggregate {
            Aggregate::Count => "COUNT",
            _ => "AVG",
        };
        for budget in [5_000u64, 15_000, 45_000] {
            match analyzer.estimate(query, budget, algo, 23) {
                Ok(est) => println!(
                    "{:<12} {:<6} {:>8} {:>12.1} {:>9.1}% {:>9}",
                    algo.name(),
                    qname,
                    budget,
                    est.value,
                    100.0 * est.relative_error(truth),
                    est.samples
                ),
                Err(e) => println!(
                    "{:<12} {:<6} {:>8} {:>12} {:>10} {:>9}",
                    algo.name(),
                    qname,
                    budget,
                    "-",
                    format!("({e})"),
                    "-"
                ),
            }
        }
    }
    println!("\nexpected shape: MA-TARW reaches low error at the smallest budgets;");
    println!("M&R needs collisions (Ω(√n) samples) before it can answer at all.");
}
