//! A social-science study: public attention to "privacy" before and after
//! a leak event.
//!
//! The paper's motivating example (§1) is a researcher measuring the
//! change in attitudes around the Snowden disclosures using only the free
//! rate-limited API. The synthetic world plants a "privacy" spike in early
//! June 2013 (day 156); this example estimates the COUNT of users who
//! posted the keyword *before* vs *after* the event, plus the count of
//! male users among them (a profile predicate, as in Fig. 13).
//!
//! Run with: `cargo run --release -p microblog-analyzer --example privacy_study`

use microblog_analyzer::prelude::*;
use microblog_platform::metric::ProfilePredicate;
use microblog_platform::scenario::{google_plus_2013, Scale};

fn main() {
    // Gender is rarely disclosed on Twitter, so — like the paper — the
    // gender-conditioned part of the study runs on Google+.
    println!("building a synthetic Google+ 2013 world...");
    let scenario = google_plus_2013(Scale::Small, 99);
    let platform = &scenario.platform;
    let kw = scenario.keyword("privacy").expect("scenario keyword");
    let leak_day = Timestamp::at_day(156);

    let before =
        AggregateQuery::count(kw).in_window(TimeWindow::new(scenario.window.start, leak_day));
    let after = AggregateQuery::count(kw).in_window(TimeWindow::new(leak_day, scenario.window.end));
    let after_male = after
        .clone()
        .with_predicate(ProfilePredicate::GenderIs(Gender::Male));

    let analyzer = MicroblogAnalyzer::new(platform, ApiProfile::google_plus());
    let algo = Algorithm::MaTarw { interval: None };
    let budget = 40_000;

    // NOTE: windows that end in the past cannot be seeded by today's
    // search API (its window is trailing); the paper sidesteps this by
    // always keeping "now" inside the window. For the pre-event count we
    // therefore estimate over the full period and subtract.
    let full = AggregateQuery::count(kw).in_window(scenario.window);
    let est_full = analyzer
        .estimate(&full, budget, algo, 1)
        .expect("full-period estimate");
    let est_after = analyzer
        .estimate(&after, budget, algo, 2)
        .expect("post-event estimate");
    let est_after_male = analyzer
        .estimate(&after_male, budget, algo, 3)
        .expect("post-event male estimate");
    let est_before = (est_full.value - est_after.value).max(0.0);

    let t_before = analyzer.ground_truth(&before).unwrap_or(0.0);
    let t_after = analyzer.ground_truth(&after).unwrap_or(0.0);
    let t_after_male = analyzer.ground_truth(&after_male).unwrap_or(0.0);

    println!("\nusers posting 'privacy' on Google+ (estimate vs truth):");
    println!("  before the leak (Jan–May):  {est_before:9.0}  vs {t_before:9.0}");
    println!(
        "  after the leak  (Jun–Oct):  {:9.0}  vs {t_after:9.0}",
        est_after.value
    );
    println!(
        "    of which male:            {:9.0}  vs {t_after_male:9.0}",
        est_after_male.value
    );
    let uplift_est = est_after.value / est_before.max(1.0);
    let uplift_truth = t_after / t_before.max(1.0);
    println!(
        "\nattention uplift after the event: {uplift_est:.1}x estimated ({uplift_truth:.1}x true)"
    );
    println!(
        "total query cost: {} API calls",
        est_full.cost + est_after.cost + est_after_male.cost
    );
}
