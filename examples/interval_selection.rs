//! The §4.2.3 time-interval selection mechanism, step by step.
//!
//! MICROBLOG-ANALYZER picks the level-by-level bucket width `T` by running
//! a cheap pilot random walk per candidate interval, estimating the
//! stylized-model parameters `h` (levels) and `d` (adjacent-level degree),
//! and ranking candidates by the Eq. (3) closed-form conductance. This
//! example prints the whole scoring table and then compares estimation
//! quality at the best and worst candidates.
//!
//! Run with: `cargo run --release -p microblog-analyzer --example interval_selection`

use microblog_analyzer::interval::{candidate_intervals, score_intervals};
use microblog_analyzer::prelude::*;
use microblog_analyzer::seeds::fetch_seeds;
use microblog_api::{CachingClient, MicroblogClient};
use microblog_platform::scenario::{twitter_2013, Scale};
use rand::SeedableRng;

fn main() {
    let scenario = twitter_2013(Scale::Small, 77);
    let kw = scenario.keyword("boston").expect("scenario keyword");
    let query = AggregateQuery::avg(UserMetric::FollowerCount, kw).in_window(scenario.window);

    let mut client = CachingClient::new(MicroblogClient::new(
        &scenario.platform,
        ApiProfile::twitter(),
    ));
    let seeds = fetch_seeds(&mut client, &query).expect("seeds");
    println!("seed users from the search API: {}", seeds.len());

    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let scores = score_intervals(
        &mut client,
        &query,
        &seeds,
        &candidate_intervals(),
        15,
        &mut rng,
    )
    .expect("interval scores");
    println!("\ncandidate intervals, best conductance first:");
    println!(
        "{:>4} {:>8} {:>8} {:>14}",
        "T", "h (est)", "d (est)", "conductance"
    );
    for s in &scores {
        println!(
            "{:>4} {:>8.1} {:>8.2} {:>14.3e}",
            s.interval.label(),
            s.h,
            s.d,
            s.conductance
        );
    }
    println!(
        "\npilot cost so far: {} API calls (the pilots share the client cache)",
        client.cost()
    );

    // Estimate the aggregate at the best and worst candidate T.
    let analyzer = MicroblogAnalyzer::new(&scenario.platform, ApiProfile::twitter());
    let truth = analyzer.ground_truth(&query).expect("truth");
    println!("\nAVG(#followers of 'boston' users) ground truth: {truth:.1}");
    for (label, interval) in [
        ("best-T", scores.first().expect("nonempty").interval),
        ("worst-T", scores.last().expect("nonempty").interval),
    ] {
        match analyzer.estimate(
            &query,
            25_000,
            Algorithm::MaSrw {
                interval: Some(interval),
            },
            3,
        ) {
            Ok(est) => println!(
                "  MA-SRW @ {label} ({}): estimate {:.1}, rel. error {:.1}%, cost {}",
                interval.label(),
                est.value,
                100.0 * est.relative_error(truth),
                est.cost
            ),
            Err(e) => println!("  MA-SRW @ {label} ({}): {e}", interval.label()),
        }
    }
}
