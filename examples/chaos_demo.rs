//! Chaos demo: the service under deterministic fault injection.
//!
//! Runs the same 8-query workload as `service_demo`, twice:
//!
//! 1. **Fault-free baseline** — isolated analyzers, no faults.
//! 2. **Through a faulty service** — every platform fetch passes through
//!    a [`FaultyPlatform`] that injects transient errors at 5% per
//!    attempt (capped at 3 consecutive per key), while the
//!    [`ResilientClient`] absorbs them with retries and backoff.
//!
//! Failed attempts charge a dedicated waste meter, never the walk's
//! budget, so every estimate stays bit-identical to the fault-free
//! baseline — the chaos shows up only in the resilience metrics.
//!
//! Run with: `cargo run --release -p microblog-service --example chaos_demo`
//!
//! [`FaultyPlatform`]: microblog_platform::FaultyPlatform
//! [`ResilientClient`]: microblog_api::ResilientClient

use microblog_analyzer::prelude::*;
use microblog_analyzer::query::parse::parse_query;
use microblog_api::RetryPolicy;
use microblog_platform::scenario::{twitter_2013, Scale};
use microblog_platform::FaultPlan;
use microblog_service::{JobSpec, Service, ServiceConfig};
use std::sync::Arc;

fn main() {
    println!("building a synthetic Twitter-2013 world (Scale::Small)...");
    let scenario = twitter_2013(Scale::Small, 2014);
    let api = ApiProfile::twitter();

    let texts = [
        "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'privacy'",
        "SELECT AVG(FOLLOWERS) FROM USERS WHERE KEYWORD = 'privacy'",
        "SELECT AVG(POSTS) FROM USERS WHERE KEYWORD = 'privacy'",
        "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'oprah winfrey'",
        "SELECT AVG(FOLLOWERS) FROM USERS WHERE KEYWORD = 'oprah winfrey'",
        "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'tahrir'",
        "SELECT AVG(FOLLOWERS) FROM USERS WHERE KEYWORD = 'tahrir'",
        "SELECT AVG(POSTS) FROM USERS WHERE KEYWORD = 'tahrir'",
    ];
    let budget = 6_000u64;
    let specs: Vec<JobSpec> = texts
        .iter()
        .enumerate()
        .map(|(i, text)| {
            JobSpec::new(
                parse_query(text, scenario.platform.keywords()).expect("query parses"),
                Algorithm::MaTarw {
                    interval: Some(microblog_platform::Duration::DAY),
                },
                budget,
                100 + i as u64,
            )
        })
        .collect();

    println!("\n── fault-free baseline ──");
    let analyzer = MicroblogAnalyzer::new(&scenario.platform, api.clone());
    let mut baseline = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let (est, _) = analyzer
            .estimate_with_cache(&spec.query, spec.budget, spec.algorithm, spec.seed, None)
            .expect("baseline estimation");
        println!(
            "  q{}: estimate {:>12.3}  cost {:>5} calls",
            i, est.value, est.cost
        );
        baseline.push(est);
    }

    let plan = FaultPlan::transient(2014, 0.05);
    println!("\n── through the service, with faults injected ──");
    println!(
        "  plan: 5% transient faults per fetch, deterministic (seed 2014), \
         capped runs; retries absorb every one"
    );
    let service = Service::new(
        Arc::new(scenario.platform),
        api,
        ServiceConfig {
            workers: 4,
            global_quota: Some(texts.len() as u64 * budget),
            fault_plan: Some(plan),
            retry: RetryPolicy::resilient().with_max_attempts(10),
            ..ServiceConfig::default()
        },
    );
    let handles: Vec<_> = specs
        .into_iter()
        .map(|spec| service.submit(spec).expect("quota covers every budget"))
        .collect();

    for (i, handle) in handles.iter().enumerate() {
        let outcome = handle.join();
        assert!(
            outcome.is_complete(),
            "capped transient faults must be fully absorbed: {outcome:?}"
        );
        let out = outcome.into_result().expect("complete");
        let identical = out.estimate.value.to_bits() == baseline[i].value.to_bits()
            && out.estimate.cost == baseline[i].cost;
        println!(
            "  q{}: estimate {:>12.3}  charged {:>5}  retries {:>3}, {:>3} calls wasted, \
             backoff {:>4}s (sim)  [{}]",
            i,
            out.estimate.value,
            out.charged,
            out.resilience.retries,
            out.resilience.wasted_calls(),
            out.resilience.total_wait().0.max(0),
            if identical {
                "bit-identical to baseline"
            } else {
                "DIVERGED"
            },
        );
        assert!(
            identical,
            "absorbed faults must leave estimates bit-identical"
        );
    }

    let metrics = service.metrics_snapshot();
    let injected = service
        .fault_injector()
        .expect("fault plan configured")
        .injected();
    println!("\n── what the chaos cost ──");
    println!(
        "  injected: {} transient, {} rate-limited, {} timeout, {} truncated ({} total)",
        injected.transient,
        injected.rate_limited,
        injected.timeout,
        injected.truncated,
        injected.total(),
    );
    println!(
        "  absorbed: {} retries, {} calls wasted, {}s simulated backoff; \
         {} breaker open(s)",
        metrics.retries, metrics.wasted_calls, metrics.backoff_secs, metrics.breaker_opens,
    );
    println!("\nservice metrics:\n{}", metrics.render_text());

    assert!(injected.total() > 0, "the plan must actually fire");
    assert!(metrics.retries > 0, "absorbing faults requires retries");
    assert_eq!(metrics.jobs_degraded, 0, "nothing should degrade here");
    println!("demo OK: every fault absorbed, every estimate bit-identical");
    service.shutdown();
}
