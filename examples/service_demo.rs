//! Service demo: many concurrent queries, one shared API cache.
//!
//! Runs the same workload twice over a small "Twitter 2013" world:
//!
//! 1. **Isolated baseline** — each of the 8 queries runs on its own
//!    analyzer, so every API call hits the platform.
//! 2. **Through the service** — all 8 queries are submitted at once to a
//!    4-worker [`Service`] with a [`SharedApiCache`] and a global quota.
//!    Queries overlap on keywords, so later walks find the hot users and
//!    search pages earlier walks already fetched.
//!
//! Logical charging keeps every estimate bit-identical between the two
//! runs; the win shows up purely as *actual* platform traffic.
//!
//! Run with: `cargo run --release -p microblog-service --example service_demo`
//!
//! [`Service`]: microblog_service::Service
//! [`SharedApiCache`]: microblog_service::SharedApiCache

use microblog_analyzer::prelude::*;
use microblog_analyzer::query::parse::parse_query;
use microblog_platform::scenario::{twitter_2013, Scale};
use microblog_service::{JobSpec, Service, ServiceConfig};
use std::sync::Arc;

fn main() {
    println!("building a synthetic Twitter-2013 world (Scale::Small)...");
    let scenario = twitter_2013(Scale::Small, 2014);
    let api = ApiProfile::twitter();

    // Eight queries from two analysts: both teams care about the same
    // hot topics, so their walks traverse overlapping users.
    let texts = [
        "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'privacy'",
        "SELECT AVG(FOLLOWERS) FROM USERS WHERE KEYWORD = 'privacy'",
        "SELECT AVG(POSTS) FROM USERS WHERE KEYWORD = 'privacy'",
        "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'oprah winfrey'",
        "SELECT AVG(FOLLOWERS) FROM USERS WHERE KEYWORD = 'oprah winfrey'",
        "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'tahrir'",
        "SELECT AVG(FOLLOWERS) FROM USERS WHERE KEYWORD = 'tahrir'",
        "SELECT AVG(POSTS) FROM USERS WHERE KEYWORD = 'tahrir'",
    ];
    let budget = 6_000u64;
    let specs: Vec<JobSpec> = texts
        .iter()
        .enumerate()
        .map(|(i, text)| {
            JobSpec::new(
                parse_query(text, scenario.platform.keywords()).expect("query parses"),
                // T = 1 day, the paper's example segmentation; auto-selection
                // pilots are noisy on worlds this small (see quickstart).
                Algorithm::MaTarw {
                    interval: Some(microblog_platform::Duration::DAY),
                },
                budget,
                100 + i as u64,
            )
        })
        .collect();

    println!("\n── isolated baseline (no shared cache) ──");
    let analyzer = MicroblogAnalyzer::new(&scenario.platform, api.clone());
    let mut baseline = Vec::new();
    let mut baseline_actual = 0u64;
    for (i, spec) in specs.iter().enumerate() {
        let (est, stats) = analyzer
            .estimate_with_cache(&spec.query, spec.budget, spec.algorithm, spec.seed, None)
            .expect("baseline estimation");
        baseline_actual += stats.actual_calls;
        println!(
            "  q{}: estimate {:>12.3}  cost {:>5} calls (all actual)",
            i, est.value, est.cost
        );
        baseline.push(est);
    }
    println!("  total actual platform calls: {baseline_actual}");

    println!("\n── through the service (shared cache, global quota) ──");
    let service = Service::new(
        Arc::new(scenario.platform),
        api,
        ServiceConfig {
            workers: 4,
            global_quota: Some(texts.len() as u64 * budget),
            ..ServiceConfig::default()
        },
    );
    let handles: Vec<_> = specs
        .into_iter()
        .map(|spec| service.submit(spec).expect("quota covers every budget"))
        .collect();
    println!(
        "  {} queries in flight on {} workers",
        handles.len(),
        service.workers()
    );

    let mut service_actual = 0u64;
    for (i, handle) in handles.iter().enumerate() {
        let out = handle.join().into_result().expect("service estimation");
        service_actual += out.cache.actual_calls;
        let identical = out.estimate.value.to_bits() == baseline[i].value.to_bits()
            && out.estimate.cost == baseline[i].cost;
        println!(
            "  q{}: estimate {:>12.3}  charged {:>5}, actual {:>5}, {:>4} shared hits  \
             [{}]",
            i,
            out.estimate.value,
            out.estimate.cost,
            out.cache.actual_calls,
            out.cache.shared_hits,
            if identical {
                "bit-identical to baseline"
            } else {
                "DIVERGED"
            },
        );
        assert!(
            identical,
            "logical charging must keep estimates bit-identical"
        );
    }

    let cache = service.cache_snapshot();
    let metrics = service.metrics_snapshot();
    println!("\n── what sharing bought ──");
    println!("  actual platform calls: {service_actual} vs {baseline_actual} isolated");
    println!(
        "  saved {} calls ({:.1}% of charged); shared-cache hit rate {:.1}% over {} entries",
        metrics.saved_calls,
        100.0 * metrics.savings_ratio(),
        100.0 * cache.hit_rate(),
        cache.entries,
    );
    println!(
        "  global quota: {} consumed of {} (reserved now: {})",
        service.quota().consumed(),
        service.quota().limit().expect("limited"),
        service.quota().reserved(),
    );
    println!("\nservice metrics:\n{}", metrics.render_text());

    assert!(cache.hits() > 0, "demo must show a nonzero shared hit rate");
    assert!(
        service_actual < baseline_actual,
        "shared cache must strictly reduce actual platform traffic"
    );
    println!("demo OK: nonzero hit rate, strictly fewer actual calls, identical estimates");
    service.shutdown();
}
