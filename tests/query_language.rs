//! End-to-end: SQL-ish text → parsed query → estimation → ground truth.

use microblog_analyzer::prelude::*;
use microblog_analyzer::query::parse::parse_query;
use microblog_analyzer::Algorithm;
use microblog_platform::scenario::{google_plus_2013, twitter_2013, Scale};
use microblog_platform::Duration;

#[test]
fn parsed_queries_match_hand_built_ones() {
    let s = twitter_2013(Scale::Tiny, 7001);
    let cat = s.platform.keywords();
    let parsed = parse_query(
        "SELECT AVG(FOLLOWERS) FROM USERS WHERE KEYWORD = 'boston' \
         AND TIME BETWEEN DAY 0 AND DAY 303",
        cat,
    )
    .unwrap();
    let built = AggregateQuery::avg(UserMetric::FollowerCount, s.keyword("boston").unwrap())
        .in_window(s.window);
    assert_eq!(
        parsed.ground_truth(&s.platform),
        built.ground_truth(&s.platform)
    );
}

#[test]
fn parsed_query_runs_through_the_analyzer() {
    let s = twitter_2013(Scale::Tiny, 7002);
    let q = parse_query(
        "SELECT AVG(NAME_LENGTH) FROM USERS WHERE KEYWORD = 'new york' \
         AND TIME BETWEEN DAY 0 AND DAY 303",
        s.platform.keywords(),
    )
    .unwrap();
    let analyzer = MicroblogAnalyzer::new(&s.platform, ApiProfile::twitter());
    let truth = analyzer.ground_truth(&q).unwrap();
    let est = analyzer
        .estimate(
            &q,
            25_000,
            Algorithm::MaSrw {
                interval: Some(Duration::DAY),
            },
            1,
        )
        .unwrap();
    assert!(
        est.relative_error(truth) < 0.2,
        "est {} truth {truth}",
        est.value
    );
}

#[test]
fn age_predicates_scope_ground_truth() {
    // Google+-flavoured world: high disclosure.
    let s = google_plus_2013(Scale::Tiny, 7003);
    let cat = s.platform.keywords();
    let all = parse_query(
        "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'new york' \
         AND TIME BETWEEN DAY 0 AND DAY 303",
        cat,
    )
    .unwrap();
    let disclosed = parse_query(
        "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'new york' \
         AND TIME BETWEEN DAY 0 AND DAY 303 AND AGE DISCLOSED",
        cat,
    )
    .unwrap();
    let adults = parse_query(
        "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'new york' \
         AND TIME BETWEEN DAY 0 AND DAY 303 AND AGE >= 30",
        cat,
    )
    .unwrap();
    let t_all = all.ground_truth(&s.platform).unwrap();
    let t_disclosed = disclosed.ground_truth(&s.platform).unwrap();
    let t_adults = adults.ground_truth(&s.platform).unwrap();
    assert!(t_all > 0.0);
    assert!(t_disclosed <= t_all);
    assert!(t_adults <= t_disclosed, "MinAge implies disclosure");
    assert!(t_disclosed > 0.4 * t_all, "Google+ discloses most ages");
}

#[test]
fn avg_age_of_disclosed_users_is_plausible() {
    let s = google_plus_2013(Scale::Tiny, 7004);
    let q = parse_query(
        "SELECT AVG(AGE) FROM USERS WHERE KEYWORD = 'new york' \
         AND TIME BETWEEN DAY 0 AND DAY 303 AND AGE DISCLOSED",
        s.platform.keywords(),
    )
    .unwrap();
    let truth = q.ground_truth(&s.platform).unwrap();
    assert!((16.0..60.0).contains(&truth), "avg age {truth}");
}

#[test]
fn parse_errors_do_not_panic_estimation_path() {
    let s = twitter_2013(Scale::Tiny, 7005);
    for bad in [
        "SELECT",
        "",
        "SELECT COUNT(*) FROM USERS",
        "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'no-such-keyword-at-all'",
        "DROP TABLE users",
    ] {
        assert!(
            parse_query(bad, s.platform.keywords()).is_err(),
            "{bad:?} should not parse"
        );
    }
}
