//! The same estimation pipeline across the three platform flavours and
//! their API limits (the paper's §6 Twitter/Google+/Tumblr coverage).

use microblog_analyzer::prelude::*;
use microblog_analyzer::Algorithm;
use microblog_platform::metric::ProfilePredicate;
use microblog_platform::scenario::{google_plus_2013, tumblr_2013, twitter_2013, Scale, Scenario};
use microblog_platform::Duration;

fn run_avg_display_name(s: &Scenario, api: ApiProfile, budget: u64, seed: u64) -> (f64, f64, u64) {
    let kw = s.keyword("privacy").unwrap();
    let q = AggregateQuery::avg(UserMetric::DisplayNameLength, kw).in_window(s.window);
    let analyzer = MicroblogAnalyzer::new(&s.platform, api);
    let truth = analyzer.ground_truth(&q).unwrap();
    let est = analyzer
        .estimate(
            &q,
            budget,
            Algorithm::MaTarw {
                interval: Some(Duration::DAY),
            },
            seed,
        )
        .expect("estimation");
    (est.value, truth, est.cost)
}

#[test]
fn twitter_pipeline_works() {
    let s = twitter_2013(Scale::Tiny, 2001);
    let (est, truth, _) = run_avg_display_name(&s, ApiProfile::twitter(), 30_000, 1);
    assert!(
        (est - truth).abs() / truth < 0.25,
        "est {est} truth {truth}"
    );
}

#[test]
fn google_plus_pipeline_works() {
    // Small scale: Tiny worlds leave too few 'privacy' adopters on the
    // sparser Google+ graph for a representative reachable closure.
    let s = google_plus_2013(Scale::Small, 2001);
    let (est, truth, _) = run_avg_display_name(&s, ApiProfile::google_plus(), 60_000, 2);
    assert!(
        (est - truth).abs() / truth < 0.25,
        "est {est} truth {truth}"
    );
}

#[test]
fn tumblr_pipeline_works() {
    let s = tumblr_2013(Scale::Small, 2001);
    let (est, truth, _) = run_avg_display_name(&s, ApiProfile::tumblr(), 60_000, 3);
    assert!(
        (est - truth).abs() / truth < 0.25,
        "est {est} truth {truth}"
    );
}

#[test]
fn google_plus_costs_more_per_sample_than_twitter() {
    // §6.2: "the absolute query cost is much higher than in Twitter ...
    // Google+ returns at most 20 results per invocation compared to 200".
    // Same world, same walk, different API profile: compare cost per
    // timeline fetched.
    let s = twitter_2013(Scale::Tiny, 2002);
    let cost_for = |api: ApiProfile| {
        use microblog_api::{CachingClient, MicroblogClient};
        use microblog_platform::UserId;
        let mut client = CachingClient::new(MicroblogClient::new(&s.platform, api));
        for u in 0..100u32 {
            client.user_timeline(UserId(u)).unwrap();
        }
        client.cost()
    };
    let tw = cost_for(ApiProfile::twitter());
    let gp = cost_for(ApiProfile::google_plus());
    // Mean chatter is ~25 posts/user: one 200-post Twitter page, but
    // usually two or more 20-post Google+ pages.
    assert!(
        gp > tw,
        "google+ ({gp}) should cost more than twitter ({tw})"
    );
}

#[test]
fn gender_predicate_needs_disclosure() {
    // On Twitter-like disclosure (~5%) the male-user count is a small
    // slice; on Google+ (85%) it is roughly half. The estimator should
    // reflect that structure.
    // Small scale: at Tiny size the level subgraph fragments (few
    // inter-level edges survive), which starves the walk — a world-size
    // artifact, not an estimator property.
    let g = google_plus_2013(Scale::Small, 2003);
    let kw = g.keyword("new york").unwrap();
    let total = AggregateQuery::count(kw).in_window(g.window);
    let male = total
        .clone()
        .with_predicate(ProfilePredicate::GenderIs(Gender::Male));
    let truth_total = total.ground_truth(&g.platform).unwrap();
    let truth_male = male.ground_truth(&g.platform).unwrap();
    assert!(
        truth_male > 0.2 * truth_total,
        "disclosure too low: {truth_male}/{truth_total}"
    );
    assert!(truth_male < 0.8 * truth_total);

    let analyzer = MicroblogAnalyzer::new(&g.platform, ApiProfile::google_plus());
    let est = analyzer
        .estimate(
            &male,
            80_000,
            Algorithm::MaTarw {
                interval: Some(Duration::DAY),
            },
            4,
        )
        .expect("estimation");
    let rel = est.relative_error(truth_male);
    assert!(rel < 0.6, "rel {rel}: est {} truth {truth_male}", est.value);
}
