//! Statistical validation of the estimators on small, fully-enumerable
//! worlds: consistency of MA-TARW's ESTIMATE-p machinery and the headline
//! comparative claims of the paper, averaged over many seeded runs.

use ma_bench::stats::term_subgraph;
use microblog_analyzer::prelude::*;
use microblog_analyzer::Algorithm;
use microblog_platform::scenario::{twitter_2013, Scale};
use microblog_platform::Duration;

/// Mean relative error of `algo` over `runs` independent runs.
fn mean_error(
    s: &microblog_platform::scenario::Scenario,
    q: &AggregateQuery,
    algo: Algorithm,
    budget: u64,
    runs: u64,
) -> f64 {
    let analyzer = MicroblogAnalyzer::new(&s.platform, ApiProfile::twitter());
    let truth = analyzer.ground_truth(q).expect("truth");
    let mut total = 0.0;
    let mut n = 0u64;
    for seed in 0..runs {
        if let Ok(e) = analyzer.estimate(q, budget, algo, seed) {
            total += e.relative_error(truth);
            n += 1;
        }
    }
    assert!(n * 2 >= runs, "too many failed runs ({n}/{runs})");
    total / n as f64
}

#[test]
fn tarw_count_is_consistent_across_seeds() {
    // The Hansen–Hurwitz construction should center on the truth: the
    // mean of many independent COUNT estimates lands near it.
    // Small world: Tiny level subgraphs fragment and starve the walk.
    let s = twitter_2013(Scale::Small, 4001);
    let q = AggregateQuery::count(s.keyword("boston").unwrap()).in_window(s.window);
    let analyzer = MicroblogAnalyzer::new(&s.platform, ApiProfile::twitter());
    let truth = analyzer.ground_truth(&q).unwrap();
    let mut sum = 0.0;
    let mut n = 0;
    for seed in 0..6 {
        if let Ok(e) = analyzer.estimate(
            &q,
            30_000,
            Algorithm::MaTarw {
                interval: Some(Duration::DAY),
            },
            seed,
        ) {
            sum += e.value;
            n += 1;
        }
    }
    assert!(n >= 4, "only {n} successful runs");
    let mean = sum / n as f64;
    let rel = (mean - truth).abs() / truth;
    assert!(
        rel < 0.3,
        "mean of {n} estimates {mean:.1} vs truth {truth} (rel {rel:.2})"
    );
}

#[test]
fn tarw_beats_srw_on_average() {
    // The paper's headline (Table 3): at equal budget, MA-TARW's error is
    // smaller than MA-SRW's on average.
    let s = twitter_2013(Scale::Tiny, 4002);
    let q = AggregateQuery::avg(UserMetric::FollowerCount, s.keyword("privacy").unwrap())
        .in_window(s.window);
    let budget = 12_000;
    let tarw = mean_error(
        &s,
        &q,
        Algorithm::MaTarw {
            interval: Some(Duration::DAY),
        },
        budget,
        8,
    );
    let srw = mean_error(
        &s,
        &q,
        Algorithm::MaSrw {
            interval: Some(Duration::DAY),
        },
        budget,
        8,
    );
    assert!(
        tarw < srw * 1.25,
        "MA-TARW ({tarw:.3}) should not be clearly worse than MA-SRW ({srw:.3})"
    );
}

#[test]
fn level_view_no_worse_than_full_graph() {
    // Figures 2–3: walking the level-by-level subgraph reaches a given
    // error much cheaper than the full social graph. At a fixed budget the
    // level walk should therefore have (at most) comparable error.
    let s = twitter_2013(Scale::Tiny, 4003);
    let q = AggregateQuery::avg(UserMetric::FollowerCount, s.keyword("privacy").unwrap())
        .in_window(s.window);
    let budget = 15_000;
    let level = mean_error(
        &s,
        &q,
        Algorithm::MaSrw {
            interval: Some(Duration::DAY),
        },
        budget,
        6,
    );
    let full = mean_error(&s, &q, Algorithm::SrwFullGraph, budget, 6);
    // On Tiny worlds the full-graph walk can do well in absolute terms
    // (everything is close); the claim is only that the level view is not
    // dramatically worse at equal budget (its advantage is in *cost*).
    assert!(
        level < full * 3.0 + 0.05,
        "level-by-level ({level:.3}) should not be dramatically worse than social graph ({full:.3})"
    );
}

#[test]
fn low_variance_metric_converges_faster() {
    // §6.2 on Fig. 11: display-name length needs far fewer queries than
    // follower count at the same accuracy because its variance is tiny.
    let s = twitter_2013(Scale::Tiny, 4004);
    let kw = s.keyword("new york").unwrap();
    let name_q = AggregateQuery::avg(UserMetric::DisplayNameLength, kw).in_window(s.window);
    let foll_q = AggregateQuery::avg(UserMetric::FollowerCount, kw).in_window(s.window);
    let budget = 8_000;
    let algo = Algorithm::MaTarw {
        interval: Some(Duration::DAY),
    };
    let name_err = mean_error(&s, &name_q, algo, budget, 6);
    let foll_err = mean_error(&s, &foll_q, algo, budget, 6);
    assert!(
        name_err < foll_err,
        "display-name error ({name_err:.3}) should beat follower error ({foll_err:.3})"
    );
    assert!(
        name_err < 0.10,
        "display-name estimate too loose: {name_err:.3}"
    );
}

#[test]
fn term_subgraph_recall_is_high() {
    // Table 2's recall claim on our worlds, across several keywords.
    let s = twitter_2013(Scale::Tiny, 4005);
    for kw in ["new york", "boston", "obamacare"] {
        let id = s.keyword(kw).unwrap();
        let sub = term_subgraph(&s.platform, id, s.window, Duration::DAY);
        if sub.graph.node_count() < 30 {
            continue; // too small for a meaningful recall at tiny scale
        }
        let st = sub.stats(id);
        assert!(st.recall > 0.55, "{kw}: recall {} too low", st.recall);
    }
}
