//! Validation of the reported uncertainty (Theorem 5.1's role): the
//! standard errors the estimators report should predict the actual spread
//! of estimates across independent runs.

use microblog_analyzer::prelude::*;
use microblog_analyzer::Algorithm;
use microblog_platform::scenario::{twitter_2013, Scale};
use microblog_platform::Duration;

/// Runs `algo` across seeds; returns (values, reported std errs).
fn spread(
    s: &microblog_platform::scenario::Scenario,
    q: &AggregateQuery,
    algo: Algorithm,
    budget: u64,
    runs: u64,
) -> (Vec<f64>, Vec<f64>) {
    let analyzer = MicroblogAnalyzer::new(&s.platform, ApiProfile::twitter());
    let mut values = Vec::new();
    let mut errs = Vec::new();
    for seed in 0..runs {
        if let Ok(e) = analyzer.estimate(q, budget, algo, seed) {
            values.push(e.value);
            if let Some(se) = e.std_err {
                errs.push(se);
            }
        }
    }
    (values, errs)
}

fn std_dev(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
}

#[test]
fn tarw_std_err_tracks_cross_run_spread() {
    let s = twitter_2013(Scale::Small, 8001);
    let q = AggregateQuery::count(s.keyword("boston").unwrap()).in_window(s.window);
    let (values, errs) = spread(
        &s,
        &q,
        Algorithm::MaTarw {
            interval: Some(Duration::DAY),
        },
        30_000,
        8,
    );
    assert!(values.len() >= 6, "too few successful runs");
    assert!(!errs.is_empty(), "TARW must report a standard error");
    let observed = std_dev(&values);
    let reported = errs.iter().sum::<f64>() / errs.len() as f64;
    // Same order of magnitude: the reported per-run std error should be
    // within a factor of ~4 of the observed cross-run spread. (They are
    // not identical quantities — cross-run spread includes seed-choice
    // variation — but a 10x mismatch would mean the variance tracking of
    // Theorem 5.1's role is broken.)
    assert!(
        reported > observed / 4.0 && reported < observed * 4.0,
        "reported {reported:.1} vs observed {observed:.1}"
    );
}

#[test]
fn srw_batch_std_err_is_reported_with_enough_samples() {
    let s = twitter_2013(Scale::Tiny, 8002);
    let q = AggregateQuery::avg(
        UserMetric::DisplayNameLength,
        s.keyword("new york").unwrap(),
    )
    .in_window(s.window);
    let analyzer = MicroblogAnalyzer::new(&s.platform, ApiProfile::twitter());
    let est = analyzer
        .estimate(
            &q,
            30_000,
            Algorithm::MaSrw {
                interval: Some(Duration::DAY),
            },
            3,
        )
        .unwrap();
    let se = est.std_err.expect("enough samples for batch means");
    // The truth should be within a few reported standard errors.
    let truth = analyzer.ground_truth(&q).unwrap();
    assert!(
        (est.value - truth).abs() < 8.0 * se.max(0.05),
        "value {} truth {truth} se {se}",
        est.value
    );
}

#[test]
fn more_instances_tighten_tarw_std_err() {
    use microblog_analyzer::walker::tarw::{estimate as tarw, TarwConfig};
    use microblog_api::{CachingClient, MicroblogClient, QueryBudget};
    use rand::SeedableRng;

    let s = twitter_2013(Scale::Tiny, 8003);
    let q = AggregateQuery::count(s.keyword("new york").unwrap()).in_window(s.window);
    let run = |max_instances: usize| {
        let mut client = CachingClient::new(MicroblogClient::with_budget(
            &s.platform,
            ApiProfile::twitter(),
            QueryBudget::limited(500_000),
        ));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        let cfg = TarwConfig {
            interval: Some(Duration::DAY),
            max_instances,
            ..Default::default()
        };
        tarw(&mut client, &q, &cfg, &mut rng).unwrap()
    };
    let few = run(20);
    let many = run(400);
    let (se_few, se_many) = (few.std_err.unwrap(), many.std_err.unwrap());
    assert!(
        se_many < se_few,
        "std err should shrink with instances: {se_few:.2} -> {se_many:.2}"
    );
}
