//! End-to-end integration: every algorithm × every aggregate kind on a
//! seeded world, estimates checked against exact ground truth.

use microblog_analyzer::prelude::*;
use microblog_analyzer::{Algorithm, ViewKind};
use microblog_platform::scenario::{twitter_2013, Scale};
use microblog_platform::Duration;

fn world() -> microblog_platform::scenario::Scenario {
    twitter_2013(Scale::Tiny, 1001)
}

/// COUNT/SUM need enough keyword users for the level subgraph to stay
/// walk-connected; Tiny worlds fragment (a world-size artifact), so the
/// size-estimating tests run on a Small world.
fn small_world() -> microblog_platform::scenario::Scenario {
    twitter_2013(Scale::Small, 1001)
}

fn check(
    s: &microblog_platform::scenario::Scenario,
    q: &AggregateQuery,
    algo: Algorithm,
    budget: u64,
    tolerance: f64,
    seed: u64,
) {
    let analyzer = MicroblogAnalyzer::new(&s.platform, ApiProfile::twitter());
    let truth = analyzer.ground_truth(q).expect("ground truth defined");
    let est = analyzer
        .estimate(q, budget, algo, seed)
        .expect("estimation succeeds");
    let rel = est.relative_error(truth);
    assert!(
        rel < tolerance,
        "{} missed: est {:.2} vs truth {:.2} (rel {:.2}, budget {budget})",
        algo.name(),
        est.value,
        truth,
        rel
    );
    assert!(est.cost <= budget, "overspent budget");
}

#[test]
fn ma_tarw_avg_followers() {
    let s = world();
    let q = AggregateQuery::avg(UserMetric::FollowerCount, s.keyword("privacy").unwrap())
        .in_window(s.window);
    check(
        &s,
        &q,
        Algorithm::MaTarw {
            interval: Some(Duration::DAY),
        },
        50_000,
        0.5,
        1,
    );
}

#[test]
fn ma_tarw_count_users() {
    let s = small_world();
    let q = AggregateQuery::count(s.keyword("boston").unwrap()).in_window(s.window);
    check(
        &s,
        &q,
        Algorithm::MaTarw {
            interval: Some(Duration::DAY),
        },
        60_000,
        0.3,
        2,
    );
}

#[test]
fn ma_tarw_sum_posts() {
    let s = small_world();
    let q = AggregateQuery::sum(UserMetric::KeywordPostCount, s.keyword("boston").unwrap())
        .in_window(s.window);
    check(
        &s,
        &q,
        Algorithm::MaTarw {
            interval: Some(Duration::DAY),
        },
        60_000,
        0.4,
        3,
    );
}

#[test]
fn ma_tarw_post_avg_likes() {
    let s = world();
    let q = AggregateQuery::post_avg(
        UserMetric::KeywordPostLikes,
        UserMetric::KeywordPostCount,
        s.keyword("new york").unwrap(),
    )
    .in_window(s.window);
    check(
        &s,
        &q,
        Algorithm::MaTarw {
            interval: Some(Duration::DAY),
        },
        50_000,
        0.6,
        4,
    );
}

#[test]
fn ma_srw_avg_display_name() {
    let s = world();
    let q = AggregateQuery::avg(UserMetric::DisplayNameLength, s.keyword("privacy").unwrap())
        .in_window(s.window);
    // Low-variance metric: tight tolerance at modest budget (Fig. 11).
    check(
        &s,
        &q,
        Algorithm::MaSrw {
            interval: Some(Duration::DAY),
        },
        20_000,
        0.15,
        5,
    );
}

#[test]
fn srw_term_induced_avg() {
    let s = world();
    let q = AggregateQuery::avg(UserMetric::FollowerCount, s.keyword("new york").unwrap())
        .in_window(s.window);
    check(&s, &q, Algorithm::SrwTermInduced, 60_000, 0.6, 6);
}

#[test]
fn mark_recapture_count() {
    let s = world();
    let q = AggregateQuery::count(s.keyword("new york").unwrap()).in_window(s.window);
    check(
        &s,
        &q,
        Algorithm::MarkRecapture {
            view: ViewKind::level(Duration::DAY),
        },
        120_000,
        1.0,
        7,
    );
}

#[test]
fn windowed_query_estimates_subperiod() {
    let s = small_world();
    // Jul–Oct window (still includes "now", so search can seed it).
    let w = TimeWindow::new(Timestamp::at_day(180), s.window.end);
    let q = AggregateQuery::count(s.keyword("new york").unwrap()).in_window(w);
    check(
        &s,
        &q,
        Algorithm::MaTarw {
            interval: Some(Duration::DAY),
        },
        60_000,
        0.5,
        8,
    );
}

#[test]
fn estimates_improve_with_budget_on_average() {
    // Not guaranteed per-seed, so average over seeds and compare a small
    // against a large budget.
    let s = world();
    let q = AggregateQuery::avg(UserMetric::FollowerCount, s.keyword("privacy").unwrap())
        .in_window(s.window);
    let analyzer = MicroblogAnalyzer::new(&s.platform, ApiProfile::twitter());
    let truth = analyzer.ground_truth(&q).unwrap();
    let mean_err = |budget: u64| {
        let mut total = 0.0;
        let mut n = 0;
        for seed in 0..4 {
            if let Ok(e) = analyzer.estimate(
                &q,
                budget,
                Algorithm::MaTarw {
                    interval: Some(Duration::DAY),
                },
                seed,
            ) {
                total += e.relative_error(truth);
                n += 1;
            }
        }
        assert!(n > 0, "no successful trials at budget {budget}");
        total / n as f64
    };
    let small = mean_err(4_000);
    let large = mean_err(80_000);
    assert!(
        large <= small + 0.05,
        "error should not grow with budget: small {small:.3} vs large {large:.3}"
    );
}
