//! Budget discipline across the whole pipeline: estimators never overspend,
//! never double-charge cached requests, and degrade gracefully.

use microblog_analyzer::prelude::*;
use microblog_analyzer::{Algorithm, ViewKind};
use microblog_api::{ApiError, CachingClient, MicroblogClient, QueryBudget};
use microblog_platform::scenario::{twitter_2013, Scale};
use microblog_platform::Duration;

#[test]
fn every_algorithm_respects_every_budget() {
    let s = twitter_2013(Scale::Tiny, 3001);
    let kw = s.keyword("privacy").unwrap();
    let avg = AggregateQuery::avg(UserMetric::FollowerCount, kw).in_window(s.window);
    let count = AggregateQuery::count(kw).in_window(s.window);
    let analyzer = MicroblogAnalyzer::new(&s.platform, ApiProfile::twitter());
    let day = Some(Duration::DAY);
    let cases: Vec<(Algorithm, &AggregateQuery)> = vec![
        (Algorithm::MaTarw { interval: day }, &avg),
        (Algorithm::MaSrw { interval: day }, &avg),
        (Algorithm::SrwTermInduced, &avg),
        (Algorithm::SrwFullGraph, &avg),
        (
            Algorithm::MarkRecapture {
                view: ViewKind::level(Duration::DAY),
            },
            &count,
        ),
    ];
    for (algo, q) in cases {
        for budget in [200u64, 2_000, 20_000] {
            match analyzer.estimate(q, budget, algo, 1) {
                Ok(est) => {
                    assert!(
                        est.cost <= budget,
                        "{} overspent: {} > {budget}",
                        algo.name(),
                        est.cost
                    );
                    assert!(est.value.is_finite());
                }
                Err(EstimateError::NoSamples | EstimateError::NoSeeds) => {}
                Err(e) => panic!("{} failed unexpectedly at {budget}: {e}", algo.name()),
            }
        }
    }
}

#[test]
fn budget_is_shared_across_pipeline_stages() {
    // Seed search + pilot walks + main walk all draw from one budget.
    let s = twitter_2013(Scale::Tiny, 3002);
    let kw = s.keyword("new york").unwrap();
    let q = AggregateQuery::avg(UserMetric::FollowerCount, kw).in_window(s.window);
    let budget = QueryBudget::limited(10_000);
    let mut client = CachingClient::new(MicroblogClient::with_budget(
        &s.platform,
        ApiProfile::twitter(),
        budget.clone(),
    ));
    let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(5);
    let cfg = microblog_analyzer::walker::tarw::TarwConfig::default(); // auto interval
    let est = microblog_analyzer::walker::tarw::estimate(&mut client, &q, &cfg, &mut rng);
    match est {
        Ok(e) => {
            assert_eq!(
                e.cost,
                budget.spent(),
                "estimate cost must equal budget spend"
            );
            assert!(budget.spent() <= 10_000);
        }
        Err(EstimateError::NoSamples) => assert!(budget.spent() <= 10_000),
        Err(e) => panic!("unexpected: {e}"),
    }
}

#[test]
fn exhausted_budget_blocks_all_endpoints() {
    let s = twitter_2013(Scale::Tiny, 3003);
    let kw = s.keyword("privacy").unwrap();
    // 2 calls: one Twitter connections request (followers + followees).
    let budget = QueryBudget::limited(2);
    let mut client =
        MicroblogClient::with_budget(&s.platform, ApiProfile::twitter(), budget.clone());
    client
        .connections(microblog_platform::UserId(0))
        .expect("first request fits");
    assert_eq!(budget.remaining(), Some(0));
    assert!(matches!(
        client.search(kw),
        Err(ApiError::BudgetExhausted { .. })
    ));
    assert!(matches!(
        client.user_timeline(microblog_platform::UserId(0)),
        Err(ApiError::BudgetExhausted { .. })
    ));
}

#[test]
fn caching_makes_second_estimate_cheaper_through_shared_client() {
    let s = twitter_2013(Scale::Tiny, 3004);
    let kw = s.keyword("boston").unwrap();
    let q = AggregateQuery::avg(UserMetric::DisplayNameLength, kw).in_window(s.window);
    let budget = QueryBudget::limited(1_000_000);
    let mut client = CachingClient::new(MicroblogClient::with_budget(
        &s.platform,
        ApiProfile::twitter(),
        budget.clone(),
    ));
    let cfg = microblog_analyzer::walker::srw::SrwConfig::new(ViewKind::level(Duration::DAY));
    let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(6);
    // First run pays for the region it explores...
    let _ = microblog_analyzer::walker::srw::estimate(&mut client, &q, &cfg, &mut rng);
    let after_first = budget.spent();
    // ...a second run over the same client revisits mostly cached users.
    let _ = microblog_analyzer::walker::srw::estimate(&mut client, &q, &cfg, &mut rng);
    let second_cost = budget.spent() - after_first;
    assert!(
        (second_cost as f64) < 0.8 * after_first as f64,
        "second run ({second_cost}) should be much cheaper than first ({after_first})"
    );
}

#[test]
fn wall_clock_reporting_is_consistent() {
    use microblog_api::rate::wall_clock;
    let s = twitter_2013(Scale::Tiny, 3005);
    let kw = s.keyword("privacy").unwrap();
    let q = AggregateQuery::avg(UserMetric::FollowerCount, kw).in_window(s.window);
    let analyzer = MicroblogAnalyzer::new(&s.platform, ApiProfile::twitter());
    let est = analyzer
        .estimate(
            &q,
            20_000,
            Algorithm::MaTarw {
                interval: Some(Duration::DAY),
            },
            2,
        )
        .unwrap();
    let twitter_time = wall_clock(&ApiProfile::twitter(), est.cost);
    let tumblr_time = wall_clock(&ApiProfile::tumblr(), est.cost);
    // Tumblr at 1 call / 10 s is orders of magnitude slower than Twitter's
    // 180 / 15 min for the same call count.
    assert!(tumblr_time > twitter_time);
}
