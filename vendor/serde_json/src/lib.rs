//! Offline stand-in for `serde_json`.
//!
//! Prints and parses JSON text against the vendored `serde` [`Value`]
//! model. Supports the entry points the workspace uses (`to_writer`,
//! `from_reader`, `to_string`, `to_string_pretty`, `from_str`) plus the
//! JSON grammar needed by the snapshots and the service wire format:
//! full string escapes (including `\uXXXX` surrogate pairs), integer vs
//! float number detection, and arbitrarily nested arrays/objects.

#![forbid(unsafe_code)]

use std::io::{Read, Write};

pub use serde::value::Value;
use serde::{Deserialize, Serialize};

/// JSON formatting or parsing failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching upstream's signature shapes.
pub type Result<T> = std::result::Result<T, Error>;

// ----------------------------------------------------------------- printing

/// Serializes `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes `value` as compact JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let text = to_string(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::new(format!("io: {e}")))
}

/// Serializes `value` as pretty JSON into `writer`.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let text = to_string_pretty(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::new(format!("io: {e}")))
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                let text = x.to_string();
                out.push_str(&text);
                // Keep floats distinguishable from integers on re-parse.
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // Upstream serde_json also emits null for non-finite floats.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parsing

/// Parses a value of `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse_value_str(text)?;
    Ok(T::from_value(&value)?)
}

/// Parses a value of `T` from a reader's full contents.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| Error::new(format!("io: {e}")))?;
    from_str(&text)
}

/// Parses JSON text into a raw [`Value`] tree.
pub fn parse_value_str(text: &str) -> Result<Value> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after JSON value"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(self.err("JSON nesting too deep"));
        }
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected JSON value")),
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let byte = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let unit = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: require a \uXXXX low half.
                                if !(self.eat_literal("\\u")) {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let unit = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0", "float stays float");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<f64>("1e3").unwrap(), 1000.0);
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn round_trips_strings_with_escapes() {
        let s = "a \"quote\" \\ slash \n tab\t control\u{1} unicode \u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        // Surrogate-pair escape form parses too.
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\"").unwrap(),
            "\u{1F600}"
        );
        assert_eq!(from_str::<String>("\"\\u00e9\"").unwrap(), "é");
    }

    #[test]
    fn round_trips_containers() {
        let v: Vec<(u32, u32)> = vec![(1, 2), (3, 4)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3,4]]");
        assert_eq!(from_str::<Vec<(u32, u32)>>(&json).unwrap(), v);

        let o: Option<Vec<u8>> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
        assert_eq!(from_str::<Option<Vec<u8>>>("null").unwrap(), None);
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let v = Value::Map(vec![
            ("a".into(), Value::Seq(vec![Value::I64(1), Value::Null])),
            ("b".into(), Value::Str("x".into())),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(parse_value_str(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(parse_value_str("{\"a\":}").is_err());
        assert!(parse_value_str("[1,]").is_err());
        assert!(parse_value_str("\"\\ud800\"").is_err(), "lone surrogate");
    }

    #[test]
    fn writer_reader_round_trip() {
        let mut buf = Vec::new();
        to_writer(&mut buf, &vec![1u32, 2, 3]).unwrap();
        let back: Vec<u32> = from_reader(&buf[..]).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }
}
