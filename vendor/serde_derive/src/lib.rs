//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored Value-model `serde` by hand-parsing the item token stream
//! (the environment has no `syn`/`quote`). Supported shapes — everything
//! the workspace derives on:
//!
//! * structs with named fields → JSON objects,
//! * newtype structs → transparent,
//! * tuple structs (≥ 2 fields) → arrays,
//! * unit structs → `null`,
//! * enums: unit variants → strings; tuple/struct variants →
//!   externally-tagged `{ "Variant": payload }`.
//!
//! Generic parameters are not supported (none of the repo's serialized
//! types are generic).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a derive input.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => struct_ser(name, fields),
        Item::Enum { name, variants } => enum_ser(name, variants),
    };
    let name = item_name(&item);
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn to_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n\
        }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => struct_de(name, fields),
        Item::Enum { name, variants } => enum_de(name, variants),
    };
    let name = item_name(&item);
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn from_value(__v: &::serde::value::Value) \
                -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
        }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

fn item_name(item: &Item) -> &str {
    match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    }
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    if matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stand-in: generic type `{name}` not supported");
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: unexpected enum body {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive stand-in: cannot derive for `{other}`"),
    }
}

type Tokens = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skips leading attributes (`#[...]`, doc comments) and visibility.
fn skip_attrs_and_vis(tokens: &mut Tokens) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                // Optional pub(crate)/pub(super) scope group.
                if matches!(tokens.peek(), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    tokens.next();
                }
            }
            _ => return,
        }
    }
}

/// Splits a field-list token stream on top-level commas (tracking `<...>`
/// depth so generic arguments don't split).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !current.is_empty() {
                    out.push(std::mem::take(&mut current));
                }
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|field_tokens| {
            let mut tokens = field_tokens.into_iter().peekable();
            skip_attrs_and_vis_vec(&mut tokens);
            match tokens.next() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected field name, got {other:?}"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    split_top_level(stream)
        .into_iter()
        .map(|variant_tokens| {
            let mut tokens = variant_tokens.into_iter().peekable();
            skip_attrs_and_vis_vec(&mut tokens);
            let name = match tokens.next() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected variant name, got {other:?}"),
            };
            let fields = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                None => Fields::Unit,
                other => panic!("serde_derive: unexpected variant body {other:?}"),
            };
            (name, fields)
        })
        .collect()
}

type VecTokens = std::iter::Peekable<std::vec::IntoIter<TokenTree>>;

fn skip_attrs_and_vis_vec(tokens: &mut VecTokens) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if matches!(tokens.peek(), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    tokens.next();
                }
            }
            _ => return,
        }
    }
}

// ------------------------------------------------------------- generation

fn struct_ser(_name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => "::serde::value::Value::Null".to_string(),
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Seq(vec![{}])", items.join(", "))
        }
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::value::Value::Map(vec![{}])", entries.join(", "))
        }
    }
}

fn struct_de(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                .collect();
            format!(
                "let __seq = __v.as_seq().ok_or_else(|| ::serde::Error::custom(\
                    format!(\"{name}: expected array, got {{}}\", __v.kind())))?;\n\
                 if __seq.len() != {n} {{\n\
                    return ::std::result::Result::Err(::serde::Error::custom(\
                        format!(\"{name}: expected {n} elements, got {{}}\", __seq.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                            ::serde::value::field(__map, \"{f}\"))\
                            .map_err(|e| ::serde::Error::custom(\
                                format!(\"{name}.{f}: {{e}}\")))?"
                    )
                })
                .collect();
            format!(
                "let __map = __v.as_map().ok_or_else(|| ::serde::Error::custom(\
                    format!(\"{name}: expected object, got {{}}\", __v.kind())))?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})",
                inits = inits.join(", ")
            )
        }
    }
}

fn enum_ser(name: &str, variants: &[(String, Fields)]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|(v, fields)| match fields {
            Fields::Unit => format!(
                "{name}::{v} => ::serde::value::Value::Str(::std::string::String::from(\"{v}\"))"
            ),
            Fields::Tuple(1) => format!(
                "{name}::{v}(__f0) => ::serde::value::Value::Map(vec![\
                    (::std::string::String::from(\"{v}\"), \
                     ::serde::Serialize::to_value(__f0))])"
            ),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                    .collect();
                format!(
                    "{name}::{v}({binds}) => ::serde::value::Value::Map(vec![\
                        (::std::string::String::from(\"{v}\"), \
                         ::serde::value::Value::Seq(vec![{items}]))])",
                    binds = binds.join(", "),
                    items = items.join(", ")
                )
            }
            Fields::Named(fields) => {
                let binds = fields.join(", ");
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_value({f}))"
                        )
                    })
                    .collect();
                format!(
                    "{name}::{v} {{ {binds} }} => ::serde::value::Value::Map(vec![\
                        (::std::string::String::from(\"{v}\"), \
                         ::serde::value::Value::Map(vec![{entries}]))])",
                    entries = entries.join(", ")
                )
            }
        })
        .collect();
    format!("match self {{\n{}\n}}", arms.join(",\n"))
}

fn enum_de(name: &str, variants: &[(String, Fields)]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|(_, f)| matches!(f, Fields::Unit))
        .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v})"))
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter(|(_, f)| !matches!(f, Fields::Unit))
        .map(|(v, fields)| match fields {
            Fields::Tuple(1) => format!(
                "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                    ::serde::Deserialize::from_value(__payload)?))"
            ),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                    .collect();
                format!(
                    "\"{v}\" => {{\n\
                        let __seq = __payload.as_seq().ok_or_else(|| \
                            ::serde::Error::custom(\"{name}::{v}: expected array\"))?;\n\
                        if __seq.len() != {n} {{\n\
                            return ::std::result::Result::Err(::serde::Error::custom(\
                                \"{name}::{v}: wrong arity\"));\n\
                        }}\n\
                        ::std::result::Result::Ok({name}::{v}({items}))\n\
                    }}",
                    items = items.join(", ")
                )
            }
            Fields::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(\
                                ::serde::value::field(__fields, \"{f}\"))?"
                        )
                    })
                    .collect();
                format!(
                    "\"{v}\" => {{\n\
                        let __fields = __payload.as_map().ok_or_else(|| \
                            ::serde::Error::custom(\"{name}::{v}: expected object\"))?;\n\
                        ::std::result::Result::Ok({name}::{v} {{ {inits} }})\n\
                    }}",
                    inits = inits.join(", ")
                )
            }
            Fields::Unit => unreachable!("filtered above"),
        })
        .collect();
    format!(
        "match __v {{\n\
            ::serde::value::Value::Str(__s) => match __s.as_str() {{\n\
                {unit_arms},\n\
                __other => ::std::result::Result::Err(::serde::Error::custom(\
                    format!(\"{name}: unknown variant {{__other}}\"))),\n\
            }},\n\
            ::serde::value::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                let (__tag, __payload) = &__entries[0];\n\
                match __tag.as_str() {{\n\
                    {tagged_arms},\n\
                    __other => ::std::result::Result::Err(::serde::Error::custom(\
                        format!(\"{name}: unknown variant {{__other}}\"))),\n\
                }}\n\
            }}\n\
            __other => ::std::result::Result::Err(::serde::Error::custom(\
                format!(\"{name}: expected variant, got {{}}\", __other.kind()))),\n\
        }}",
        unit_arms = if unit_arms.is_empty() {
            "__never if false => unreachable!()".to_string()
        } else {
            unit_arms.join(",\n")
        },
        tagged_arms = if tagged_arms.is_empty() {
            "__never if false => unreachable!()".to_string()
        } else {
            tagged_arms.join(",\n")
        },
    )
}
