//! Offline stand-in for `criterion`.
//!
//! Keeps the workspace's `harness = false` benchmarks compiling and
//! runnable without crates.io: each registered benchmark runs its
//! routine `sample_size` times and prints min/mean wall-clock per
//! iteration. No statistical analysis, plots, or baselines — this is a
//! smoke-and-timing harness, not a measurement instrument.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Upstream defaults to 100; keep runs quick offline.
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

/// A benchmark identifier of the form `function/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function: &str, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Times a routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("bench {name:<40} (no samples)");
            return;
        }
        let min = self.samples.iter().min().copied().unwrap_or_default();
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        println!(
            "bench {name:<40} min {min:>12?}  mean {mean:>12?}  ({} iters)",
            self.samples.len()
        );
    }
}

/// Declares a group of benchmark functions; both upstream forms accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_runs() {
        benches();
    }
}
