//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the minimal API surface it uses: [`Mutex`], [`RwLock`] and
//! [`Condvar`] with `parking_lot` semantics — locking never returns a
//! poison error (a panicked holder simply releases the lock).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock with `parking_lot`'s panic-tolerant API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
///
/// Wraps the std guard in an `Option` so [`Condvar::wait`] can move it out
/// and back in place, matching `parking_lot`'s `wait(&mut guard)` shape.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s panic-tolerant API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable pairing with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

/// Result of a timed wait: whether the wait timed out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.0.take().expect("guard present");
        guard.0 = Some(self.0.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.0.take().expect("guard present");
        let (g, res) = self
            .0
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            true
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(h.join().unwrap());
    }

    #[test]
    fn rwlock_shares_readers() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
