//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! a self-contained serialization model: every [`Serialize`] type renders
//! to a [`value::Value`] tree and every [`Deserialize`] type parses back
//! out of one. `#[derive(Serialize, Deserialize)]` is provided by the
//! sibling `serde_derive` stand-in and follows upstream serde's JSON
//! conventions: structs are maps, newtype structs are transparent, unit
//! enum variants are strings, data-carrying variants are
//! externally-tagged single-entry maps, and missing `Option` fields read
//! as `None`.
//!
//! This is *not* API-compatible with upstream serde beyond what the repo
//! uses (plain derives plus `serde_json` entry points).

#![forbid(unsafe_code)]

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

/// Serialization/deserialization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable to a [`Value`] tree.
pub trait Serialize {
    /// Renders `self`.
    fn to_value(&self) -> Value;
}

/// Types parseable from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses a value of `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! ser_de_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| {
                    Error::custom(format!("expected integer, got {}", v.kind()))
                })?;
                <$ty>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($ty))))
            }
        }
    )*}
}
ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| {
                    Error::custom(format!("expected unsigned integer, got {}", v.kind()))
                })?;
                <$ty>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($ty))))
            }
        }
    )*}
}
ser_de_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

/// `&'static str` deserializes by leaking — scenario fixtures carry
/// static names; reloading them is rare and bounded.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = match v {
                    Value::Seq(items) => items,
                    other => {
                        return Err(Error::custom(format!(
                            "expected tuple array, got {}",
                            other.kind()
                        )))
                    }
                };
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected {expected}-tuple, got {} items",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*}
}
ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic across hasher seeds.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert!(u8::from_value(&300u32.to_value()).is_err(), "range checked");
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
    }

    #[test]
    fn integers_cross_sign_when_lossless() {
        // A JSON "3" may parse as I64 but deserialize into u32.
        assert_eq!(u32::from_value(&Value::I64(3)).unwrap(), 3);
        assert_eq!(i32::from_value(&Value::U64(3)).unwrap(), 3);
        assert!(u32::from_value(&Value::I64(-3)).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, 2u32), (3, 4)];
        assert_eq!(Vec::<(u32, u32)>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
        assert_eq!(
            Option::<u8>::from_value(&Some(9u8).to_value()).unwrap(),
            Some(9)
        );

        let mut m = std::collections::HashMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2u64);
        let back: std::collections::HashMap<String, u64> =
            Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }
}
