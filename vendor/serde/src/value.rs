//! The serialization data model: a JSON-shaped value tree.

/// A dynamically-typed serialized value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON numbers without fraction that fit `i64`).
    I64(i64),
    /// Unsigned integer beyond `i64::MAX`, or any non-negative integer.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, insertion-ordered.
    Map(Vec<(String, Value)>),
}

/// Shared `null` for missing-field lookups.
static NULL: Value = Value::Null;

impl Value {
    /// A short name of the value's kind (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }

    /// As a signed integer, when lossless.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(n) => Some(n),
            Value::U64(n) => i64::try_from(n).ok(),
            _ => None,
        }
    }

    /// As an unsigned integer, when lossless.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// As a float (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(x) => Some(x),
            Value::I64(n) => Some(n as f64),
            Value::U64(n) => Some(n as f64),
            _ => None,
        }
    }

    /// As a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// As an array.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// As an object.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }
}

/// Looks up `name` in an object's entries; missing fields read as `null`
/// (so `Option` fields deserialize to `None`, like upstream serde).
pub fn field<'a>(entries: &'a [(String, Value)], name: &str) -> &'a Value {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::I64(-2).as_i64(), Some(-2));
        assert_eq!(Value::I64(-2).as_u64(), None);
        assert_eq!(Value::U64(7).as_i64(), Some(7));
        assert_eq!(Value::U64(u64::MAX).as_i64(), None);
        assert_eq!(Value::I64(3).as_f64(), Some(3.0));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert!(Value::Null.as_str().is_none());
    }

    #[test]
    fn field_lookup_defaults_to_null() {
        let entries = vec![("a".to_string(), Value::Bool(true))];
        assert_eq!(field(&entries, "a"), &Value::Bool(true));
        assert_eq!(field(&entries, "b"), &Value::Null);
    }
}
