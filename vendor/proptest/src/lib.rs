//! Offline stand-in for `proptest`.
//!
//! Provides the subset the workspace's property tests use: range and
//! `any::<T>()` strategies, tuples, `Just`, `prop_map`/`prop_flat_map`,
//! `collection::vec`, the `proptest!` macro with optional
//! `#![proptest_config(...)]`, and the `prop_assert*` family.
//!
//! Unlike upstream there is no shrinking: each test runs a fixed number
//! of deterministically-seeded cases (ChaCha8 keyed by test name and
//! case index) and reports the first failing case's seed inputs via the
//! assertion message. Determinism means failures reproduce exactly.

#![forbid(unsafe_code)]

use rand_chacha::ChaCha8Rng;

/// The RNG handed to strategies.
pub type TestRng = ChaCha8Rng;

/// A failed property within a test case. `prop_assert*` macros return
/// this via `Err` so the runner can attach case context.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failure carrying `msg`.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration; only case count is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream default; strategies here are cheap to sample.
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-test case scheduler.
pub struct TestRunner {
    config: ProptestConfig,
    name_hash: u64,
}

impl TestRunner {
    /// A runner for the named test.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        // FNV-1a over the test name keys the RNG stream.
        let mut hash = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        TestRunner {
            config,
            name_hash: hash,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The RNG for one case; same (name, case) → same stream.
    pub fn rng_for_case(&self, case: u32) -> TestRng {
        use rand::SeedableRng;
        ChaCha8Rng::seed_from_u64(self.name_hash ^ ((case as u64) << 1 | 1))
    }
}

// --------------------------------------------------------------- strategies

/// A recipe for generating values of `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*}
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*}
}
tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Uniform "any value" strategy for primitives, via `rand::Standard`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the full domain of `T`.
pub fn any<T>() -> Any<T>
where
    rand::distributions::Standard: rand::distributions::Distribution<T>,
{
    Any(std::marker::PhantomData)
}

impl<T> Strategy for Any<T>
where
    rand::distributions::Standard: rand::distributions::Distribution<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        rng.gen()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// `vec(element, len_range)` — vectors with length drawn from the range.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

// ------------------------------------------------------------------- macros

/// Defines property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        #[test]
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let runner = $crate::TestRunner::new(config, concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..runner.cases() {
                let mut __rng = runner.rng_for_case(__case);
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "property `{}` failed on case {}/{}: {}",
                        stringify!($name),
                        __case,
                        runner.cases(),
                        e
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+),
                __l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let runner = TestRunner::new(ProptestConfig::with_cases(64), "ranges");
        for case in 0..64 {
            let mut rng = runner.rng_for_case(case);
            let x = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let strat = (2u32..10).prop_flat_map(|n| (Just(n), 0..n));
        let runner = TestRunner::new(ProptestConfig::default(), "flat_map");
        for case in 0..100 {
            let mut rng = runner.rng_for_case(case);
            let (n, x) = strat.generate(&mut rng);
            assert!(x < n);
        }
    }

    #[test]
    fn vec_respects_len_range() {
        let strat = collection::vec(0u8..5, 2..6);
        let runner = TestRunner::new(ProptestConfig::default(), "vec_len");
        for case in 0..50 {
            let mut rng = runner.rng_for_case(case);
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let runner = TestRunner::new(ProptestConfig::default(), "det");
        let strat = collection::vec(any::<u64>(), 3..10);
        let a = strat.generate(&mut runner.rng_for_case(7));
        let b = strat.generate(&mut runner.rng_for_case(7));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_tuple_patterns((a, b) in (0u32..10, 10u32..20), flag in any::<bool>()) {
            prop_assert!(a < 10, "a = {a}");
            prop_assert!((10..20).contains(&b));
            prop_assert_ne!(a, b);
            prop_assert_eq!(flag, flag);
        }
    }
}
