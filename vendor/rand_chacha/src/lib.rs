//! Offline stand-in for `rand_chacha`: genuine ChaCha keystream RNGs.
//!
//! Implements the ChaCha block function (djb variant: 64-bit block
//! counter in words 12–13, 64-bit stream in words 14–15) and exposes
//! [`ChaCha8Rng`] / [`ChaCha12Rng`] / [`ChaCha20Rng`] with the same
//! word-at-a-time output order as `rand_chacha` 0.3's `BlockRng` —
//! including its `next_u64` behaviour at buffer boundaries — so seeded
//! streams match the real crate bit-for-bit.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// One ChaCha block of output words (rand_chacha buffers 4 blocks).
const BLOCK_WORDS: usize = 16;
/// Words buffered per refill (4 blocks, like rand_chacha's wide backend).
const BUF_WORDS: usize = 64;

/// The ChaCha quarter round.
#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one ChaCha block with `rounds` rounds into `out`.
fn chacha_block(key: &[u32; 8], counter: u64, stream: u64, rounds: u32, out: &mut [u32]) {
    debug_assert_eq!(out.len(), BLOCK_WORDS);
    let mut state: [u32; 16] = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        stream as u32,
        (stream >> 32) as u32,
    ];
    let initial = state;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (o, (s, i)) in out.iter_mut().zip(state.iter().zip(initial.iter())) {
        *o = s.wrapping_add(*i);
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Clone, Debug)]
        pub struct $name {
            key: [u32; 8],
            stream: u64,
            /// Block counter of the *next* buffer refill.
            counter: u64,
            buf: [u32; BUF_WORDS],
            /// Next unconsumed word in `buf`; `BUF_WORDS` means empty.
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                for block in 0..BUF_WORDS / BLOCK_WORDS {
                    let words = &mut self.buf[block * BLOCK_WORDS..(block + 1) * BLOCK_WORDS];
                    chacha_block(
                        &self.key,
                        self.counter + block as u64,
                        self.stream,
                        $rounds,
                        words,
                    );
                }
                self.counter += (BUF_WORDS / BLOCK_WORDS) as u64;
                self.index = 0;
            }

            /// Snapshots the generator as `(key, stream, counter, index)`.
            ///
            /// The tuple is enough to rebuild a bit-identical generator
            /// with [`Self::from_state`]: the buffered keystream words are
            /// not stored because they are a pure function of
            /// `(key, stream, counter)` and can be recomputed on restore.
            pub fn state(&self) -> ([u32; 8], u64, u64, usize) {
                (self.key, self.stream, self.counter, self.index)
            }

            /// Rebuilds a generator from a [`Self::state`] snapshot.
            ///
            /// The restored generator produces exactly the same output
            /// sequence as the snapshotted one would have from that point.
            pub fn from_state(state: ([u32; 8], u64, u64, usize)) -> Self {
                let (key, stream, counter, index) = state;
                let mut rng = $name {
                    key,
                    stream,
                    counter,
                    buf: [0; BUF_WORDS],
                    index: BUF_WORDS,
                };
                if index < BUF_WORDS {
                    // Mid-buffer snapshot: `counter` already points past
                    // the buffered blocks, so step it back one refill,
                    // recompute the same buffer, then reposition.
                    rng.counter = counter - (BUF_WORDS / BLOCK_WORDS) as u64;
                    rng.refill();
                    rng.index = index;
                }
                rng
            }

            /// Selects the keystream (nonce); resets buffered output.
            pub fn set_stream(&mut self, stream: u64) {
                self.stream = stream;
                self.counter = 0;
                self.index = BUF_WORDS;
            }

            /// The current stream id.
            pub fn get_stream(&self) -> u64 {
                self.stream
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: [u8; 32]) -> Self {
                let mut key = [0u32; 8];
                for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                    *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
                }
                $name {
                    key,
                    stream: 0,
                    counter: 0,
                    buf: [0; BUF_WORDS],
                    index: BUF_WORDS,
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= BUF_WORDS {
                    self.refill();
                }
                let w = self.buf[self.index];
                self.index += 1;
                w
            }

            fn next_u64(&mut self) -> u64 {
                // Mirrors rand_core's BlockRng: pairs of consecutive
                // words, with the straddling case using the last word of
                // one buffer as the low half.
                if self.index < BUF_WORDS - 1 {
                    let lo = self.buf[self.index] as u64;
                    let hi = self.buf[self.index + 1] as u64;
                    self.index += 2;
                    (hi << 32) | lo
                } else if self.index >= BUF_WORDS {
                    self.refill();
                    let lo = self.buf[0] as u64;
                    let hi = self.buf[1] as u64;
                    self.index = 2;
                    (hi << 32) | lo
                } else {
                    let lo = self.buf[BUF_WORDS - 1] as u64;
                    self.refill();
                    let hi = self.buf[0] as u64;
                    self.index = 1;
                    (hi << 32) | lo
                }
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    8,
    "ChaCha with 8 rounds — the fast simulation RNG."
);
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 test vector (ChaCha20 block function).
    #[test]
    fn chacha20_block_matches_rfc8439() {
        let key: [u32; 8] = [
            0x03020100, 0x07060504, 0x0b0a0908, 0x0f0e0d0c, 0x13121110, 0x17161514, 0x1b1a1918,
            0x1f1e1d1c,
        ];
        // RFC nonce 000000090000004a00000000 with counter 1 maps, in the
        // djb layout, to counter = 1 | (9 << 32)?? — the RFC splits words
        // differently (32-bit counter + 96-bit nonce), so instead check
        // the all-zero variant against the widely published keystream.
        let mut out = [0u32; 16];
        chacha_block(&[0; 8], 0, 0, 20, &mut out);
        // First 8 keystream words of ChaCha20 with zero key/nonce/counter.
        let expect: [u32; 8] = [
            0xade0b876, 0x903df1a0, 0xe56a5d40, 0x28bd8653, 0xb819d2bd, 0x1aed8da0, 0xccef36a8,
            0xc70d778b,
        ];
        assert_eq!(&out[..8], &expect);
        let _ = key;
    }

    #[test]
    fn u64_pairs_consecutive_words() {
        let mut a = ChaCha8Rng::seed_from_u64(11);
        let mut b = ChaCha8Rng::seed_from_u64(11);
        let lo = a.next_u32() as u64;
        let hi = a.next_u32() as u64;
        assert_eq!(b.next_u64(), (hi << 32) | lo);
    }

    #[test]
    fn streams_differ_and_reset() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        b.set_stream(1);
        assert_ne!(a.next_u64(), b.next_u64());
        b.set_stream(0);
        let mut c = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(b.next_u64(), c.next_u64());
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let xs: Vec<u32> = {
            let mut r = ChaCha8Rng::seed_from_u64(42);
            (0..130).map(|_| r.next_u32()).collect()
        };
        let ys: Vec<u32> = {
            let mut r = ChaCha8Rng::seed_from_u64(42);
            (0..130).map(|_| r.next_u32()).collect()
        };
        let zs: Vec<u32> = {
            let mut r = ChaCha8Rng::seed_from_u64(43);
            (0..130).map(|_| r.next_u32()).collect()
        };
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
        // Crossing the 64-word buffer boundary yields fresh blocks.
        assert_ne!(&xs[..64], &xs[64..128]);
    }

    #[test]
    fn state_round_trips_mid_buffer() {
        let mut r = ChaCha8Rng::seed_from_u64(2014);
        for _ in 0..17 {
            r.next_u32();
        }
        let mut s = ChaCha8Rng::from_state(r.state());
        let expect: Vec<u64> = (0..200).map(|_| r.next_u64()).collect();
        let got: Vec<u64> = (0..200).map(|_| s.next_u64()).collect();
        assert_eq!(expect, got);
    }

    #[test]
    fn state_round_trips_fresh_and_at_boundary() {
        // Fresh generator: nothing buffered yet.
        let r = ChaCha8Rng::seed_from_u64(9);
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::from_state(r.state());
        assert_eq!(a.next_u64(), b.next_u64());
        // Exactly exhausted buffer (index == BUF_WORDS after 64 words).
        let mut r = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..BUF_WORDS {
            r.next_u32();
        }
        let mut s = ChaCha8Rng::from_state(r.state());
        for _ in 0..130 {
            assert_eq!(r.next_u64(), s.next_u64());
        }
    }

    #[test]
    fn state_round_trips_straddling_word() {
        // Park the index on the last buffered word so the next_u64 takes
        // the straddling path.
        let mut r = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..BUF_WORDS - 1 {
            r.next_u32();
        }
        let mut s = ChaCha8Rng::from_state(r.state());
        for _ in 0..10 {
            assert_eq!(r.next_u64(), s.next_u64());
        }
    }

    #[test]
    fn state_round_trips_nonzero_stream() {
        let mut r = ChaCha8Rng::seed_from_u64(5);
        r.set_stream(7);
        for _ in 0..33 {
            r.next_u32();
        }
        let mut s = ChaCha8Rng::from_state(r.state());
        for _ in 0..100 {
            assert_eq!(r.next_u64(), s.next_u64());
        }
    }

    #[test]
    fn clone_preserves_position() {
        let mut r = ChaCha8Rng::seed_from_u64(77);
        for _ in 0..7 {
            r.next_u32();
        }
        let mut s = r.clone();
        assert_eq!(r.next_u64(), s.next_u64());
    }
}
