//! Distributions: [`Standard`] plus the uniform-range machinery behind
//! `Rng::gen_range`, reproducing rand 0.8's draws bit-for-bit.

use crate::{Rng, RngCore};

/// Types which can produce values of `T` given randomness.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" full-range / unit-interval distribution.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! standard_via_u32 {
    ($($ty:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u32() as $ty
            }
        }
    )*}
}
standard_via_u32!(u8, u16, u32, i8, i16, i32);

macro_rules! standard_via_u64 {
    ($($ty:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*}
}
standard_via_u64!(u64, i64, usize, isize, u128, i128);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // rand 0.8 compares the sign bit of a u32 draw.
        (rng.next_u32() as i32) < 0
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53-bit precision in [0, 1): (u64 >> 11) · 2⁻⁵³.
        let value = rng.next_u64() >> (64 - 53);
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24-bit precision in [0, 1): (u32 >> 8) · 2⁻²⁴.
        let value = rng.next_u32() >> (32 - 24);
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

pub mod uniform {
    //! Uniform sampling over ranges, matching rand 0.8's
    //! `UniformInt::sample_single_inclusive` / `UniformFloat::sample_single`.

    use super::*;
    use std::ops::{Range, RangeInclusive};

    /// Marker: `T` supports uniform range sampling.
    pub trait SampleUniform: Sized {
        /// Uniform draw from `[low, high)`.
        fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        /// Uniform draw from `[low, high]`.
        fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    }

    /// Range types accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "gen_range: empty range");
            T::sample_half_open(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (start, end) = self.into_inner();
            assert!(start <= end, "gen_range: empty range");
            T::sample_inclusive(start, end, rng)
        }
    }

    /// Widening multiply returning (high, low) halves.
    trait WideningMul: Copy {
        fn wmul(self, other: Self) -> (Self, Self);
    }

    impl WideningMul for u32 {
        fn wmul(self, other: u32) -> (u32, u32) {
            let wide = self as u64 * other as u64;
            ((wide >> 32) as u32, wide as u32)
        }
    }

    impl WideningMul for u64 {
        fn wmul(self, other: u64) -> (u64, u64) {
            let wide = self as u128 * other as u128;
            ((wide >> 64) as u64, wide as u64)
        }
    }

    macro_rules! uniform_int_impl {
        ($ty:ty, $unsigned:ty, $u_large:ty, $gen:ident) => {
            impl SampleUniform for $ty {
                fn sample_half_open<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                    Self::sample_inclusive(low, high - 1, rng)
                }

                fn sample_inclusive<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                    let range = (high as $unsigned)
                        .wrapping_sub(low as $unsigned)
                        .wrapping_add(1) as $u_large;
                    if range == 0 {
                        // Full integer range: any draw is uniform.
                        return rng.$gen() as $ty;
                    }
                    // rand 0.8: reject the final partial multiple of
                    // `range` via the low half of a widening multiply.
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v = rng.$gen() as $u_large;
                        let (hi, lo) = v.wmul(range);
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }
            }
        };
    }

    uniform_int_impl!(u8, u8, u32, next_u32);
    uniform_int_impl!(u16, u16, u32, next_u32);
    uniform_int_impl!(u32, u32, u32, next_u32);
    uniform_int_impl!(i8, u8, u32, next_u32);
    uniform_int_impl!(i16, u16, u32, next_u32);
    uniform_int_impl!(i32, u32, u32, next_u32);
    uniform_int_impl!(u64, u64, u64, next_u64);
    uniform_int_impl!(i64, u64, u64, next_u64);
    uniform_int_impl!(usize, usize, u64, next_u64);
    uniform_int_impl!(isize, usize, u64, next_u64);

    macro_rules! uniform_float_impl {
        ($ty:ty, $uty:ty, $bits_to_discard:expr, $one_bits:expr, $gen:ident) => {
            impl SampleUniform for $ty {
                fn sample_half_open<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                    let scale = high - low;
                    loop {
                        // Mantissa bits → a float in [1, 2), then shift to
                        // [0, 1) — rand 0.8's `sample_single`.
                        let mantissa = rng.$gen() >> $bits_to_discard;
                        let value1_2 = <$ty>::from_bits($one_bits | mantissa);
                        let res = (value1_2 - 1.0) * scale + low;
                        if res < high {
                            return res;
                        }
                        // `res == high` only under extreme rounding; redraw.
                    }
                }

                fn sample_inclusive<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                    // Treat as half-open: measure-zero difference.
                    if low == high {
                        return low;
                    }
                    Self::sample_half_open(low, high, rng)
                }
            }
        };
    }

    // f64: 12 bits discarded (52-bit mantissa), exponent bits of 1.0.
    uniform_float_impl!(f64, u64, 12, 1023u64 << 52, next_u64);
    // f32: 9 bits discarded (23-bit mantissa), exponent bits of 1.0.
    uniform_float_impl!(f32, u32, 9, 127u32 << 23, next_u32);

    /// Uniform draw of an index below `ubound`, matching rand 0.8's
    /// `gen_index` (32-bit draws when the bound fits in a `u32`).
    pub fn gen_index<R: Rng + ?Sized>(rng: &mut R, ubound: usize) -> usize {
        if ubound <= (u32::MAX as usize) + 1 {
            rng.gen_range(0..ubound as u32) as usize
        } else {
            rng.gen_range(0..ubound)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::uniform::SampleUniform;
    use super::*;
    use crate::SeedableRng;

    /// Tiny deterministic generator for distribution tests.
    struct Lcg(u64);
    impl SeedableRng for Lcg {
        type Seed = [u8; 8];
        fn from_seed(seed: [u8; 8]) -> Self {
            Lcg(u64::from_le_bytes(seed) | 1)
        }
    }
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_inside() {
        let mut rng = Lcg::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = u32::sample_half_open(5, 15, &mut rng);
            assert!((5..15).contains(&x));
            seen[(x - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values hit in 1000 draws");
    }

    #[test]
    fn inclusive_hits_endpoint() {
        let mut rng = Lcg::seed_from_u64(2);
        let mut hit_hi = false;
        for _ in 0..200 {
            let x = i64::sample_inclusive(-3, 3, &mut rng);
            assert!((-3..=3).contains(&x));
            hit_hi |= x == 3;
        }
        assert!(hit_hi);
    }

    #[test]
    fn float_range_excludes_high() {
        let mut rng = Lcg::seed_from_u64(3);
        for _ in 0..1000 {
            let x = f64::sample_half_open(0.25, 0.75, &mut rng);
            assert!((0.25..0.75).contains(&x));
        }
    }

    #[test]
    fn standard_bool_balanced() {
        let mut rng = Lcg::seed_from_u64(4);
        let trues = (0..2000)
            .filter(|_| {
                let b: bool = Standard.sample(&mut rng);
                b
            })
            .count();
        assert!((600..1400).contains(&trues), "{trues} not plausibly fair");
    }
}
