//! Slice sampling helpers (`choose`, `shuffle`), matching rand 0.8's
//! draw sequence (`gen_index` uses 32-bit draws for small bounds).

use crate::distributions::uniform::gen_index;
use crate::Rng;

/// Random selection and shuffling over slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// A uniformly random element, or `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[gen_index(rng, self.len())])
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, gen_index(rng, i + 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngCore;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = Lcg(9);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());

        let items = [1, 2, 3, 4, 5];
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }

        let mut v: Vec<u32> = (0..100).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle is a permutation");
        assert_ne!(v, orig, "100 elements virtually never shuffle to identity");
    }
}
