//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the exact slice of `rand` it uses: [`RngCore`], [`SeedableRng`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`, `sample`), the [`Standard`]
//! distribution, uniform ranges and [`seq::SliceRandom`].
//!
//! The value-generation algorithms reproduce rand 0.8 bit-for-bit:
//! `seed_from_u64` uses the PCG32 seed filler, integer ranges use widening
//! multiply with rejection (32-bit draws for ≤32-bit types, 64-bit
//! otherwise), floats use the 52/53-bit mantissa constructions, and
//! `gen_bool` compares a 64-bit draw against `p·2⁶⁴`. Experiments seeded
//! under real `rand` therefore take identical walks here.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// The seed type (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with the PCG32 filler used by
    /// rand_core 0.6, then seeds the generator — bit-identical streams.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let word = xorshifted.rotate_right(rot).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A random value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        if p == 1.0 {
            return true;
        }
        // rand 0.8 Bernoulli: compare a 64-bit draw against p·2⁶⁴.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        self.gen::<u64>() < (p * SCALE) as u64
    }

    /// A sample from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Fills an integer slice/array with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fixed-sequence RngCore for algorithm tests.
    struct Script(Vec<u64>, usize);
    impl RngCore for Script {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let v = self.0[self.1 % self.0.len()];
            self.1 += 1;
            v
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Script(vec![u64::MAX, 0], 0);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
        // p = 1.0 consumes no draw; p = 0.0 consumed the MAX draw.
        assert!(r.gen_bool(0.5), "0 < p·2⁶⁴ for the zero draw");
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut r = Script(vec![0, u64::MAX, 1 << 11], 0);
        let a: f64 = r.gen();
        let b: f64 = r.gen();
        let c: f64 = r.gen();
        assert_eq!(a, 0.0);
        assert!(b < 1.0 && b > 0.999_999);
        assert!((c - 1.0 / 9_007_199_254_740_992.0).abs() < 1e-30);
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        struct Capture([u8; 32]);
        impl SeedableRng for Capture {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Self {
                Capture(seed)
            }
        }
        let a = Capture::seed_from_u64(7).0;
        let b = Capture::seed_from_u64(7).0;
        let c = Capture::seed_from_u64(8).0;
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, [0u8; 32], "filler expands, not copies");
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = Script(vec![0, u64::MAX / 2, u64::MAX - 1, 12345, 999_999], 0);
        for _ in 0..40 {
            let x: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = r.gen_range(0..3);
            assert!(y < 3);
            let f: f64 = r.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }
}
