//! Behavioural tests of the rate-limited client against a scripted world.

use microblog_api::{ApiError, ApiProfile, CachingClient, MicroblogClient, QueryBudget};
use microblog_platform::gen::{community_preferential, CommunityGraphConfig};
use microblog_platform::scenario::{twitter_2013, Scale};
use microblog_platform::user::generate_profile;
use microblog_platform::{Duration, Platform, PlatformBuilder, TimeWindow, Timestamp, UserId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A tiny scripted platform: user 0 posts "privacy" 500 times (all recent),
/// user 1 posts 7000 chatter posts, user 2 is silent.
fn scripted() -> Platform {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let (graph, _) = community_preferential(
        &mut rng,
        &CommunityGraphConfig {
            nodes: 50,
            communities: 2,
            ..Default::default()
        },
    );
    let users = (0..50)
        .map(|_| generate_profile(&mut rng, 0.5, Timestamp::EPOCH))
        .collect();
    let now = Timestamp::at_day(10);
    let mut b = PlatformBuilder::new(graph, users, now);
    let kw = b.intern_keyword("privacy");
    let whole = TimeWindow::new(Timestamp::EPOCH, now);
    let recent = TimeWindow::new(now - Duration::days(2), now);
    b.add_scripted_posts(&mut rng, UserId(0), kw, 500, recent);
    let chatter = b.intern_keyword("chatter");
    b.add_scripted_posts(&mut rng, UserId(1), chatter, 7_000, whole);
    b.build()
}

#[test]
fn search_pagination_costs_scale_with_results() {
    let p = scripted();
    let kw = p.keywords().get("privacy").unwrap();
    let mut c = MicroblogClient::new(&p, ApiProfile::twitter());
    let hits = c.search(kw).unwrap();
    assert!((400..=500).contains(&hits.len()), "hits {}", hits.len());
    // 100 hits per page.
    assert_eq!(c.meter().search, hits.len().div_ceil(100) as u64);
    assert!(hits.iter().all(|h| h.author == UserId(0)));
    // Recent-first ordering.
    for w in hits.windows(2) {
        assert!(w[0].time >= w[1].time);
    }
}

#[test]
fn search_window_hides_old_posts() {
    let p = scripted();
    // "chatter" posts are spread over 10 days; only ~1 week is visible.
    let kw = p.keywords().get("chatter").unwrap();
    let mut c = MicroblogClient::new(&p, ApiProfile::twitter());
    let hits = c.search(kw).unwrap();
    let window_start = p.now() - Duration::WEEK;
    assert!(!hits.is_empty());
    assert!(hits.iter().all(|h| h.time >= window_start));
    assert!(hits.len() < 7_000, "entire history leaked through search");
}

#[test]
fn timeline_cap_truncates_and_costs_pages() {
    let p = scripted();
    let mut c = MicroblogClient::new(&p, ApiProfile::twitter());
    let view = c.user_timeline(UserId(1)).unwrap();
    assert!(view.truncated, "7000 posts exceed the 3200 cap");
    assert_eq!(view.posts.len(), 3_200);
    assert_eq!(c.meter().timeline, 16); // 3200 / 200
                                        // Most recent first.
    for w in view.posts.windows(2) {
        assert!(w[0].time >= w[1].time);
    }
    // A silent user still costs one call.
    let before = c.meter().timeline;
    let silent = c.user_timeline(UserId(2)).unwrap();
    assert!(silent.posts.is_empty());
    assert!(!silent.truncated);
    assert_eq!(c.meter().timeline, before + 1);
}

#[test]
fn google_plus_pages_cost_ten_times_twitter() {
    let p = scripted();
    let mut tw = MicroblogClient::new(&p, ApiProfile::twitter());
    let mut gp = MicroblogClient::new(&p, ApiProfile::google_plus());
    tw.user_timeline(UserId(0)).unwrap();
    gp.user_timeline(UserId(0)).unwrap();
    // 500 posts: Twitter 200/page = 3 calls; Google+ 20/page = 25 calls.
    assert_eq!(tw.meter().timeline, 3);
    assert_eq!(gp.meter().timeline, 25);
}

#[test]
fn connections_match_graph_union_and_cost_both_directions() {
    let p = scripted();
    let mut c = MicroblogClient::new(&p, ApiProfile::twitter());
    let u = UserId(0);
    let conns = c.connections(u).unwrap();
    // Sorted, deduplicated union of both directions.
    let mut expected: Vec<u32> = p
        .followers(u)
        .iter()
        .chain(p.followees(u).iter())
        .copied()
        .collect();
    expected.sort_unstable();
    expected.dedup();
    assert_eq!(conns.iter().map(|x| x.0).collect::<Vec<_>>(), expected);
    // Asymmetric platform: one call per direction (both under one page).
    assert_eq!(c.meter().connections, 2);
    // Symmetric platform: single paginated sequence.
    let mut gp = MicroblogClient::new(&p, ApiProfile::google_plus());
    gp.connections(u).unwrap();
    let total = p.followers(u).len() + p.followees(u).len();
    assert_eq!(gp.meter().connections, (total.div_ceil(100)).max(1) as u64);
}

#[test]
fn unknown_user_is_rejected_without_charge() {
    let p = scripted();
    let mut c = MicroblogClient::new(&p, ApiProfile::twitter());
    let err = c.user_timeline(UserId(9_999)).unwrap_err();
    assert_eq!(err, ApiError::UnknownUser(UserId(9_999)));
    assert_eq!(c.meter().total(), 0);
}

#[test]
fn budget_rejects_before_serving() {
    let p = scripted();
    let budget = QueryBudget::limited(17);
    let mut c = MicroblogClient::with_budget(&p, ApiProfile::twitter(), budget.clone());
    // 3200-visible-post timeline costs 16 calls.
    c.user_timeline(UserId(1)).unwrap();
    assert_eq!(budget.spent(), 16);
    // Another 16-call request exceeds the remaining 1.
    let err = c.user_timeline(UserId(1)).unwrap_err();
    assert!(matches!(
        err,
        ApiError::BudgetExhausted {
            spent: 16,
            limit: 17
        }
    ));
    // The failed request charged nothing.
    assert_eq!(budget.spent(), 16);
    // A 1-call request still fits.
    c.user_timeline(UserId(2)).unwrap();
    assert_eq!(budget.spent(), 17);
}

#[test]
fn caching_client_charges_once() {
    let p = scripted();
    let mut c = CachingClient::new(MicroblogClient::new(&p, ApiProfile::twitter()));
    let kw = p.keywords().get("privacy").unwrap();
    let cost_after = |c: &CachingClient| c.cost();
    let a = c.user_timeline(UserId(1)).unwrap();
    let t1 = cost_after(&c);
    let b = c.user_timeline(UserId(1)).unwrap();
    assert_eq!(t1, cost_after(&c), "cache hit must be free");
    assert!(std::sync::Arc::ptr_eq(&a, &b));
    c.connections(UserId(0)).unwrap();
    let t2 = cost_after(&c);
    c.connections(UserId(0)).unwrap();
    assert_eq!(t2, cost_after(&c));
    c.search(kw).unwrap();
    let t3 = cost_after(&c);
    c.search(kw).unwrap();
    assert_eq!(t3, cost_after(&c));
    assert_eq!(c.distinct_timelines(), 1);
}

#[test]
fn first_mention_via_view_matches_truth() {
    let s = twitter_2013(Scale::Tiny, 3);
    let p = &s.platform;
    let kw = s.keyword("privacy").unwrap();
    let mut c = MicroblogClient::new(p, ApiProfile::twitter());
    let window = TimeWindow::new(Timestamp::EPOCH, p.now());
    let hits = c.search(kw).unwrap();
    assert!(!hits.is_empty());
    for h in hits.iter().take(5) {
        let view = c.user_timeline(h.author).unwrap();
        let api_first = view.first_mention(kw, window);
        let truth_first = p.first_mention(h.author, kw, window);
        // Timelines on Tiny worlds are never capped, so these agree.
        assert_eq!(api_first, truth_first);
    }
}
