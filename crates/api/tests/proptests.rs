//! Property-based tests for the data-access layer: pagination arithmetic,
//! budget accounting, and cost-meter consistency under random workloads.

use microblog_api::rate::wall_clock;
use microblog_api::{ApiProfile, CachingClient, MicroblogClient, QueryBudget};
use microblog_platform::gen::erdos_renyi;
use microblog_platform::user::generate_profile;
use microblog_platform::{Duration, PlatformBuilder, TimeWindow, Timestamp, UserId};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tiny_platform(seed: u64, users: usize, posts_per_user: usize) -> microblog_platform::Platform {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let graph = erdos_renyi(&mut rng, users, users * 4);
    let profiles = (0..users)
        .map(|_| generate_profile(&mut rng, 0.5, Timestamp::EPOCH))
        .collect();
    let now = Timestamp::at_day(30);
    let mut b = PlatformBuilder::new(graph, profiles, now);
    let kw = b.intern_keyword("kw");
    let window = TimeWindow::new(Timestamp::EPOCH, now);
    for u in 0..users as u32 {
        b.add_scripted_posts(&mut rng, UserId(u), kw, posts_per_user, window);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn calls_for_is_monotone_and_ceil(items in 0usize..100_000, page in 1usize..5_000) {
        let calls = ApiProfile::calls_for(items, page);
        prop_assert!(calls >= 1, "asking always costs one call");
        prop_assert_eq!(calls, (items.div_ceil(page)).max(1) as u64);
        // Monotone in items.
        prop_assert!(ApiProfile::calls_for(items + 1, page) >= calls);
        // Anti-monotone in page size.
        prop_assert!(ApiProfile::calls_for(items, page + 1) <= calls);
    }

    #[test]
    fn budget_charges_sum_exactly(charges in proptest::collection::vec(1u64..50, 0..50)) {
        let total: u64 = charges.iter().sum();
        let budget = QueryBudget::limited(total);
        for &c in &charges {
            budget.charge(c).unwrap();
        }
        prop_assert_eq!(budget.spent(), total);
        prop_assert_eq!(budget.remaining(), Some(0));
        if total > 0 {
            prop_assert!(budget.charge(1).is_err());
        }
    }

    #[test]
    fn client_meter_equals_budget_spend(seed in 0u64..200, fetches in 1usize..20) {
        let p = tiny_platform(seed, 40, 3);
        let budget = QueryBudget::limited(10_000);
        let mut client =
            MicroblogClient::with_budget(&p, ApiProfile::twitter(), budget.clone());
        let kw = p.keywords().get("kw").unwrap();
        client.search(kw).unwrap();
        for i in 0..fetches {
            let u = UserId((i % 40) as u32);
            client.user_timeline(u).unwrap();
            client.connections(u).unwrap();
        }
        prop_assert_eq!(client.meter().total(), budget.spent());
    }

    #[test]
    fn caching_never_increases_cost(seed in 0u64..200) {
        let p = tiny_platform(seed, 30, 2);
        let kw = p.keywords().get("kw").unwrap();
        // Raw client fetching each user twice...
        let mut raw = MicroblogClient::new(&p, ApiProfile::twitter());
        raw.search(kw).unwrap();
        for u in 0..30u32 {
            raw.user_timeline(UserId(u)).unwrap();
            raw.user_timeline(UserId(u)).unwrap();
        }
        // ...vs a caching client doing the same.
        let mut cached = CachingClient::new(MicroblogClient::new(&p, ApiProfile::twitter()));
        cached.search(kw).unwrap();
        for u in 0..30u32 {
            cached.user_timeline(UserId(u)).unwrap();
            cached.user_timeline(UserId(u)).unwrap();
        }
        prop_assert!(cached.cost() <= raw.meter().total());
        // And exactly half the timeline calls were saved.
        prop_assert_eq!(
            raw.meter().timeline,
            2 * (cached.cost() - cached.client().meter().search - cached.client().meter().connections)
        );
    }

    #[test]
    fn timeline_cap_and_pages_bound_cost(seed in 0u64..100, posts in 0usize..40) {
        let p = tiny_platform(seed, 10, posts);
        let mut client = MicroblogClient::new(&p, ApiProfile::twitter());
        let view = client.user_timeline(UserId(0)).unwrap();
        prop_assert!(view.posts.len() <= 3_200);
        let pages = client.meter().timeline;
        prop_assert_eq!(pages, (view.posts.len().div_ceil(200)).max(1) as u64);
        // Timeline is sorted most recent first.
        for w in view.posts.windows(2) {
            prop_assert!(w[0].time >= w[1].time);
        }
    }

    #[test]
    fn wall_clock_is_monotone(calls_a in 0u64..100_000, calls_b in 0u64..100_000) {
        let t = ApiProfile::twitter();
        let (lo, hi) = if calls_a <= calls_b { (calls_a, calls_b) } else { (calls_b, calls_a) };
        prop_assert!(wall_clock(&t, lo) <= wall_clock(&t, hi));
        // Tumblr's 1-per-10s quota is never faster than Twitter's.
        prop_assert!(wall_clock(&ApiProfile::tumblr(), hi) >= wall_clock(&t, hi));
    }

    #[test]
    fn search_results_respect_window_and_order(seed in 0u64..100) {
        let p = tiny_platform(seed, 25, 6);
        let kw = p.keywords().get("kw").unwrap();
        let mut client = MicroblogClient::new(&p, ApiProfile::twitter());
        let hits = client.search(kw).unwrap();
        let window_start = p.now() - Duration::WEEK;
        for w in hits.windows(2) {
            prop_assert!(w[0].time >= w[1].time, "recent-first ordering");
        }
        for h in &hits {
            prop_assert!(h.time >= window_start && h.time < p.now());
        }
    }
}
