//! Resilient client middleware: retry, backoff, deadlines, breakers.
//!
//! [`ResilientClient`] wraps a [`MicroblogClient`] and absorbs the
//! retryable failures of the [`ApiError`] taxonomy:
//!
//! * **Retry with exponential backoff + decorrelated jitter** (the AWS
//!   scheme: each sleep is drawn uniformly from `[base, 3·prev]`, capped),
//!   up to [`RetryPolicy::max_attempts`] attempts per logical call.
//! * **Per-call deadlines** on the *simulated* clock: pacing gaps,
//!   `retry_after` windows, timeout latencies and backoff sleeps all
//!   advance it, and a logical call that out-waits
//!   [`RetryPolicy::deadline`] fails with [`ApiError::DeadlineExceeded`].
//! * **A per-endpoint circuit breaker** (closed → open → half-open): after
//!   [`BreakerConfig::failure_threshold`] consecutive failures the
//!   endpoint fails fast without touching the platform until a cooldown
//!   passes, then a half-open probe decides whether to close it again.
//!
//! ## Logical charging of retries
//!
//! Retries are real API spend, but they must be *invisible to the
//! estimator*: whether attempt 1 or attempt 3 fetched the data cannot
//! change the estimate, or resilience would break reproducibility. Failed
//! attempts therefore charge a dedicated waste meter
//! ([`ResilienceStats::wasted`], a [`CostMeter`]) rather than the walk's
//! budget — the same logical-charging principle the shared cache uses
//! (see [`crate::cache`]). The service layer reports both: what the
//! estimate cost, and what the faults burned on top.

use crate::client::{endpoint_name, MicroblogClient, SearchHit, UserView};
use crate::error::ApiError;
use crate::meter::CostMeter;
use crate::profile::ApiProfile;
use microblog_obs::{Category, FieldValue};
use microblog_platform::{ApiEndpoint, Duration, KeywordId, Timestamp, UserId};
use serde::{Deserialize, Serialize};

/// Per-endpoint circuit-breaker parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// Simulated time the breaker stays open before a half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 8,
            cooldown: Duration(300),
        }
    }
}

/// The classic three breaker states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow normally.
    Closed,
    /// Calls fail fast until the cooldown passes.
    Open,
    /// One probe call is allowed; its outcome closes or re-opens.
    HalfOpen,
}

/// How a client reacts to retryable failures.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Attempts per logical call (1 = no retries).
    pub max_attempts: u32,
    /// First backoff sleep; also the jitter floor.
    pub base_backoff: Duration,
    /// Cap on any single backoff sleep.
    pub max_backoff: Duration,
    /// Simulated-time budget per logical call, across all its attempts.
    pub deadline: Option<Duration>,
    /// Cap on total wasted calls per client before giving up.
    pub retry_budget: Option<u64>,
    /// Circuit-breaker parameters; `None` disables breakers.
    pub breaker: Option<BreakerConfig>,
    /// Seed of the jitter stream (kept apart from the walk RNG so
    /// backoff randomness can never perturb the estimate).
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// No retries, no deadline, no breaker: failures surface immediately
    /// (wrapped in [`ApiError::RetriesExhausted`] after the one attempt).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::SECOND,
            max_backoff: Duration::MINUTE,
            deadline: None,
            retry_budget: None,
            breaker: None,
            jitter_seed: 0,
        }
    }

    /// The production default: 5 attempts, 1s→60s decorrelated-jitter
    /// backoff, breakers on, no deadline.
    pub fn resilient() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::SECOND,
            max_backoff: Duration::MINUTE,
            deadline: None,
            retry_budget: None,
            breaker: Some(BreakerConfig::default()),
            jitter_seed: 0x5EED,
        }
    }

    /// A policy that outlasts any capped fault sequence: many attempts,
    /// no deadline, no breaker. Under it, an all-retryable [`FaultPlan`]
    /// with a consecutive-fault cap is *guaranteed* invisible to the
    /// estimator.
    ///
    /// [`FaultPlan`]: microblog_platform::FaultPlan
    pub fn patient() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 64,
            breaker: None,
            ..RetryPolicy::resilient()
        }
    }

    /// Overrides the attempt cap.
    pub fn with_max_attempts(mut self, attempts: u32) -> RetryPolicy {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Sets the per-call deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> RetryPolicy {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the total wasted-call budget.
    pub fn with_retry_budget(mut self, calls: u64) -> RetryPolicy {
        self.retry_budget = Some(calls);
        self
    }

    /// Reseeds the jitter stream.
    pub fn with_jitter_seed(mut self, seed: u64) -> RetryPolicy {
        self.jitter_seed = seed;
        self
    }

    /// Disables the circuit breaker.
    pub fn without_breaker(mut self) -> RetryPolicy {
        self.breaker = None;
        self
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::resilient()
    }
}

/// Accounting of everything the resilience layer absorbed or gave up on.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct ResilienceStats {
    /// Attempts issued (every op, including first tries).
    pub attempts: u64,
    /// Retries issued (attempts beyond each op's first).
    pub retries: u64,
    /// API spend burned by failed attempts, per endpoint. This is real
    /// platform traffic that bought no data; the walk's budget never
    /// sees it (logical charging — see module docs).
    pub wasted: CostMeter,
    /// Simulated time slept in backoff.
    pub backoff_wait: Duration,
    /// Simulated time waited out on `retry_after` windows.
    pub rate_limit_wait: Duration,
    /// Rate-limit rejections absorbed.
    pub rate_limited_hits: u64,
    /// Times a breaker tripped open (including half-open → open).
    pub breaker_opens: u64,
    /// Calls failed fast by an open breaker.
    pub breaker_fast_fails: u64,
    /// Give-ups: deadline exceeded, retries exhausted, or breaker open.
    /// Nonzero means the walk ended early — the estimate is degraded.
    pub fatal_errors: u64,
    /// Human-readable trail of the give-ups, oldest first (capped).
    pub trail: Vec<String>,
}

impl ResilienceStats {
    /// Total wasted API calls across endpoints.
    pub fn wasted_calls(&self) -> u64 {
        self.wasted.total()
    }

    /// Total simulated time spent waiting (backoff + rate-limit windows).
    pub fn total_wait(&self) -> Duration {
        self.backoff_wait + self.rate_limit_wait
    }

    /// Whether any give-up degraded the walk.
    pub fn degraded(&self) -> bool {
        self.fatal_errors > 0
    }
}

/// Give-up trail entries kept per client.
const TRAIL_CAP: usize = 32;

#[derive(Clone, Copy, Debug)]
struct Breaker {
    state: BreakerState,
    consecutive: u32,
    open_until: Duration,
}

impl Breaker {
    fn new() -> Breaker {
        Breaker {
            state: BreakerState::Closed,
            consecutive: 0,
            open_until: Duration(0),
        }
    }
}

/// SplitMix64: a tiny self-contained PRNG for jitter. Deliberately not
/// the walk's ChaCha stream — backoff draws must never consume walk
/// randomness.
#[derive(Clone, Copy, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The retrying middleware around a [`MicroblogClient`].
#[derive(Clone, Debug)]
pub struct ResilientClient<'a> {
    inner: MicroblogClient<'a>,
    policy: RetryPolicy,
    stats: ResilienceStats,
    breakers: [Breaker; 3],
    /// Simulated elapsed time: quota pacing + waits + backoff.
    clock: Duration,
    jitter: SplitMix64,
}

impl<'a> ResilientClient<'a> {
    /// Wraps `inner` under `policy`.
    pub fn new(inner: MicroblogClient<'a>, policy: RetryPolicy) -> Self {
        ResilientClient {
            inner,
            policy: RetryPolicy {
                max_attempts: policy.max_attempts.max(1),
                ..policy
            },
            stats: ResilienceStats::default(),
            breakers: [Breaker::new(); 3],
            clock: Duration(0),
            jitter: SplitMix64(policy.jitter_seed ^ 0x51C6_E5B9),
        }
    }

    /// Wraps `inner` with [`RetryPolicy::none`].
    pub fn passthrough(inner: MicroblogClient<'a>) -> Self {
        Self::new(inner, RetryPolicy::none())
    }

    /// The wrapped client (for meters/budget/profile access).
    pub fn client(&self) -> &MicroblogClient<'a> {
        &self.inner
    }

    /// Mutable access to the wrapped client (checkpoint restore only).
    pub(crate) fn client_mut(&mut self) -> &mut MicroblogClient<'a> {
        &mut self.inner
    }

    /// The policy in force.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Retry/backoff/breaker accounting so far.
    pub fn stats(&self) -> &ResilienceStats {
        &self.stats
    }

    /// The simulated clock: how long this client's traffic would have
    /// taken under quota pacing, waits and backoff.
    pub fn elapsed(&self) -> Duration {
        self.clock
    }

    /// Current breaker state for `endpoint`.
    pub fn breaker_state(&self, endpoint: ApiEndpoint) -> BreakerState {
        self.breakers[endpoint.index()].state // ma-lint: allow(panic-safety) reason="breakers is a fixed array indexed by the Endpoint enum"
    }

    /// The platform clock (public knowledge: "today").
    pub fn now(&self) -> Timestamp {
        self.inner.now()
    }

    /// Records a resilience event (retry, breaker transition, waste)
    /// against `endpoint`, plus any extra fields.
    fn trace_res(
        &self,
        name: &'static str,
        endpoint: ApiEndpoint,
        extra: &[(&'static str, FieldValue)],
    ) {
        let tracer = self.inner.tracer();
        if !tracer.is_enabled() {
            return;
        }
        let mut fields = Vec::with_capacity(extra.len() + 1);
        fields.push(("endpoint", FieldValue::from(endpoint_name(endpoint))));
        fields.extend_from_slice(extra);
        tracer.emit(Category::Resilience, name, &fields);
    }

    /// Retried SEARCH.
    pub fn search(&mut self, kw: KeywordId) -> Result<Vec<SearchHit>, ApiError> {
        self.call(ApiEndpoint::Search, |c| c.search(kw))
    }

    /// Retried USER TIMELINE.
    pub fn user_timeline(&mut self, u: UserId) -> Result<UserView, ApiError> {
        self.call(ApiEndpoint::Timeline, |c| c.user_timeline(u))
    }

    /// Retried USER CONNECTIONS.
    pub fn connections(&mut self, u: UserId) -> Result<Vec<UserId>, ApiError> {
        self.call(ApiEndpoint::Connections, |c| c.connections(u))
    }

    /// Charges a shared-cache hit to the budget and meter (logical
    /// charging: the hit costs what the original fetch cost) without
    /// touching the platform or the retry machinery.
    pub(crate) fn absorb_shared_hit(
        &mut self,
        endpoint: ApiEndpoint,
        calls: u64,
    ) -> Result<(), ApiError> {
        self.inner.budget.charge(calls)?;
        match endpoint {
            ApiEndpoint::Search => self.inner.meter.search += calls,
            ApiEndpoint::Connections => self.inner.meter.connections += calls,
            ApiEndpoint::Timeline => self.inner.meter.timeline += calls,
        }
        self.inner.trace_charge(endpoint, calls, "shared");
        Ok(())
    }

    /// The retry loop around one logical call.
    fn call<T>(
        &mut self,
        endpoint: ApiEndpoint,
        mut op: impl FnMut(&mut MicroblogClient<'a>) -> Result<T, ApiError>,
    ) -> Result<T, ApiError> {
        let started = self.clock;
        let gap = inter_call_gap(self.inner.api_profile());
        let mut prev_sleep = self.policy.base_backoff;
        let mut attempts = 0u32;
        loop {
            // Breaker gate: fail fast while open, probe when cooled down.
            if self.policy.breaker.is_some() {
                let b = &mut self.breakers[endpoint.index()]; // ma-lint: allow(panic-safety) reason="breakers is a fixed array indexed by the Endpoint enum"
                if b.state == BreakerState::Open {
                    if self.clock < b.open_until {
                        // Even fast-fails take a pacing beat, so the
                        // cooldown eventually passes.
                        self.clock = self.clock + gap;
                        self.stats.breaker_fast_fails += 1;
                        self.trace_res("breaker_fast_fail", endpoint, &[]);
                        return self.give_up(ApiError::CircuitOpen { endpoint });
                    }
                    b.state = BreakerState::HalfOpen;
                    self.trace_res("breaker_probe", endpoint, &[]);
                }
            }
            attempts += 1;
            self.stats.attempts += 1;
            // Each issued call occupies one quota slot of simulated time.
            self.clock = self.clock + gap;
            match op(&mut self.inner) {
                Ok(v) => {
                    self.breaker_success(endpoint);
                    return Ok(v);
                }
                Err(err) if !err.is_retryable() => {
                    // Budget exhaustion / unknown user: not the platform
                    // failing — no breaker, no waste, no trail.
                    return Err(err);
                }
                Err(err) => {
                    self.charge_waste(endpoint, err.wasted_calls());
                    self.breaker_failure(endpoint);
                    match err {
                        ApiError::RateLimited { retry_after, .. } => {
                            self.clock = self.clock + retry_after;
                            self.stats.rate_limit_wait = self.stats.rate_limit_wait + retry_after;
                            self.stats.rate_limited_hits += 1;
                            self.trace_res(
                                "rate_limited",
                                endpoint,
                                &[("wait_secs", FieldValue::I64(retry_after.0))],
                            );
                        }
                        ApiError::Timeout { latency, .. } => {
                            self.clock = self.clock + latency;
                        }
                        _ => {}
                    }
                    if attempts >= self.policy.max_attempts {
                        return self.give_up(ApiError::RetriesExhausted {
                            endpoint,
                            attempts,
                            last: Box::new(err),
                        });
                    }
                    if let Some(cap) = self.policy.retry_budget {
                        if self.stats.wasted.total() >= cap {
                            return self.give_up(ApiError::RetriesExhausted {
                                endpoint,
                                attempts,
                                last: Box::new(err),
                            });
                        }
                    }
                    // Decorrelated jitter: uniform in [base, 3·prev], capped.
                    let lo = self.policy.base_backoff.0.max(0);
                    let hi = prev_sleep
                        .0
                        .saturating_mul(3)
                        .min(self.policy.max_backoff.0)
                        .max(lo);
                    let sleep =
                        Duration(lo + (self.jitter.next_f64() * (hi - lo + 1) as f64) as i64);
                    prev_sleep = sleep;
                    self.clock = self.clock + sleep;
                    self.stats.backoff_wait = self.stats.backoff_wait + sleep;
                    self.stats.retries += 1;
                    self.trace_res(
                        "retry",
                        endpoint,
                        &[
                            ("attempt", FieldValue::U64(u64::from(attempts))),
                            ("backoff_secs", FieldValue::I64(sleep.0)),
                        ],
                    );
                    if let Some(deadline) = self.policy.deadline {
                        let waited = Duration(self.clock.0 - started.0);
                        if waited > deadline {
                            return self.give_up(ApiError::DeadlineExceeded { endpoint, waited });
                        }
                    }
                }
            }
        }
    }

    fn charge_waste(&mut self, endpoint: ApiEndpoint, calls: u64) {
        match endpoint {
            ApiEndpoint::Search => self.stats.wasted.search += calls,
            ApiEndpoint::Connections => self.stats.wasted.connections += calls,
            ApiEndpoint::Timeline => self.stats.wasted.timeline += calls,
        }
        if calls > 0 {
            self.trace_res("waste", endpoint, &[("calls", FieldValue::U64(calls))]);
        }
    }

    fn breaker_success(&mut self, endpoint: ApiEndpoint) {
        if self.policy.breaker.is_none() {
            return;
        }
        let b = &mut self.breakers[endpoint.index()]; // ma-lint: allow(panic-safety) reason="breakers is a fixed array indexed by the Endpoint enum"
        b.consecutive = 0;
        if b.state == BreakerState::HalfOpen {
            b.state = BreakerState::Closed;
            self.trace_res("breaker_close", endpoint, &[]);
        }
    }

    fn breaker_failure(&mut self, endpoint: ApiEndpoint) {
        let Some(cfg) = self.policy.breaker else {
            return;
        };
        let b = &mut self.breakers[endpoint.index()]; // ma-lint: allow(panic-safety) reason="breakers is a fixed array indexed by the Endpoint enum"
        match b.state {
            BreakerState::HalfOpen => {
                // Failed probe: back to open for another cooldown.
                b.state = BreakerState::Open;
                b.open_until = self.clock + cfg.cooldown;
                self.stats.breaker_opens += 1;
                self.trace_res("breaker_open", endpoint, &[]);
            }
            BreakerState::Closed => {
                b.consecutive += 1;
                if b.consecutive >= cfg.failure_threshold {
                    b.state = BreakerState::Open;
                    b.open_until = self.clock + cfg.cooldown;
                    b.consecutive = 0;
                    self.stats.breaker_opens += 1;
                    self.trace_res("breaker_open", endpoint, &[]);
                }
            }
            BreakerState::Open => {}
        }
    }

    /// Records a fatal give-up in the stats and trail, then returns it.
    fn give_up<T>(&mut self, err: ApiError) -> Result<T, ApiError> {
        self.stats.fatal_errors += 1;
        if self.stats.trail.len() < TRAIL_CAP {
            self.stats.trail.push(err.to_string());
        }
        let tracer = self.inner.tracer();
        if tracer.is_enabled() {
            tracer.emit(
                Category::Resilience,
                "give_up",
                &[("error", FieldValue::from(err.to_string()))],
            );
        }
        Err(err)
    }
}

/// The simulated time one API call occupies under the profile's quota
/// (e.g. Twitter's 180-per-15-minutes → 5s per call).
fn inter_call_gap(profile: &ApiProfile) -> Duration {
    Duration(profile.quota.per.0 / profile.quota.calls.max(1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::QueryBudget;
    use microblog_platform::scenario::{twitter_2013, Scale, Scenario};
    use microblog_platform::{FaultPlan, FaultyPlatform};
    use std::sync::Arc;

    fn faulty(scenario_seed: u64, plan: FaultPlan) -> (Scenario, FaultyPlatform) {
        let s = twitter_2013(Scale::Tiny, scenario_seed);
        // The scenario keeps its platform; the wrapper gets a clone so
        // the test can still consult the fault-free original.
        let platform = Arc::new(s.platform.clone());
        let f = FaultyPlatform::new(platform, plan);
        (s, f)
    }

    fn resilient<'a>(
        f: &'a FaultyPlatform,
        policy: RetryPolicy,
        budget: QueryBudget,
    ) -> ResilientClient<'a> {
        ResilientClient::new(
            MicroblogClient::from_backend(f, ApiProfile::twitter(), budget),
            policy,
        )
    }

    #[test]
    fn retries_absorb_capped_transient_faults() {
        let plan = FaultPlan::transient(3, 0.6).with_max_consecutive(2);
        let (s, f) = faulty(21, plan);
        let kw = s.keyword("privacy").unwrap();
        let mut client = resilient(&f, RetryPolicy::patient(), QueryBudget::unlimited());
        let hits = client.search(kw).expect("retries must absorb the faults");
        assert!(!hits.is_empty());
        for u in 0..30u32 {
            client.user_timeline(UserId(u)).expect("timeline retried");
            client.connections(UserId(u)).expect("connections retried");
        }
        let stats = client.stats();
        assert!(stats.retries > 0, "a 60% fault rate must force retries");
        assert!(stats.wasted_calls() > 0, "failed attempts must be metered");
        assert_eq!(stats.fatal_errors, 0, "capped faults never become fatal");
        assert!(!stats.degraded());
    }

    #[test]
    fn estimator_visible_state_matches_fault_free_run() {
        // The invariant behind the proptest satellite: data, meter and
        // budget are bit-identical whether or not retryable faults fired.
        let plan = FaultPlan::mixed(7, 0.4).with_max_consecutive(2);
        let (s, f) = faulty(22, plan);
        let kw = s.keyword("privacy").unwrap();
        let mut hostile = resilient(&f, RetryPolicy::patient(), QueryBudget::limited(5_000));
        let mut clean = MicroblogClient::with_budget(
            &s.platform,
            ApiProfile::twitter(),
            QueryBudget::limited(5_000),
        );
        assert_eq!(hostile.search(kw).unwrap(), clean.search(kw).unwrap());
        for u in 0..40u32 {
            let a = hostile.user_timeline(UserId(u)).unwrap();
            let b = clean.user_timeline(UserId(u)).unwrap();
            assert_eq!(a.posts, b.posts);
            assert_eq!(a.follower_count, b.follower_count);
            assert_eq!(
                hostile.connections(UserId(u)).unwrap(),
                clean.connections(UserId(u)).unwrap()
            );
        }
        assert_eq!(hostile.client().meter(), clean.meter());
        assert_eq!(
            hostile.client().budget().spent(),
            clean.budget().spent(),
            "failed attempts must not charge the logical budget"
        );
        assert!(hostile.stats().retries > 0, "the plan must have faulted");
    }

    #[test]
    fn passthrough_wraps_first_failure_as_retries_exhausted() {
        let (s, f) = faulty(23, FaultPlan::outage(1));
        let kw = s.keyword("privacy").unwrap();
        let mut client = resilient(&f, RetryPolicy::none(), QueryBudget::unlimited());
        let err = client.search(kw).unwrap_err();
        match err {
            ApiError::RetriesExhausted {
                attempts, ref last, ..
            } => {
                assert_eq!(attempts, 1);
                assert!(last.is_retryable());
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
        assert!(err.ends_walk());
        assert_eq!(client.stats().fatal_errors, 1);
        assert_eq!(client.stats().trail.len(), 1);
    }

    #[test]
    fn breaker_opens_then_recovers_half_open() {
        // Outage on every endpoint; threshold 4 trips after one call's
        // 5 attempts (4 failures seen before the give-up... exactly 5).
        let (s, f) = faulty(24, FaultPlan::outage(2));
        let kw = s.keyword("privacy").unwrap();
        let policy = RetryPolicy {
            breaker: Some(BreakerConfig {
                failure_threshold: 4,
                cooldown: Duration(30),
            }),
            ..RetryPolicy::resilient()
        };
        let mut client = resilient(&f, policy, QueryBudget::unlimited());
        // Failure #4 trips the breaker open mid-loop, so attempt #5 is
        // gated and the logical call fails fast.
        let err = client.search(kw).unwrap_err();
        assert!(matches!(err, ApiError::CircuitOpen { .. }), "got {err}");
        assert_eq!(
            client.breaker_state(ApiEndpoint::Search),
            BreakerState::Open
        );
        assert!(client.stats().breaker_opens >= 1);

        // While open: fail fast without touching the platform.
        let fetched_before = f.fetches();
        let err = client.search(kw).unwrap_err();
        assert!(matches!(err, ApiError::CircuitOpen { .. }));
        assert_eq!(f.fetches(), fetched_before, "fast-fail must not fetch");
        assert!(client.stats().breaker_fast_fails >= 1);

        // Other endpoints are unaffected: independent breakers.
        assert_eq!(
            client.breaker_state(ApiEndpoint::Timeline),
            BreakerState::Closed
        );

        // Fast-fails advance the clock (5s pacing each); after the 30s
        // cooldown a half-open probe goes through to the platform.
        for _ in 0..10 {
            let _ = client.search(kw);
        }
        assert!(
            f.fetches() > fetched_before,
            "cooldown must eventually allow a half-open probe"
        );
    }

    #[test]
    fn deadline_bounds_total_wait() {
        let (s, f) = faulty(25, FaultPlan::outage(3));
        let kw = s.keyword("privacy").unwrap();
        let policy = RetryPolicy::patient().with_deadline(Duration(40));
        let mut client = resilient(&f, policy, QueryBudget::unlimited());
        match client.search(kw).unwrap_err() {
            ApiError::DeadlineExceeded { waited, .. } => {
                assert!(waited > Duration(40));
            }
            other => panic!("expected DeadlineExceeded, got {other}"),
        }
        assert!(client.stats().degraded());
    }

    #[test]
    fn rate_limits_wait_out_their_window() {
        let plan = FaultPlan {
            rates: microblog_platform::FaultRates {
                rate_limited: 0.5,
                ..microblog_platform::FaultRates::NONE
            },
            retry_after: Duration(120),
            ..FaultPlan::none()
        };
        let (_, f) = faulty(26, plan);
        let mut client = resilient(&f, RetryPolicy::patient(), QueryBudget::unlimited());
        for u in 0..40u32 {
            client
                .user_timeline(UserId(u))
                .expect("capped plan recovers");
        }
        let stats = client.stats();
        assert!(stats.rate_limited_hits > 0);
        assert_eq!(
            stats.rate_limit_wait,
            Duration(120 * stats.rate_limited_hits as i64),
            "every 429 waits out exactly its retry_after"
        );
        // 429s are rejected before serving: they waste no calls.
        assert_eq!(stats.wasted.timeline, 0);
    }

    #[test]
    fn retry_budget_caps_the_waste() {
        let (s, f) = faulty(27, FaultPlan::outage(4));
        let kw = s.keyword("privacy").unwrap();
        let policy = RetryPolicy::patient().with_retry_budget(3);
        let mut client = resilient(&f, policy, QueryBudget::unlimited());
        let err = client.search(kw).unwrap_err();
        assert!(matches!(err, ApiError::RetriesExhausted { .. }));
        assert!(client.stats().wasted_calls() <= 4, "budget caps waste");
    }

    #[test]
    fn jitter_backoff_is_bounded_and_grows() {
        let (s, f) = faulty(28, FaultPlan::outage(5));
        let kw = s.keyword("privacy").unwrap();
        let policy = RetryPolicy::resilient()
            .with_max_attempts(6)
            .without_breaker();
        let mut client = resilient(&f, policy, QueryBudget::unlimited());
        let _ = client.search(kw);
        let stats = client.stats();
        assert_eq!(stats.retries, 5);
        // 5 sleeps, each within [1s, 60s].
        assert!(stats.backoff_wait >= Duration(5));
        assert!(stats.backoff_wait <= Duration(300));
    }
}
