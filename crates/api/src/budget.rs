//! Shared, thread-safe query budgets.
//!
//! A [`QueryBudget`] is cloneable and shared: an experiment hands the same
//! budget to the seed-search, the pilot walks and the main walk so the
//! total across all of them respects the paper's "query budget" system
//! input (§3.1). Charging is atomic; the first request that would exceed
//! the limit is rejected *without* being served.

use crate::error::ApiError;
use parking_lot::Mutex;
use std::sync::Arc;

#[derive(Debug)]
struct Inner {
    limit: Option<u64>,
    spent: u64,
}

/// A cloneable handle to a shared API-call budget.
#[derive(Clone, Debug)]
pub struct QueryBudget(Arc<Mutex<Inner>>);

impl QueryBudget {
    /// A budget that never runs out (for ground-truth-side tooling).
    pub fn unlimited() -> Self {
        QueryBudget(Arc::new(Mutex::new(Inner {
            limit: None,
            spent: 0,
        })))
    }

    /// A budget of `limit` total API calls.
    pub fn limited(limit: u64) -> Self {
        QueryBudget(Arc::new(Mutex::new(Inner {
            limit: Some(limit),
            spent: 0,
        })))
    }

    /// Charges `calls` calls, failing (and charging nothing) if that would
    /// exceed the limit.
    pub fn charge(&self, calls: u64) -> Result<(), ApiError> {
        let mut inner = self.0.lock();
        if let Some(limit) = inner.limit {
            if inner.spent + calls > limit {
                return Err(ApiError::BudgetExhausted {
                    spent: inner.spent,
                    limit,
                });
            }
        }
        inner.spent += calls;
        Ok(())
    }

    /// Total calls charged so far (across all clones).
    pub fn spent(&self) -> u64 {
        self.0.lock().spent
    }

    /// Remaining calls; `None` when unlimited.
    pub fn remaining(&self) -> Option<u64> {
        let inner = self.0.lock();
        inner.limit.map(|l| l.saturating_sub(inner.spent))
    }

    /// Whether at least `calls` more calls fit.
    pub fn can_afford(&self, calls: u64) -> bool {
        let inner = self.0.lock();
        inner.limit.is_none_or(|l| inner.spent + calls <= l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charging_and_exhaustion() {
        let b = QueryBudget::limited(5);
        assert!(b.charge(3).is_ok());
        assert_eq!(b.spent(), 3);
        assert_eq!(b.remaining(), Some(2));
        assert!(b.can_afford(2));
        assert!(!b.can_afford(3));
        // Over-charge fails atomically: nothing is deducted.
        let err = b.charge(3).unwrap_err();
        assert_eq!(err, ApiError::BudgetExhausted { spent: 3, limit: 5 });
        assert_eq!(b.spent(), 3);
        assert!(b.charge(2).is_ok());
        assert!(b.charge(1).is_err());
    }

    #[test]
    fn clones_share_state() {
        let a = QueryBudget::limited(4);
        let b = a.clone();
        a.charge(2).unwrap();
        b.charge(2).unwrap();
        assert!(a.charge(1).is_err());
        assert_eq!(b.spent(), 4);
    }

    #[test]
    fn unlimited_never_fails() {
        let b = QueryBudget::unlimited();
        assert!(b.charge(u64::MAX / 4).is_ok());
        assert!(b.charge(u64::MAX / 4).is_ok());
        assert_eq!(b.remaining(), None);
        assert!(b.can_afford(u64::MAX / 4));
    }

    #[test]
    fn shared_across_threads() {
        let b = QueryBudget::limited(1_000);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let b = b.clone();
                s.spawn(move || {
                    for _ in 0..125 {
                        b.charge(1).unwrap();
                    }
                });
            }
        });
        assert_eq!(b.spent(), 1_000);
        assert!(b.charge(1).is_err());
    }
}
