//! The central fetch scheduler — "walk, not wait".
//!
//! The paper's experiments pay 50–100 ms of network RTT per API call, and
//! a random walk is a *serial* consumer: step `t+1` cannot be chosen until
//! the fetch for step `t` returns. Run naively, a walk leaves the whole
//! rate-limit window idle — one call in flight, everything else waiting.
//! This module turns the wait into overlap without changing a single bit
//! of what the walk computes:
//!
//! * Logical walker chains **announce** fetches they are *about to* need
//!   ([`PrefetchSink::announce`]) — e.g. the timelines of every candidate
//!   neighbor the level filter is going to inspect, or the next step of
//!   each of N interleaved chains.
//! * A pool of prefetcher threads ([`FetchScheduler::run_prefetcher`])
//!   drains the announce queue, keeping up to [`InflightPolicy::depth`]
//!   real backend calls outstanding at once.
//! * The walker then *consumes* responses through the ordinary
//!   [`ApiBackend`] interface — the scheduler impl returns the buffered
//!   result if the prefetch completed, waits for it if it is in flight,
//!   or claims the key and fetches inline if no prefetcher got to it yet.
//!
//! # Determinism invariant
//!
//! The scheduler changes **when** backend calls happen, never **whether**
//! or **how many**. Each announced key is fetched exactly once by exactly
//! one thread (prefetcher or consumer — the queue and slot maps are
//! guarded by one lock, so the transfer of responsibility is atomic), and
//! a consumed result leaves the slot map, so a retry after a buffered
//! fault goes straight through to the backend as the next attempt —
//! exactly the sequence a sequential run would produce against a
//! deterministic [`microblog_platform::FaultyPlatform`]. Keys that are
//! announced but never consumed (a walk that errors out mid-expansion)
//! are returned by [`PrefetchSink::reset`] so the caller can roll their
//! speculative attempts back out of the fault schedule.
//!
//! Scheduler *threads* never emit trace events — they feed the
//! [`SchedCounters`] atomics only. The deterministic `announce`/`drain`
//! events of [`microblog_obs::Category::Sched`] are emitted by the
//! logical walker thread (see [`crate::client::CachingClient`]), so
//! traces stay byte-identical run over run.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use microblog_platform::{
    ApiBackend, ApiEndpoint, Fault, KeywordId, Platform, PostId, TimeWindow, UserId,
};

/// One prefetchable request. SEARCH is deliberately absent: seed queries
/// happen once per job on the critical path, so there is nothing to
/// overlap them with — they always pass straight through.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FetchKey {
    /// `USER TIMELINE(u)`.
    Timeline(UserId),
    /// `USER CONNECTIONS(u)`.
    Connections(UserId),
}

impl FetchKey {
    /// The endpoint this key fetches.
    pub fn endpoint(self) -> ApiEndpoint {
        match self {
            FetchKey::Timeline(_) => ApiEndpoint::Timeline,
            FetchKey::Connections(_) => ApiEndpoint::Connections,
        }
    }

    /// The per-endpoint fault-schedule key this request draws against —
    /// must match what [`microblog_platform::FaultyPlatform`] derives
    /// internally, so speculative attempts can be rolled back precisely.
    pub fn fault_key(self) -> u64 {
        match self {
            FetchKey::Timeline(u) | FetchKey::Connections(u) => u64::from(u.0),
        }
    }
}

/// How deep the scheduler keeps the backend pipeline.
///
/// The depth is the number of prefetcher threads the owner spawns (each
/// keeps at most one call in flight), so it bounds concurrent backend
/// load exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InflightPolicy {
    /// One outstanding prefetch — overlaps fetch latency with the walker's
    /// own compute, nothing more.
    Serial,
    /// A fixed number of outstanding calls.
    Fixed(usize),
    /// Fill the platform's rate-limit window: as many outstanding calls as
    /// the window has unspent quota, capped to keep thread counts sane.
    Window {
        /// Calls permitted per rate-limit window.
        per_window: u64,
        /// Upper bound regardless of quota.
        cap: usize,
    },
}

impl InflightPolicy {
    /// The concrete pipeline depth (≥ 1).
    pub fn depth(self) -> usize {
        match self {
            InflightPolicy::Serial => 1,
            InflightPolicy::Fixed(n) => n.max(1),
            InflightPolicy::Window { per_window, cap } => usize::try_from(per_window)
                .unwrap_or(usize::MAX)
                .min(cap)
                .max(1),
        }
    }
}

impl Default for InflightPolicy {
    /// Sixteen outstanding calls — deep enough to cover a level filter's
    /// candidate batch, shallow enough for a thread per slot.
    fn default() -> Self {
        InflightPolicy::Fixed(16)
    }
}

/// Shared atomic telemetry of one scheduler. Owned by an `Arc` so the
/// service can keep reading gauges after a job's scheduler is gone.
#[derive(Debug, Default)]
pub struct SchedCounters {
    /// Keys accepted into the prefetch queue.
    pub announced: AtomicU64,
    /// Backend calls issued by prefetcher threads.
    pub prefetched: AtomicU64,
    /// Consumer requests served from a completed prefetch.
    pub hits: AtomicU64,
    /// Consumer requests that waited on an in-flight prefetch.
    pub waits: AtomicU64,
    /// Queued keys the consumer claimed and fetched inline.
    pub claimed: AtomicU64,
    /// Announced keys never consumed (rolled back at reset).
    pub stranded: AtomicU64,
    /// Deepest observed number of simultaneous prefetch calls.
    pub peak_inflight: AtomicU64,
}

impl SchedCounters {
    /// A plain-value snapshot of the counters.
    pub fn snapshot(&self) -> SchedStats {
        SchedStats {
            announced: self.announced.load(Ordering::Relaxed),
            prefetched: self.prefetched.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            claimed: self.claimed.load(Ordering::Relaxed),
            stranded: self.stranded.load(Ordering::Relaxed),
            peak_inflight: self.peak_inflight.load(Ordering::Relaxed),
        }
    }
}

/// A copyable snapshot of [`SchedCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Keys accepted into the prefetch queue.
    pub announced: u64,
    /// Backend calls issued by prefetcher threads.
    pub prefetched: u64,
    /// Consumer requests served from a completed prefetch.
    pub hits: u64,
    /// Consumer requests that waited on an in-flight prefetch.
    pub waits: u64,
    /// Queued keys the consumer claimed and fetched inline.
    pub claimed: u64,
    /// Announced keys never consumed (rolled back at reset).
    pub stranded: u64,
    /// Deepest observed number of simultaneous prefetch calls.
    pub peak_inflight: u64,
}

/// The sink half of the scheduler: what a [`crate::client::CachingClient`]
/// needs in order to announce upcoming fetches without knowing the
/// scheduler's lifetime structure.
pub trait PrefetchSink: Sync {
    /// Queues keys for background fetching; keys already queued, in
    /// flight or buffered are skipped. Returns how many were newly
    /// queued (a deterministic function of the logical fetch history).
    fn announce(&self, keys: &[FetchKey]) -> usize;

    /// Blocks until nothing is queued or in flight (completed-but-
    /// unconsumed buffers may remain). Returns the number of buffered
    /// results still outstanding. Checkpoint safe points call this so a
    /// captured client state never races a half-done prefetch.
    fn drain(&self) -> usize;

    /// Discards all queued work and buffered results, returning the keys
    /// whose backend fetch actually happened but was never consumed —
    /// sorted, so callers can roll the speculative attempts back out of a
    /// deterministic fault schedule.
    fn reset(&self) -> Vec<FetchKey>;
}

/// What a slot holds between fetch completion and consumption. The
/// buffered payloads are the backend's own `'p`-lived borrows (`Copy`, so
/// handing one out is free and leaves no owner behind).
#[derive(Clone, Copy, Debug)]
enum SlotState<'p> {
    /// A prefetcher has taken the key and its call is outstanding.
    InFlight,
    /// A completed `USER TIMELINE` fetch.
    Timeline(Result<&'p [PostId], Fault>),
    /// A completed `USER CONNECTIONS` fetch.
    Connections(Result<(&'p [u32], &'p [u32]), Fault>),
}

#[derive(Debug, Default)]
struct Inner<'p> {
    /// Announced keys awaiting a prefetcher, FIFO.
    queue: VecDeque<FetchKey>,
    /// Membership index of `queue`.
    queued: HashSet<FetchKey>,
    /// In-flight markers and completed-but-unconsumed results.
    slots: HashMap<FetchKey, SlotState<'p>>,
    /// Set once; prefetchers exit when the queue runs dry afterwards.
    closed: bool,
}

impl Inner<'_> {
    fn inflight(&self) -> usize {
        self.slots
            .values()
            .filter(|s| matches!(s, SlotState::InFlight))
            .count()
    }
}

/// The scheduler: wraps any [`ApiBackend`] and *is* an [`ApiBackend`], so
/// the entire client stack (resilience, caching, metering) runs over it
/// unchanged. Spawn [`InflightPolicy::depth`] threads running
/// [`FetchScheduler::run_prefetcher`], announce keys through the
/// [`PrefetchSink`] face, and call [`FetchScheduler::close`] (or rely on
/// a drop guard) before joining the threads.
pub struct FetchScheduler<'p> {
    inner: &'p dyn ApiBackend,
    state: Mutex<Inner<'p>>,
    /// Signals prefetchers: queue non-empty or closed.
    work: Condvar,
    /// Signals consumers and drainers: a slot completed or emptied.
    done: Condvar,
    counters: Arc<SchedCounters>,
    inflight_gauge: AtomicU64,
}

impl std::fmt::Debug for FetchScheduler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FetchScheduler")
            .field("stats", &self.counters.snapshot())
            .finish_non_exhaustive()
    }
}

impl<'p> FetchScheduler<'p> {
    /// A scheduler over `inner`, reporting into `counters`.
    pub fn new(inner: &'p dyn ApiBackend, counters: Arc<SchedCounters>) -> Self {
        FetchScheduler {
            inner,
            state: Mutex::new(Inner::default()),
            work: Condvar::new(),
            done: Condvar::new(),
            counters,
            inflight_gauge: AtomicU64::new(0),
        }
    }

    /// The shared counters handle.
    pub fn counters(&self) -> &Arc<SchedCounters> {
        &self.counters
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<'p>> {
        // Poison can only mean a consumer panicked between state
        // transitions it had not begun; the maps are still coherent.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Marks the scheduler closed and wakes every parked thread.
    /// Prefetchers finish the call they are on, then exit; queued keys
    /// stay queued for [`PrefetchSink::reset`] to account.
    pub fn close(&self) {
        self.lock().closed = true;
        self.work.notify_all();
        self.done.notify_all();
    }

    /// Body of one prefetcher thread: pop a key, fetch it, buffer the
    /// result, repeat until closed. Run this on [`InflightPolicy::depth`]
    /// threads.
    pub fn run_prefetcher(&self) {
        loop {
            let key = {
                let mut inner = self.lock();
                loop {
                    if let Some(key) = inner.queue.pop_front() {
                        inner.queued.remove(&key);
                        inner.slots.insert(key, SlotState::InFlight);
                        break key;
                    }
                    if inner.closed {
                        return;
                    }
                    inner = self.work.wait(inner).unwrap_or_else(|e| e.into_inner());
                }
            };
            self.counters.prefetched.fetch_add(1, Ordering::Relaxed);
            let depth = self.inflight_gauge.fetch_add(1, Ordering::Relaxed) + 1;
            self.counters
                .peak_inflight
                .fetch_max(depth, Ordering::Relaxed);
            let result = match key {
                FetchKey::Timeline(u) => SlotState::Timeline(self.inner.fetch_timeline(u)),
                FetchKey::Connections(u) => SlotState::Connections(self.inner.fetch_connections(u)),
            };
            self.inflight_gauge.fetch_sub(1, Ordering::Relaxed);
            let mut inner = self.lock();
            inner.slots.insert(key, result);
            drop(inner);
            self.done.notify_all();
        }
    }

    /// Resolves one consumer request: buffered → hand out and clear the
    /// slot; in flight → wait for it; queued → claim it back and fetch
    /// inline; unknown → fetch inline. Exactly one backend call happens
    /// per resolution path, so the fault schedule sees the same attempt
    /// sequence a sequential run would produce.
    fn resolve(&self, key: FetchKey) -> Option<SlotState<'p>> {
        let mut inner = self.lock();
        let mut waited = false;
        loop {
            match inner.slots.get(&key) {
                Some(SlotState::InFlight) => {
                    waited = true;
                    inner = self.done.wait(inner).unwrap_or_else(|e| e.into_inner());
                }
                Some(_) => {
                    let slot = inner.slots.remove(&key);
                    drop(inner);
                    self.done.notify_all();
                    let counter = if waited {
                        &self.counters.waits
                    } else {
                        &self.counters.hits
                    };
                    counter.fetch_add(1, Ordering::Relaxed);
                    return slot;
                }
                None => {
                    if inner.queued.remove(&key) {
                        // Claim: the consumer got here before any
                        // prefetcher; take the key off the queue and
                        // fetch it inline like an unannounced request.
                        inner.queue.retain(|k| *k != key);
                        self.counters.claimed.fetch_add(1, Ordering::Relaxed);
                    }
                    return None;
                }
            }
        }
    }
}

impl PrefetchSink for FetchScheduler<'_> {
    fn announce(&self, keys: &[FetchKey]) -> usize {
        let mut inner = self.lock();
        if inner.closed {
            return 0;
        }
        let mut added = 0usize;
        for &key in keys {
            if inner.queued.contains(&key) || inner.slots.contains_key(&key) {
                continue;
            }
            inner.queue.push_back(key);
            inner.queued.insert(key);
            added += 1;
        }
        drop(inner);
        if added > 0 {
            self.counters
                .announced
                .fetch_add(added as u64, Ordering::Relaxed);
            self.work.notify_all();
        }
        added
    }

    fn drain(&self) -> usize {
        let mut inner = self.lock();
        while !inner.closed && (!inner.queue.is_empty() || inner.inflight() > 0) {
            inner = self.done.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
        inner.slots.len() - inner.inflight()
    }

    fn reset(&self) -> Vec<FetchKey> {
        // Let in-flight calls land first so every speculative backend
        // attempt is visible (and therefore reversible) at reset time.
        let mut inner = self.lock();
        while inner.inflight() > 0 {
            inner = self.done.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
        inner.queue.clear();
        inner.queued.clear();
        let mut stranded: Vec<FetchKey> = inner.slots.drain().map(|(k, _)| k).collect();
        drop(inner);
        stranded.sort_unstable();
        self.counters
            .stranded
            .fetch_add(stranded.len() as u64, Ordering::Relaxed);
        stranded
    }
}

impl ApiBackend for FetchScheduler<'_> {
    fn store(&self) -> &Platform {
        self.inner.store()
    }

    fn fetch_search(&self, kw: KeywordId, window: TimeWindow) -> Result<Vec<PostId>, Fault> {
        self.inner.fetch_search(kw, window)
    }

    fn fetch_timeline(&self, u: UserId) -> Result<&[PostId], Fault> {
        match self.resolve(FetchKey::Timeline(u)) {
            Some(SlotState::Timeline(result)) => result,
            _ => self.inner.fetch_timeline(u),
        }
    }

    fn fetch_connections(&self, u: UserId) -> Result<(&[u32], &[u32]), Fault> {
        match self.resolve(FetchKey::Connections(u)) {
            Some(SlotState::Connections(result)) => result,
            _ => self.inner.fetch_connections(u),
        }
    }
}

/// Closes a scheduler on drop, so prefetcher threads always get their
/// shutdown signal — even when a panic (e.g. an injected crash) unwinds
/// the owning scope before the normal close.
#[derive(Debug)]
pub struct SchedCloseGuard<'s, 'p>(pub &'s FetchScheduler<'p>);

impl Drop for SchedCloseGuard<'_, '_> {
    fn drop(&mut self) {
        self.0.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microblog_platform::scenario::{twitter_2013, Scale};
    use microblog_platform::{FaultPlan, FaultyPlatform, SlowBackend};

    fn with_sched<R>(
        backend: &dyn ApiBackend,
        depth: usize,
        body: impl FnOnce(&FetchScheduler<'_>) -> R,
    ) -> R {
        let sched = FetchScheduler::new(backend, Arc::new(SchedCounters::default()));
        std::thread::scope(|scope| {
            let _guard = SchedCloseGuard(&sched);
            for _ in 0..depth {
                scope.spawn(|| sched.run_prefetcher());
            }
            body(&sched)
        })
    }

    #[test]
    fn prefetched_results_match_direct_fetches() {
        let s = twitter_2013(Scale::Tiny, 3);
        let platform = s.platform;
        with_sched(&platform, 4, |sched| {
            let keys: Vec<FetchKey> = (0..10)
                .map(|i| FetchKey::Timeline(UserId(i)))
                .chain((0..10).map(|i| FetchKey::Connections(UserId(i))))
                .collect();
            assert_eq!(sched.announce(&keys), 20);
            assert_eq!(sched.announce(&keys), 0, "re-announce is a no-op");
            for i in 0..10u32 {
                let u = UserId(i);
                assert_eq!(sched.fetch_timeline(u).unwrap(), platform.timeline(u));
                let (fols, fees) = sched.fetch_connections(u).unwrap();
                assert_eq!(fols, platform.followers(u));
                assert_eq!(fees, platform.followees(u));
            }
            let stats = sched.counters().snapshot();
            assert_eq!(stats.announced, 20);
            assert_eq!(stats.hits + stats.waits + stats.claimed, 20);
            assert!(sched.reset().is_empty());
        });
    }

    #[test]
    fn unannounced_fetches_pass_through() {
        let s = twitter_2013(Scale::Tiny, 4);
        let platform = s.platform;
        with_sched(&platform, 2, |sched| {
            let u = UserId(5);
            assert_eq!(sched.fetch_timeline(u).unwrap(), platform.timeline(u));
            let stats = sched.counters().snapshot();
            assert_eq!(stats.hits + stats.waits + stats.claimed, 0);
            assert_eq!(stats.prefetched, 0);
        });
    }

    #[test]
    fn overlap_runs_the_full_depth() {
        let s = twitter_2013(Scale::Tiny, 5);
        let slow = SlowBackend::new(Arc::new(s.platform), 15);
        with_sched(&slow, 8, |sched| {
            let keys: Vec<FetchKey> = (0..8).map(|i| FetchKey::Timeline(UserId(i))).collect();
            sched.announce(&keys);
            for i in 0..8u32 {
                sched.fetch_timeline(UserId(i)).unwrap();
            }
        });
        assert!(
            slow.peak_inflight() >= 4,
            "8 announced keys over 8 prefetchers should overlap, peak={}",
            slow.peak_inflight()
        );
    }

    #[test]
    fn reset_reports_stranded_keys_sorted_and_rollback_restores_schedule() {
        let s = twitter_2013(Scale::Tiny, 6);
        let platform = Arc::new(s.platform);
        let plan = FaultPlan::transient(11, 0.5);
        // Reference: the fault outcome of the *first* attempt per key.
        let reference: Vec<bool> = {
            let faulty = FaultyPlatform::new(Arc::clone(&platform), plan);
            (0..6u32)
                .map(|i| faulty.fetch_timeline(UserId(i)).is_err())
                .collect()
        };
        let faulty = FaultyPlatform::new(Arc::clone(&platform), plan);
        let stranded = with_sched(&faulty, 3, |sched| {
            let keys: Vec<FetchKey> = (5..=5)
                .chain(0..3)
                .map(|i| FetchKey::Timeline(UserId(i)))
                .collect();
            sched.announce(&keys);
            sched.drain();
            sched.reset()
        });
        assert_eq!(
            stranded,
            vec![
                FetchKey::Timeline(UserId(0)),
                FetchKey::Timeline(UserId(1)),
                FetchKey::Timeline(UserId(2)),
                FetchKey::Timeline(UserId(5)),
            ]
        );
        for key in &stranded {
            faulty.forget_attempt(key.endpoint(), key.fault_key());
        }
        // With the speculative attempts rolled back, each key's next
        // fetch replays its first-attempt fault outcome exactly.
        for (i, &first_faulted) in reference.iter().enumerate().take(6) {
            let got = faulty.fetch_timeline(UserId(i as u32)).is_err();
            assert_eq!(got, first_faulted, "user {i} fault schedule shifted");
        }
    }

    #[test]
    fn buffered_faults_are_handed_out_once_then_retries_pass_through() {
        let s = twitter_2013(Scale::Tiny, 7);
        let platform = Arc::new(s.platform);
        // Fault every first attempt; the cap forces attempt 2 to succeed.
        let plan = FaultPlan::transient(1, 1.0).with_max_consecutive(1);
        let faulty = FaultyPlatform::new(platform, plan);
        with_sched(&faulty, 2, |sched| {
            let u = UserId(2);
            sched.announce(&[FetchKey::Timeline(u)]);
            sched.drain();
            assert!(sched.fetch_timeline(u).is_err(), "buffered fault");
            assert!(sched.fetch_timeline(u).is_ok(), "retry passes through");
        });
    }

    #[test]
    fn drain_waits_out_the_queue() {
        let s = twitter_2013(Scale::Tiny, 8);
        let slow = SlowBackend::new(Arc::new(s.platform), 5);
        with_sched(&slow, 2, |sched| {
            let keys: Vec<FetchKey> = (0..6).map(|i| FetchKey::Connections(UserId(i))).collect();
            sched.announce(&keys);
            assert_eq!(sched.drain(), 6, "all buffered, none consumed");
            assert_eq!(slow.calls(), 6);
        });
    }

    #[test]
    fn inflight_policy_depths() {
        assert_eq!(InflightPolicy::Serial.depth(), 1);
        assert_eq!(InflightPolicy::Fixed(0).depth(), 1);
        assert_eq!(InflightPolicy::Fixed(7).depth(), 7);
        assert_eq!(
            InflightPolicy::Window {
                per_window: 180,
                cap: 32
            }
            .depth(),
            32
        );
        assert_eq!(
            InflightPolicy::Window {
                per_window: 4,
                cap: 32
            }
            .depth(),
            4
        );
        assert_eq!(InflightPolicy::default().depth(), 16);
    }
}
