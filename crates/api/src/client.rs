//! The three-query microblog client, plus a memoizing wrapper.
//!
//! [`MicroblogClient`] is the *only* window the analyzer has onto a
//! [`Platform`]: SEARCH, USER CONNECTIONS and USER TIMELINE, exactly as in
//! §2 of the paper. Every request is charged to the cost meter and the
//! shared budget *before* being served, with pagination translated into
//! call counts per the platform's [`ApiProfile`].
//!
//! [`CachingClient`] memoizes responses so that revisiting a node during a
//! random walk does not re-issue (and re-pay for) the same API calls —
//! the standard practice in the crawling literature the paper builds on.

use crate::budget::QueryBudget;
use crate::cache::{CacheLayer, CacheStats, Cached, CostReport, Flight};
use crate::error::ApiError;
use crate::meter::CostMeter;
use crate::profile::ApiProfile;
use crate::resilient::{ResilienceStats, ResilientClient};
use crate::sched::{FetchKey, PrefetchSink};
use microblog_obs::{Category, FieldValue, Tracer};
use microblog_platform::metric::MetricInputs;
use microblog_platform::{
    ApiBackend, ApiEndpoint, Fault, KeywordId, Platform, Post, PostId, TimeWindow, Timestamp,
    UserId, UserProfile,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// The serializable cache/accounting state of a [`CachingClient`],
/// captured into walker checkpoints and rebuilt on crash recovery.
///
/// Memoized *responses* are not stored — only the keys. Restore
/// re-fetches each key from the pristine platform at zero charge (the
/// data is deterministic) and then overwrites the accounting so the
/// restored client reports exactly what the checkpointed one did.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ClientState {
    /// Keywords with a memoized SEARCH response, sorted.
    pub searches: Vec<KeywordId>,
    /// Users with a memoized TIMELINE response, sorted.
    pub timelines: Vec<UserId>,
    /// Users with a memoized CONNECTIONS response, sorted.
    pub connections: Vec<UserId>,
    /// Cache hit/miss accounting at capture time.
    pub stats: CacheStats,
    /// Per-endpoint charged calls at capture time.
    pub meter: CostMeter,
    /// Budget spend at capture time.
    pub charged: u64,
}

/// Trace-field spelling of an endpoint; shared by charge, cache and
/// resilience events so summaries group on one vocabulary.
pub(crate) fn endpoint_name(endpoint: ApiEndpoint) -> &'static str {
    match endpoint {
        ApiEndpoint::Search => "search",
        ApiEndpoint::Timeline => "timeline",
        ApiEndpoint::Connections => "connections",
    }
}

/// One SEARCH result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SearchHit {
    /// Matching post id.
    pub post_id: PostId,
    /// Its author — the "seed user" source for the walks.
    pub author: UserId,
    /// Publication time.
    pub time: Timestamp,
}

/// Everything a USER TIMELINE query reveals about a user.
#[derive(Clone, Debug)]
pub struct UserView {
    /// The user.
    pub user: UserId,
    /// Profile (returned together with the timeline, per §2).
    pub profile: UserProfile,
    /// Follower count as displayed on the profile.
    pub follower_count: usize,
    /// Followee count as displayed on the profile.
    pub followee_count: usize,
    /// Visible posts, most recent first; truncated at the platform's
    /// timeline cap.
    pub posts: Vec<Post>,
    /// Whether the cap hid older posts (the paper's 3 200-tweet caveat).
    pub truncated: bool,
}

impl UserView {
    /// Metric-evaluation inputs backed by this view.
    pub fn metric_inputs(&self) -> MetricInputs<'_> {
        MetricInputs {
            profile: &self.profile,
            follower_count: self.follower_count,
            followee_count: self.followee_count,
            posts: &self.posts,
        }
    }

    /// Time of the first visible post mentioning `kw` inside `window` —
    /// the quantity that assigns the user to a level (§4.2.1).
    pub fn first_mention(&self, kw: KeywordId, window: TimeWindow) -> Option<Timestamp> {
        self.posts
            .iter()
            .rev() // oldest visible first
            .find(|p| p.mentions(kw) && window.contains(p.time))
            .map(|p| p.time)
    }
}

/// The rate-limited client.
///
/// Fetches go through an [`ApiBackend`] — the pristine [`Platform`] or a
/// fault-injecting wrapper — so the same client code runs against both.
#[derive(Clone, Debug)]
pub struct MicroblogClient<'a> {
    backend: &'a dyn ApiBackend,
    profile: ApiProfile,
    pub(crate) meter: CostMeter,
    pub(crate) budget: QueryBudget,
    pub(crate) tracer: Tracer,
}

impl<'a> MicroblogClient<'a> {
    /// A client with an unlimited budget.
    pub fn new(platform: &'a Platform, profile: ApiProfile) -> Self {
        Self::with_budget(platform, profile, QueryBudget::unlimited())
    }

    /// A client charging the given (possibly shared) budget.
    pub fn with_budget(platform: &'a Platform, profile: ApiProfile, budget: QueryBudget) -> Self {
        Self::from_backend(platform, profile, budget)
    }

    /// A client over an arbitrary backend (e.g. a
    /// [`microblog_platform::FaultyPlatform`]).
    pub fn from_backend(
        backend: &'a dyn ApiBackend,
        profile: ApiProfile,
        budget: QueryBudget,
    ) -> Self {
        MicroblogClient {
            backend,
            profile,
            meter: CostMeter::new(),
            budget,
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a tracer; charge events flow into it from here on.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The tracer charge events are recorded on (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Records a budget charge as a trace event, attributed to the
    /// ambient walk phase. `source` is `"fresh"` for real platform
    /// fetches and `"shared"` for logically-charged shared-cache hits.
    pub(crate) fn trace_charge(&self, endpoint: ApiEndpoint, calls: u64, source: &'static str) {
        if self.tracer.is_enabled() {
            self.tracer.emit(
                Category::Charge,
                "charge",
                &[
                    ("endpoint", FieldValue::from(endpoint_name(endpoint))),
                    ("calls", FieldValue::U64(calls)),
                    ("source", FieldValue::from(source)),
                ],
            );
        }
    }

    /// The API profile in force.
    pub fn api_profile(&self) -> &ApiProfile {
        &self.profile
    }

    /// Per-endpoint call counts so far.
    pub fn meter(&self) -> &CostMeter {
        &self.meter
    }

    /// The shared budget handle.
    pub fn budget(&self) -> &QueryBudget {
        &self.budget
    }

    /// The platform clock (public knowledge: "today").
    pub fn now(&self) -> Timestamp {
        self.backend.store().now()
    }

    /// Maps an injected backend fault to its API-level error, pricing the
    /// calls a truncated fetch burned before failing.
    fn fault_error(&self, endpoint: ApiEndpoint, fault: Fault, page: usize) -> ApiError {
        match fault {
            Fault::Transient => ApiError::Transient { endpoint },
            Fault::RateLimited { retry_after } => ApiError::RateLimited {
                endpoint,
                retry_after,
            },
            Fault::Timeout { latency } => ApiError::Timeout { endpoint, latency },
            Fault::Truncated { served } => ApiError::TruncatedPage {
                endpoint,
                served_calls: ApiProfile::calls_for(served, page),
            },
        }
    }

    /// SEARCH: posts mentioning `kw` within the trailing search window,
    /// most recent first, truncated at the platform's search cap.
    ///
    /// A faulted fetch fails *before* charging the budget or meter: spend
    /// that bought no data is waste, accounted by the resilience layer.
    pub fn search(&mut self, kw: KeywordId) -> Result<Vec<SearchHit>, ApiError> {
        let store = self.backend.store();
        let window = TimeWindow::trailing(store.now(), self.profile.search_window);
        let mut ids = self
            .backend
            .fetch_search(kw, window)
            .map_err(|f| self.fault_error(ApiEndpoint::Search, f, self.profile.search_page))?;
        if let Some(cap) = self.profile.search_cap {
            ids.truncate(cap);
        }
        let calls = ApiProfile::calls_for(ids.len(), self.profile.search_page);
        self.budget.charge(calls)?;
        self.meter.search += calls;
        self.trace_charge(ApiEndpoint::Search, calls, "fresh");
        Ok(ids
            .into_iter()
            .map(|pid| {
                let p = store.post(pid);
                SearchHit {
                    post_id: pid,
                    author: p.author,
                    time: p.time,
                }
            })
            .collect())
    }

    /// USER TIMELINE: profile plus visible posts (most recent first, capped).
    pub fn user_timeline(&mut self, u: UserId) -> Result<UserView, ApiError> {
        self.check_user(u)?;
        let all = self
            .backend
            .fetch_timeline(u)
            .map_err(|f| self.fault_error(ApiEndpoint::Timeline, f, self.profile.timeline_page))?;
        let store = self.backend.store();
        let visible = match self.profile.timeline_cap {
            Some(cap) => &all[..all.len().min(cap)], // ma-lint: allow(panic-safety) reason="slice end is len().min(cap), never past the end"
            None => all,
        };
        let calls = ApiProfile::calls_for(visible.len(), self.profile.timeline_page);
        self.budget.charge(calls)?;
        self.meter.timeline += calls;
        self.trace_charge(ApiEndpoint::Timeline, calls, "fresh");
        Ok(UserView {
            user: u,
            profile: store.profile(u).clone(),
            follower_count: store.followers(u).len(),
            followee_count: store.followees(u).len(),
            posts: visible.iter().map(|&pid| store.post(pid).clone()).collect(),
            truncated: visible.len() < all.len(),
        })
    }

    /// USER CONNECTIONS: the undirected social-graph neighbors of `u`
    /// (union of both directions on asymmetric platforms, which costs two
    /// paginated fetch sequences — §3.2).
    pub fn connections(&mut self, u: UserId) -> Result<Vec<UserId>, ApiError> {
        self.check_user(u)?;
        let (followers, followees) = self.backend.fetch_connections(u).map_err(|f| {
            self.fault_error(ApiEndpoint::Connections, f, self.profile.connections_page)
        })?;
        let calls = if self.profile.asymmetric {
            ApiProfile::calls_for(followers.len(), self.profile.connections_page)
                + ApiProfile::calls_for(followees.len(), self.profile.connections_page)
        } else {
            ApiProfile::calls_for(
                followers.len() + followees.len(),
                self.profile.connections_page,
            )
        };
        self.budget.charge(calls)?;
        self.meter.connections += calls;
        self.trace_charge(ApiEndpoint::Connections, calls, "fresh");
        // Merge the two sorted lists into the undirected neighbor set.
        let mut merged = Vec::with_capacity(followers.len() + followees.len());
        let (mut i, mut j) = (0, 0);
        while i < followers.len() || j < followees.len() {
            let next = match (followers.get(i), followees.get(j)) {
                (Some(&a), Some(&b)) if a == b => {
                    i += 1;
                    j += 1;
                    a
                }
                (Some(&a), Some(&b)) if a < b => {
                    i += 1;
                    a
                }
                (Some(_), Some(&b)) => {
                    j += 1;
                    b
                }
                (Some(&a), None) => {
                    i += 1;
                    a
                }
                (None, Some(&b)) => {
                    j += 1;
                    b
                }
                (None, None) => unreachable!("loop condition"), // ma-lint: allow(panic-safety) reason="loop guard ensures at least one side still has items"
            };
            merged.push(UserId(next));
        }
        Ok(merged)
    }

    fn check_user(&self, u: UserId) -> Result<(), ApiError> {
        if u.index() < self.backend.store().user_count() {
            Ok(())
        } else {
            Err(ApiError::UnknownUser(u))
        }
    }
}

/// A memoizing wrapper: repeated requests for the same user or keyword are
/// served from the query's own memo at zero cost. Optionally layered over
/// a shared cross-query [`CacheLayer`]; shared hits skip the platform
/// fetch but still charge the budget and meter what the fetch would have
/// cost, so runs stay reproducible (see [`crate::cache`] for why).
///
/// The stack under the memo is a [`ResilientClient`], so misses are
/// retried per the client's [`crate::resilient::RetryPolicy`] before a
/// failure surfaces here. **Only successful responses are memoized or
/// published to the shared layer** — a failed fetch can never poison a
/// cache.
#[derive(Clone)]
pub struct CachingClient<'a> {
    inner: ResilientClient<'a>,
    timelines: HashMap<UserId, Arc<UserView>>,
    connections: HashMap<UserId, Arc<Vec<UserId>>>,
    searches: HashMap<KeywordId, Arc<Vec<SearchHit>>>,
    shared: Option<Arc<dyn CacheLayer>>,
    prefetch: Option<&'a dyn PrefetchSink>,
    stats: CacheStats,
}

impl std::fmt::Debug for CachingClient<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachingClient")
            .field("inner", &self.inner)
            .field("shared", &self.shared.is_some())
            .field("prefetch", &self.prefetch.is_some())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<'a> CachingClient<'a> {
    /// Wraps a client with no shared layer and no retries (a retryable
    /// failure on the first attempt surfaces immediately).
    pub fn new(inner: MicroblogClient<'a>) -> Self {
        Self::resilient(ResilientClient::passthrough(inner), None)
    }

    /// Wraps a client over a shared cross-query cache. The layer must be
    /// dedicated to this client's platform and API profile.
    pub fn with_shared(inner: MicroblogClient<'a>, shared: Arc<dyn CacheLayer>) -> Self {
        Self::resilient(ResilientClient::passthrough(inner), Some(shared))
    }

    /// Wraps a retrying client, optionally over a shared cache — the full
    /// production stack: memo → shared cache → retries → API.
    pub fn resilient(inner: ResilientClient<'a>, shared: Option<Arc<dyn CacheLayer>>) -> Self {
        CachingClient {
            inner,
            timelines: HashMap::new(),
            connections: HashMap::new(),
            searches: HashMap::new(),
            shared,
            prefetch: None,
            stats: CacheStats::default(),
        }
    }

    /// Attaches a prefetch sink: [`CachingClient::announce_timelines`] /
    /// [`CachingClient::announce_connections`] forward upcoming fetch
    /// keys to it so a [`crate::sched::FetchScheduler`] can overlap the
    /// backend calls. Announcing changes *when* fetches happen, never
    /// whether — results still flow through the ordinary fetch path.
    pub fn with_prefetch(mut self, sink: &'a dyn PrefetchSink) -> Self {
        self.prefetch = Some(sink);
        self
    }

    /// The wrapped client (for meters/budget/profile access).
    pub fn client(&self) -> &MicroblogClient<'a> {
        self.inner.client()
    }

    /// The tracer attached to the underlying client; walkers publish
    /// their phase/level context through this handle.
    pub fn tracer(&self) -> &Tracer {
        self.inner.client().tracer()
    }

    /// Records a memo/shared-cache outcome as a trace event.
    fn trace_cache(&self, name: &'static str, endpoint: ApiEndpoint) {
        let tracer = self.inner.client().tracer();
        if tracer.is_enabled() {
            tracer.emit(
                Category::Cache,
                name,
                &[("endpoint", FieldValue::from(endpoint_name(endpoint)))],
            );
        }
    }

    /// Retry/backoff/breaker accounting of the resilient layer.
    pub fn resilience(&self) -> &ResilienceStats {
        self.inner.stats()
    }

    /// Total API calls charged so far.
    pub fn cost(&self) -> u64 {
        self.inner.client().meter().total()
    }

    /// Cache hit/miss accounting for this client.
    pub fn cache_stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Combined meter + cache report for this client.
    pub fn report(&self) -> CostReport {
        CostReport {
            meter: *self.inner.client().meter(),
            cache: self.stats,
        }
    }

    /// The platform clock.
    pub fn now(&self) -> Timestamp {
        self.inner.now()
    }

    /// Cached SEARCH.
    pub fn search(&mut self, kw: KeywordId) -> Result<Arc<Vec<SearchHit>>, ApiError> {
        if let Some(hit) = self.searches.get(&kw) {
            self.trace_cache("local_hit", ApiEndpoint::Search);
            self.stats.local_hits += 1;
            return Ok(Arc::clone(hit));
        }
        let flight = match &self.shared {
            Some(layer) => layer.join_search(kw),
            None => Flight::Lead,
        };
        if let Flight::Ready(entry) = flight {
            self.trace_cache("shared_hit", ApiEndpoint::Search);
            self.inner
                .absorb_shared_hit(ApiEndpoint::Search, entry.calls)?;
            self.stats.shared_hits += 1;
            self.stats.saved_calls += entry.calls;
            self.searches.insert(kw, Arc::clone(&entry.data));
            return Ok(entry.data);
        }
        self.trace_cache("miss", ApiEndpoint::Search);
        let before = self.inner.client().meter().search;
        let fresh = match self.inner.search(kw) {
            Ok(hits) => Arc::new(hits),
            Err(e) => {
                // Release the flight so parked waiters re-elect a leader
                // instead of stalling on a fetch that will never publish.
                if let Some(layer) = &self.shared {
                    layer.abort_search(kw);
                }
                return Err(e);
            }
        };
        let calls = self.inner.client().meter().search - before;
        self.stats.misses += 1;
        self.stats.actual_calls += calls;
        if let Some(layer) = &self.shared {
            layer.put_search(
                kw,
                Cached {
                    data: Arc::clone(&fresh),
                    calls,
                },
            );
        }
        self.searches.insert(kw, Arc::clone(&fresh));
        Ok(fresh)
    }

    /// Cached USER TIMELINE.
    pub fn user_timeline(&mut self, u: UserId) -> Result<Arc<UserView>, ApiError> {
        if let Some(hit) = self.timelines.get(&u) {
            self.trace_cache("local_hit", ApiEndpoint::Timeline);
            self.stats.local_hits += 1;
            return Ok(Arc::clone(hit));
        }
        let flight = match &self.shared {
            Some(layer) => layer.join_timeline(u),
            None => Flight::Lead,
        };
        if let Flight::Ready(entry) = flight {
            self.trace_cache("shared_hit", ApiEndpoint::Timeline);
            self.inner
                .absorb_shared_hit(ApiEndpoint::Timeline, entry.calls)?;
            self.stats.shared_hits += 1;
            self.stats.saved_calls += entry.calls;
            self.timelines.insert(u, Arc::clone(&entry.data));
            return Ok(entry.data);
        }
        self.trace_cache("miss", ApiEndpoint::Timeline);
        let before = self.inner.client().meter().timeline;
        let fresh = match self.inner.user_timeline(u) {
            Ok(view) => Arc::new(view),
            Err(e) => {
                if let Some(layer) = &self.shared {
                    layer.abort_timeline(u);
                }
                return Err(e);
            }
        };
        let calls = self.inner.client().meter().timeline - before;
        self.stats.misses += 1;
        self.stats.actual_calls += calls;
        if let Some(layer) = &self.shared {
            layer.put_timeline(
                u,
                Cached {
                    data: Arc::clone(&fresh),
                    calls,
                },
            );
        }
        self.timelines.insert(u, Arc::clone(&fresh));
        Ok(fresh)
    }

    /// Cached USER CONNECTIONS.
    pub fn connections(&mut self, u: UserId) -> Result<Arc<Vec<UserId>>, ApiError> {
        if let Some(hit) = self.connections.get(&u) {
            self.trace_cache("local_hit", ApiEndpoint::Connections);
            self.stats.local_hits += 1;
            return Ok(Arc::clone(hit));
        }
        let flight = match &self.shared {
            Some(layer) => layer.join_connections(u),
            None => Flight::Lead,
        };
        if let Flight::Ready(entry) = flight {
            self.trace_cache("shared_hit", ApiEndpoint::Connections);
            self.inner
                .absorb_shared_hit(ApiEndpoint::Connections, entry.calls)?;
            self.stats.shared_hits += 1;
            self.stats.saved_calls += entry.calls;
            self.connections.insert(u, Arc::clone(&entry.data));
            return Ok(entry.data);
        }
        self.trace_cache("miss", ApiEndpoint::Connections);
        let before = self.inner.client().meter().connections;
        let fresh = match self.inner.connections(u) {
            Ok(merged) => Arc::new(merged),
            Err(e) => {
                if let Some(layer) = &self.shared {
                    layer.abort_connections(u);
                }
                return Err(e);
            }
        };
        let calls = self.inner.client().meter().connections - before;
        self.stats.misses += 1;
        self.stats.actual_calls += calls;
        if let Some(layer) = &self.shared {
            layer.put_connections(
                u,
                Cached {
                    data: Arc::clone(&fresh),
                    calls,
                },
            );
        }
        self.connections.insert(u, Arc::clone(&fresh));
        Ok(fresh)
    }

    /// Number of distinct users whose timeline was fetched.
    pub fn distinct_timelines(&self) -> usize {
        self.timelines.len()
    }

    /// Emits one deterministic `sched` event. The count fields are pure
    /// functions of the logical fetch history (memo-filtered key counts,
    /// buffered-result counts), never of scheduler thread timing, so
    /// traces stay byte-identical across runs and pipeline depths.
    fn trace_sched(&self, name: &'static str, endpoint: Option<ApiEndpoint>, count: usize) {
        let tracer = self.inner.client().tracer();
        if tracer.is_enabled() {
            match endpoint {
                Some(e) => tracer.emit(
                    Category::Sched,
                    name,
                    &[
                        ("endpoint", FieldValue::from(endpoint_name(e))),
                        ("count", FieldValue::from(count)),
                    ],
                ),
                None => tracer.emit(Category::Sched, name, &[("count", FieldValue::from(count))]),
            }
        }
    }

    /// Announces that the timelines of `users` are about to be needed.
    /// Users already memoized are skipped; with no sink attached this is
    /// a no-op, so callers can announce unconditionally.
    pub fn announce_timelines(&mut self, users: &[UserId]) {
        let Some(sink) = self.prefetch else { return };
        let keys: Vec<FetchKey> = users
            .iter()
            .filter(|u| !self.timelines.contains_key(u))
            .map(|&u| FetchKey::Timeline(u))
            .collect();
        if keys.is_empty() {
            return;
        }
        self.trace_sched("announce", Some(ApiEndpoint::Timeline), keys.len());
        sink.announce(&keys);
    }

    /// Announces that the connections of `users` are about to be needed.
    /// See [`CachingClient::announce_timelines`].
    pub fn announce_connections(&mut self, users: &[UserId]) {
        let Some(sink) = self.prefetch else { return };
        let keys: Vec<FetchKey> = users
            .iter()
            .filter(|u| !self.connections.contains_key(u))
            .map(|&u| FetchKey::Connections(u))
            .collect();
        if keys.is_empty() {
            return;
        }
        self.trace_sched("announce", Some(ApiEndpoint::Connections), keys.len());
        sink.announce(&keys);
    }

    /// Waits until no announced fetch is queued or in flight — the quiet
    /// point checkpoint capture requires, so a snapshot never races a
    /// half-done prefetch. Returns the number of completed-but-unconsumed
    /// buffered results. No-op (returning 0) without a sink.
    pub fn drain_prefetch(&mut self) -> usize {
        let Some(sink) = self.prefetch else { return 0 };
        let outstanding = sink.drain();
        self.trace_sched("drain", None, outstanding);
        outstanding
    }

    /// Captures the memo keys and accounting for a walker checkpoint.
    pub fn checkpoint_state(&self) -> ClientState {
        let mut searches: Vec<KeywordId> = self.searches.keys().copied().collect();
        searches.sort_unstable_by_key(|k| k.0);
        let mut timelines: Vec<UserId> = self.timelines.keys().copied().collect();
        timelines.sort_unstable_by_key(|u| u.0);
        let mut connections: Vec<UserId> = self.connections.keys().copied().collect();
        connections.sort_unstable_by_key(|u| u.0);
        ClientState {
            searches,
            timelines,
            connections,
            stats: self.stats,
            meter: *self.inner.client().meter(),
            charged: self.inner.client().budget().spent(),
        }
    }

    /// Installs a memoized SEARCH response without charging or touching
    /// the shared layer (checkpoint restore only).
    pub fn install_search(&mut self, kw: KeywordId, data: Arc<Vec<SearchHit>>) {
        self.searches.insert(kw, data);
    }

    /// Installs a memoized TIMELINE response without charging (restore).
    pub fn install_timeline(&mut self, u: UserId, data: Arc<UserView>) {
        self.timelines.insert(u, data);
    }

    /// Installs a memoized CONNECTIONS response without charging (restore).
    pub fn install_connections(&mut self, u: UserId, data: Arc<Vec<UserId>>) {
        self.connections.insert(u, data);
    }

    /// Overwrites the cache stats and cost meter so a restored client
    /// reports exactly the checkpointed accounting (the restore-time
    /// fetches that repopulated the memo were free and unmetered).
    pub fn restore_accounting(&mut self, stats: CacheStats, meter: CostMeter) {
        self.stats = stats;
        self.inner.client_mut().meter = meter;
    }
}
