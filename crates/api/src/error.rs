//! API error type.

use microblog_platform::UserId;

/// Failures surfaced by the data-access layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ApiError {
    /// The shared query budget ran out; the request was *not* served.
    BudgetExhausted {
        /// Calls spent when the request was rejected.
        spent: u64,
        /// The configured limit.
        limit: u64,
    },
    /// The requested user does not exist on the platform.
    UnknownUser(UserId),
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::BudgetExhausted { spent, limit } => {
                write!(f, "query budget exhausted ({spent}/{limit} API calls)")
            }
            ApiError::UnknownUser(u) => write!(f, "unknown user {u}"),
        }
    }
}

impl std::error::Error for ApiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = ApiError::BudgetExhausted {
            spent: 10,
            limit: 10,
        };
        assert_eq!(e.to_string(), "query budget exhausted (10/10 API calls)");
        assert_eq!(
            ApiError::UnknownUser(UserId(3)).to_string(),
            "unknown user u3"
        );
    }
}
