//! API error type: the retryable-vs-fatal failure taxonomy.
//!
//! The original two variants ([`ApiError::BudgetExhausted`],
//! [`ApiError::UnknownUser`]) model the happy path of §2 of the paper.
//! Real platform APIs also fail *transiently* — HTTP 5xx, 429 rate-limit
//! rejections, hung calls, truncated pagination — and the resilience layer
//! ([`crate::resilient`]) needs to know which failures are worth retrying
//! and which must end the walk. [`ApiError::is_retryable`] and
//! [`ApiError::ends_walk`] encode that split.

use microblog_platform::{ApiEndpoint, Duration, UserId};

/// Failures surfaced by the data-access layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ApiError {
    /// The shared query budget ran out; the request was *not* served.
    BudgetExhausted {
        /// Calls spent when the request was rejected.
        spent: u64,
        /// The configured limit.
        limit: u64,
    },
    /// The requested user does not exist on the platform.
    UnknownUser(UserId),
    /// A transient server error (HTTP 5xx). Retryable.
    Transient {
        /// The endpoint that failed.
        endpoint: ApiEndpoint,
    },
    /// A rate-limit rejection (HTTP 429). Retryable after the window.
    RateLimited {
        /// The endpoint that rejected the call.
        endpoint: ApiEndpoint,
        /// The server's requested cool-off.
        retry_after: Duration,
    },
    /// The call hung past its latency budget and was abandoned. Retryable.
    Timeout {
        /// The endpoint that hung.
        endpoint: ApiEndpoint,
        /// How long it hung before being cut.
        latency: Duration,
    },
    /// Pagination was cut short mid-fetch; the partial data is unusable
    /// (inconsistent cursor) and the fetch must restart. Retryable.
    TruncatedPage {
        /// The endpoint that truncated.
        endpoint: ApiEndpoint,
        /// Calls burned serving the unusable prefix.
        served_calls: u64,
    },
    /// The per-call deadline elapsed across retries. Fatal: ends the walk.
    DeadlineExceeded {
        /// The endpoint being retried when time ran out.
        endpoint: ApiEndpoint,
        /// Total (simulated) time waited on this logical call.
        waited: Duration,
    },
    /// The endpoint's circuit breaker is open; the call failed fast
    /// without touching the platform. Fatal: ends the walk.
    CircuitOpen {
        /// The endpoint whose breaker is open.
        endpoint: ApiEndpoint,
    },
    /// The retry policy gave up on a retryable failure. Fatal: ends the
    /// walk with whatever samples were collected.
    RetriesExhausted {
        /// The endpoint that kept failing.
        endpoint: ApiEndpoint,
        /// Attempts issued before giving up.
        attempts: u32,
        /// The last underlying failure.
        last: Box<ApiError>,
    },
}

impl ApiError {
    /// Whether a retry could plausibly succeed. Retryable errors never
    /// escape a [`crate::resilient::ResilientClient`]: they are either
    /// absorbed by a successful retry or wrapped in
    /// [`ApiError::RetriesExhausted`].
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ApiError::Transient { .. }
                | ApiError::RateLimited { .. }
                | ApiError::Timeout { .. }
                | ApiError::TruncatedPage { .. }
        )
    }

    /// Whether a walker should treat this error as the end of its walk —
    /// finalize with the samples collected so far — rather than a hard
    /// failure to propagate. Budget exhaustion has always worked this
    /// way; the resilience give-ups extend the same contract.
    pub fn ends_walk(&self) -> bool {
        matches!(
            self,
            ApiError::BudgetExhausted { .. }
                | ApiError::DeadlineExceeded { .. }
                | ApiError::CircuitOpen { .. }
                | ApiError::RetriesExhausted { .. }
        )
    }

    /// API calls a *failed* attempt with this error burned against the
    /// real platform — spend that bought no data. Logical budgets never
    /// see these (estimates must not depend on fault luck); the waste
    /// meter in [`crate::resilient::ResilienceStats`] does.
    pub fn wasted_calls(&self) -> u64 {
        match self {
            ApiError::Transient { .. } | ApiError::Timeout { .. } => 1,
            // A 429 is rejected before serving anything.
            ApiError::RateLimited { .. } => 0,
            ApiError::TruncatedPage { served_calls, .. } => *served_calls,
            _ => 0,
        }
    }

    /// The endpoint involved, when the error names one.
    pub fn endpoint(&self) -> Option<ApiEndpoint> {
        match self {
            ApiError::Transient { endpoint }
            | ApiError::RateLimited { endpoint, .. }
            | ApiError::Timeout { endpoint, .. }
            | ApiError::TruncatedPage { endpoint, .. }
            | ApiError::DeadlineExceeded { endpoint, .. }
            | ApiError::CircuitOpen { endpoint }
            | ApiError::RetriesExhausted { endpoint, .. } => Some(*endpoint),
            ApiError::BudgetExhausted { .. } | ApiError::UnknownUser(_) => None,
        }
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::BudgetExhausted { spent, limit } => {
                write!(f, "query budget exhausted ({spent}/{limit} API calls)")
            }
            ApiError::UnknownUser(u) => write!(f, "unknown user {u}"),
            ApiError::Transient { endpoint } => {
                write!(f, "{endpoint}: transient server error")
            }
            ApiError::RateLimited {
                endpoint,
                retry_after,
            } => write!(
                f,
                "{endpoint}: rate limited (retry after {}s)",
                retry_after.0
            ),
            ApiError::Timeout { endpoint, latency } => {
                write!(f, "{endpoint}: timed out after {}s", latency.0)
            }
            ApiError::TruncatedPage {
                endpoint,
                served_calls,
            } => write!(
                f,
                "{endpoint}: truncated page ({served_calls} calls wasted)"
            ),
            ApiError::DeadlineExceeded { endpoint, waited } => {
                write!(f, "{endpoint}: deadline exceeded after {}s", waited.0)
            }
            ApiError::CircuitOpen { endpoint } => {
                write!(f, "{endpoint}: circuit breaker open, failing fast")
            }
            ApiError::RetriesExhausted {
                endpoint,
                attempts,
                last,
            } => write!(f, "{endpoint}: gave up after {attempts} attempts ({last})"),
        }
    }
}

impl std::error::Error for ApiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = ApiError::BudgetExhausted {
            spent: 10,
            limit: 10,
        };
        assert_eq!(e.to_string(), "query budget exhausted (10/10 API calls)");
        assert_eq!(
            ApiError::UnknownUser(UserId(3)).to_string(),
            "unknown user u3"
        );
        assert_eq!(
            ApiError::RetriesExhausted {
                endpoint: ApiEndpoint::Search,
                attempts: 4,
                last: Box::new(ApiError::Transient {
                    endpoint: ApiEndpoint::Search
                }),
            }
            .to_string(),
            "search: gave up after 4 attempts (search: transient server error)"
        );
    }

    #[test]
    fn taxonomy_splits_retryable_from_fatal() {
        let ep = ApiEndpoint::Timeline;
        let retryable = [
            ApiError::Transient { endpoint: ep },
            ApiError::RateLimited {
                endpoint: ep,
                retry_after: Duration(60),
            },
            ApiError::Timeout {
                endpoint: ep,
                latency: Duration(5),
            },
            ApiError::TruncatedPage {
                endpoint: ep,
                served_calls: 2,
            },
        ];
        for e in &retryable {
            assert!(e.is_retryable(), "{e} must be retryable");
            assert!(!e.ends_walk(), "{e} must not end a walk unretried");
            assert_eq!(e.endpoint(), Some(ep));
        }
        let fatal = [
            ApiError::BudgetExhausted { spent: 1, limit: 1 },
            ApiError::DeadlineExceeded {
                endpoint: ep,
                waited: Duration(300),
            },
            ApiError::CircuitOpen { endpoint: ep },
            ApiError::RetriesExhausted {
                endpoint: ep,
                attempts: 5,
                last: Box::new(ApiError::Transient { endpoint: ep }),
            },
        ];
        for e in &fatal {
            assert!(!e.is_retryable(), "{e} must not be retryable");
            assert!(e.ends_walk(), "{e} must end the walk gracefully");
        }
        // A hard programming error neither retries nor ends the walk.
        let unknown = ApiError::UnknownUser(UserId(9));
        assert!(!unknown.is_retryable());
        assert!(!unknown.ends_walk());
    }

    #[test]
    fn waste_accounting() {
        let ep = ApiEndpoint::Connections;
        assert_eq!(ApiError::Transient { endpoint: ep }.wasted_calls(), 1);
        assert_eq!(
            ApiError::RateLimited {
                endpoint: ep,
                retry_after: Duration(60)
            }
            .wasted_calls(),
            0
        );
        assert_eq!(
            ApiError::TruncatedPage {
                endpoint: ep,
                served_calls: 3
            }
            .wasted_calls(),
            3
        );
        assert_eq!(
            ApiError::BudgetExhausted { spent: 0, limit: 0 }.wasted_calls(),
            0
        );
    }
}
