//! Cross-query response caching.
//!
//! [`CacheLayer`] is the interface a *shared* cache implements so that
//! many concurrent queries against the same platform + [`ApiProfile`] can
//! reuse each other's SEARCH / USER TIMELINE / USER CONNECTIONS
//! responses. The service crate provides the production implementation (a
//! sharded, bounded, LRU-evicting store); this crate only defines the
//! contract and the accounting types.
//!
//! ## Logical charging
//!
//! The walkers terminate when the per-query budget runs out, so a cache
//! hit that cost *nothing* would lengthen the walk and change the
//! estimate — queries would stop being reproducible. Instead every cache
//! entry remembers how many API calls the original fetch cost
//! ([`Cached::calls`]), and a shared-cache hit charges the querying
//! client's budget and meter exactly that amount. The walk trajectory,
//! the reported [`CostMeter`] totals and the final estimate are therefore
//! *bit-identical* to an isolated run; only the count of **actual**
//! platform fetches drops. [`CacheStats`] tracks both sides.
//!
//! [`ApiProfile`]: crate::profile::ApiProfile
//! [`CostMeter`]: crate::meter::CostMeter

use crate::client::{SearchHit, UserView};
use crate::meter::CostMeter;
use microblog_obs::{Category, FieldValue, Tracer};
use microblog_platform::{ApiEndpoint, KeywordId, UserId};
use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A cached response plus the API-call cost of the fetch that produced
/// it, so hits can re-charge the same amount (see module docs).
#[derive(Clone, Debug)]
pub struct Cached<T: ?Sized> {
    /// The shared response payload.
    pub data: Arc<T>,
    /// API calls the original fetch charged.
    pub calls: u64,
}

/// A cached SEARCH response.
pub type CachedSearch = Cached<Vec<SearchHit>>;
/// A cached USER TIMELINE response.
pub type CachedTimeline = Cached<UserView>;
/// A cached USER CONNECTIONS response.
pub type CachedConnections = Cached<Vec<UserId>>;

/// A thread-safe response cache shared by many queries.
///
/// Implementations must be safe to call from concurrent worker threads;
/// all methods take `&self`. A layer instance is only meaningful for one
/// (platform, API profile) pair — mixing pollutes responses and costs.
pub trait CacheLayer: Send + Sync {
    /// Looks up a SEARCH response.
    fn get_search(&self, kw: KeywordId) -> Option<CachedSearch>;
    /// Stores a SEARCH response. On coalescing layers this doubles as
    /// flight completion: parked waiters for `kw` wake with the entry.
    fn put_search(&self, kw: KeywordId, entry: CachedSearch);
    /// Looks up a USER TIMELINE response.
    fn get_timeline(&self, u: UserId) -> Option<CachedTimeline>;
    /// Stores a USER TIMELINE response (and completes any flight).
    fn put_timeline(&self, u: UserId, entry: CachedTimeline);
    /// Looks up a USER CONNECTIONS response.
    fn get_connections(&self, u: UserId) -> Option<CachedConnections>;
    /// Stores a USER CONNECTIONS response (and completes any flight).
    fn put_connections(&self, u: UserId, entry: CachedConnections);

    /// Coalescing-aware SEARCH lookup: either returns an entry (possibly
    /// after parking on a concurrent in-flight fetch of the same key) or
    /// elects the caller leader. A leader **must** follow up with
    /// [`CacheLayer::put_search`] on success or
    /// [`CacheLayer::abort_search`] on failure, or waiters stall until
    /// their liveness timeout. The default is the plain uncoalesced
    /// lookup, so existing layers behave exactly as before.
    fn join_search(&self, kw: KeywordId) -> Flight<CachedSearch> {
        match self.get_search(kw) {
            Some(entry) => Flight::Ready(entry),
            None => Flight::Lead,
        }
    }
    /// Releases a SEARCH flight whose fetch failed; waiters re-elect.
    fn abort_search(&self, _kw: KeywordId) {}

    /// Coalescing-aware USER TIMELINE lookup (see [`CacheLayer::join_search`]).
    fn join_timeline(&self, u: UserId) -> Flight<CachedTimeline> {
        match self.get_timeline(u) {
            Some(entry) => Flight::Ready(entry),
            None => Flight::Lead,
        }
    }
    /// Releases a USER TIMELINE flight whose fetch failed.
    fn abort_timeline(&self, _u: UserId) {}

    /// Coalescing-aware USER CONNECTIONS lookup (see [`CacheLayer::join_search`]).
    fn join_connections(&self, u: UserId) -> Flight<CachedConnections> {
        match self.get_connections(u) {
            Some(entry) => Flight::Ready(entry),
            None => Flight::Lead,
        }
    }
    /// Releases a USER CONNECTIONS flight whose fetch failed.
    fn abort_connections(&self, _u: UserId) {}
}

// Allows wrapping combinators over `Arc`-shared layers (the service keeps
// its store behind an `Arc` so workers and the coalescer share it).
impl<L: CacheLayer + ?Sized> CacheLayer for Arc<L> {
    fn get_search(&self, kw: KeywordId) -> Option<CachedSearch> {
        (**self).get_search(kw)
    }
    fn put_search(&self, kw: KeywordId, entry: CachedSearch) {
        (**self).put_search(kw, entry);
    }
    fn get_timeline(&self, u: UserId) -> Option<CachedTimeline> {
        (**self).get_timeline(u)
    }
    fn put_timeline(&self, u: UserId, entry: CachedTimeline) {
        (**self).put_timeline(u, entry);
    }
    fn get_connections(&self, u: UserId) -> Option<CachedConnections> {
        (**self).get_connections(u)
    }
    fn put_connections(&self, u: UserId, entry: CachedConnections) {
        (**self).put_connections(u, entry);
    }
    fn join_search(&self, kw: KeywordId) -> Flight<CachedSearch> {
        (**self).join_search(kw)
    }
    fn abort_search(&self, kw: KeywordId) {
        (**self).abort_search(kw);
    }
    fn join_timeline(&self, u: UserId) -> Flight<CachedTimeline> {
        (**self).join_timeline(u)
    }
    fn abort_timeline(&self, u: UserId) {
        (**self).abort_timeline(u);
    }
    fn join_connections(&self, u: UserId) -> Flight<CachedConnections> {
        (**self).join_connections(u)
    }
    fn abort_connections(&self, u: UserId) {
        (**self).abort_connections(u);
    }
}

/// Outcome of a coalescing-aware lookup.
#[must_use = "a Lead flight must be completed with put_* or released with abort_*"]
#[derive(Clone, Debug)]
pub enum Flight<T> {
    /// An entry is available — from the cache, or handed over by a
    /// concurrent leader whose fetch just completed.
    Ready(T),
    /// The caller was elected leader for this key and owes the layer a
    /// `put_*` (success) or `abort_*` (failure).
    Lead,
}

/// Per-client cache accounting, kept by
/// [`CachingClient`](crate::client::CachingClient).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Requests served from this query's own memo at zero cost.
    pub local_hits: u64,
    /// Requests served from the shared cross-query layer (charged
    /// logically, but no platform fetch happened).
    pub shared_hits: u64,
    /// Requests that reached the platform.
    pub misses: u64,
    /// API calls actually issued against the platform (misses only).
    pub actual_calls: u64,
    /// API calls charged for shared hits without touching the platform —
    /// the cross-query saving.
    pub saved_calls: u64,
}

impl CacheStats {
    /// Total requests that went through the cache stack.
    pub fn requests(&self) -> u64 {
        self.local_hits + self.shared_hits + self.misses
    }

    /// Shared-layer hit rate over the requests that missed the local
    /// memo; `None` when no request got that far.
    pub fn shared_hit_rate(&self) -> Option<f64> {
        let reached = self.shared_hits + self.misses;
        (reached > 0).then(|| self.shared_hits as f64 / reached as f64)
    }

    /// Accumulates another client's counters (for service-wide totals).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.local_hits += other.local_hits;
        self.shared_hits += other.shared_hits;
        self.misses += other.misses;
        self.actual_calls += other.actual_calls;
        self.saved_calls += other.saved_calls;
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits ({} local, {} shared), {} misses; {} calls issued, {} saved",
            self.local_hits + self.shared_hits,
            self.local_hits,
            self.shared_hits,
            self.misses,
            self.actual_calls,
            self.saved_calls
        )
    }
}

/// A client's combined charge/cache report: what was charged (the
/// paper's cost metric, including logical charges for shared hits) and
/// how the cache stack behaved.
#[derive(Clone, Debug, Serialize)]
pub struct CostReport {
    /// Per-endpoint charged calls.
    pub meter: CostMeter,
    /// Hit/miss accounting.
    pub cache: CacheStats,
}

impl std::fmt::Display for CostReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}; cache: {}", self.meter, self.cache)
    }
}

/// How long a parked waiter sleeps before re-checking liveness. Purely a
/// crash backstop: a leader that vanished without `put_*`/`abort_*` (a
/// panicked job) leaves its slot behind, and the first waiter to time out
/// steals leadership. Completion and abort wake waiters immediately, so
/// this never sits on the happy path, and it is wall time a logical-clock
/// run never observes. Generous on purpose — stealing from a merely slow
/// leader costs a duplicate fetch.
const FLIGHT_LIVENESS_CHECK: Duration = Duration::from_millis(200);

/// Snapshot of a [`CoalescingLayer`]'s dedup counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct CoalesceStats {
    /// Flights led: misses that performed the backend fetch.
    pub leads: u64,
    /// Requests that parked on a concurrent in-flight fetch instead of
    /// issuing their own — the calls coalescing deduplicated.
    pub waits: u64,
    /// Flights released by `abort_*` after a failed fetch.
    pub aborts: u64,
    /// Most requesters ever coalesced onto one flight (leader + waiters).
    pub peak_inflight: u64,
}

impl CoalesceStats {
    /// Fraction of shared-cache misses that were absorbed by an already
    /// in-flight fetch; `None` before any miss.
    pub fn coalesced_miss_ratio(&self) -> Option<f64> {
        let misses = self.leads + self.waits;
        (misses > 0).then(|| self.waits as f64 / misses as f64)
    }
}

#[derive(Debug, Default)]
struct CoalesceCounters {
    leads: AtomicU64,
    waits: AtomicU64,
    aborts: AtomicU64,
    peak_inflight: AtomicU64,
}

impl CoalesceCounters {
    fn snapshot(&self) -> CoalesceStats {
        CoalesceStats {
            leads: self.leads.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            peak_inflight: self.peak_inflight.load(Ordering::Relaxed),
        }
    }
}

/// Per-endpoint in-flight slots: key → number of currently parked
/// waiters. A slot exists exactly while a leader owes a completion.
#[derive(Debug)]
struct FlightTable<K> {
    slots: Mutex<HashMap<K, u64>>,
    cond: Condvar,
}

impl<K: Copy + Eq + Hash> FlightTable<K> {
    fn new() -> Self {
        FlightTable {
            slots: Mutex::new(HashMap::new()),
            cond: Condvar::new(),
        }
    }

    /// The join protocol: re-check the cache, then either claim the slot
    /// (leader) or park until the slot resolves. `lookup` reads the
    /// layer underneath — a lock-ordering note: it acquires the inner
    /// cache's shard lock *under* the slot lock, and nothing ever
    /// acquires them in the opposite order. The backend fetch itself
    /// always happens with no lock held (the leader returns first).
    fn join<T>(
        &self,
        key: K,
        counters: &CoalesceCounters,
        lookup: impl Fn() -> Option<T>,
    ) -> (Flight<T>, bool) {
        let mut slots = self.slots.lock();
        let mut parked = false;
        loop {
            if let Some(entry) = lookup() {
                return (Flight::Ready(entry), parked);
            }
            if let Some(waiters) = slots.get_mut(&key) {
                *waiters += 1;
                if !parked {
                    parked = true;
                    counters.waits.fetch_add(1, Ordering::Relaxed);
                }
                counters
                    .peak_inflight
                    .fetch_max(*waiters + 1, Ordering::Relaxed);
                let timed_out = self
                    .cond
                    .wait_for(&mut slots, FLIGHT_LIVENESS_CHECK)
                    .timed_out();
                if let Some(waiters) = slots.get_mut(&key) {
                    *waiters = waiters.saturating_sub(1);
                }
                if timed_out && slots.contains_key(&key) && lookup().is_none() {
                    // The leader died without completing or aborting;
                    // drop the stale slot so the next pass re-elects.
                    slots.remove(&key);
                }
            } else {
                counters.leads.fetch_add(1, Ordering::Relaxed);
                counters.peak_inflight.fetch_max(1, Ordering::Relaxed);
                slots.insert(key, 0);
                return (Flight::Lead, parked);
            }
        }
    }

    /// Resolves the slot (entry published or flight aborted) and wakes
    /// every parked waiter to re-run the join loop.
    fn resolve(&self, key: K) -> bool {
        let existed = self.slots.lock().remove(&key).is_some();
        if existed {
            self.cond.notify_all();
        }
        existed
    }
}

/// Singleflight combinator over any [`CacheLayer`]: the first requester
/// to miss a key performs the platform fetch while concurrent requesters
/// for the same key park on a per-key in-flight slot and receive the
/// filled entry when the leader publishes it.
///
/// Charging is untouched — a parked waiter is handed a [`Cached`] entry
/// and charges its own budget and meter exactly like a shared-cache hit,
/// so estimates, charged totals and quota settlements are bit-identical
/// to an uncoalesced run. Only the count of *actual* backend calls drops.
#[derive(Debug)]
pub struct CoalescingLayer<L> {
    inner: L,
    searches: FlightTable<KeywordId>,
    timelines: FlightTable<UserId>,
    connections: FlightTable<UserId>,
    counters: CoalesceCounters,
    tracer: Tracer,
}

impl<L: CacheLayer> CoalescingLayer<L> {
    /// Wraps a layer; coalescing is purely additive.
    pub fn new(inner: L) -> Self {
        CoalescingLayer {
            inner,
            searches: FlightTable::new(),
            timelines: FlightTable::new(),
            connections: FlightTable::new(),
            counters: CoalesceCounters::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a tracer; lead/join/abort events flow into it.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The wrapped layer.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// Dedup counters so far.
    pub fn stats(&self) -> CoalesceStats {
        self.counters.snapshot()
    }

    fn trace(&self, name: &'static str, endpoint: ApiEndpoint) {
        if self.tracer.is_enabled() {
            self.tracer.emit(
                Category::Coalesce,
                name,
                &[(
                    "endpoint",
                    FieldValue::from(crate::client::endpoint_name(endpoint)),
                )],
            );
        }
    }

    fn trace_flight<T>(&self, outcome: &(Flight<T>, bool), endpoint: ApiEndpoint) {
        let (flight, parked) = outcome;
        if *parked {
            self.trace("join", endpoint);
        }
        if matches!(flight, Flight::Lead) {
            self.trace("lead", endpoint);
        }
    }
}

impl<L: CacheLayer> CacheLayer for CoalescingLayer<L> {
    fn get_search(&self, kw: KeywordId) -> Option<CachedSearch> {
        self.inner.get_search(kw)
    }
    fn put_search(&self, kw: KeywordId, entry: CachedSearch) {
        self.inner.put_search(kw, entry);
        self.searches.resolve(kw);
    }
    fn get_timeline(&self, u: UserId) -> Option<CachedTimeline> {
        self.inner.get_timeline(u)
    }
    fn put_timeline(&self, u: UserId, entry: CachedTimeline) {
        self.inner.put_timeline(u, entry);
        self.timelines.resolve(u);
    }
    fn get_connections(&self, u: UserId) -> Option<CachedConnections> {
        self.inner.get_connections(u)
    }
    fn put_connections(&self, u: UserId, entry: CachedConnections) {
        self.inner.put_connections(u, entry);
        self.connections.resolve(u);
    }

    fn join_search(&self, kw: KeywordId) -> Flight<CachedSearch> {
        let outcome = self
            .searches
            .join(kw, &self.counters, || self.inner.get_search(kw));
        self.trace_flight(&outcome, ApiEndpoint::Search);
        outcome.0
    }
    fn abort_search(&self, kw: KeywordId) {
        if self.searches.resolve(kw) {
            self.counters.aborts.fetch_add(1, Ordering::Relaxed);
            self.trace("abort", ApiEndpoint::Search);
        }
    }
    fn join_timeline(&self, u: UserId) -> Flight<CachedTimeline> {
        let outcome = self
            .timelines
            .join(u, &self.counters, || self.inner.get_timeline(u));
        self.trace_flight(&outcome, ApiEndpoint::Timeline);
        outcome.0
    }
    fn abort_timeline(&self, u: UserId) {
        if self.timelines.resolve(u) {
            self.counters.aborts.fetch_add(1, Ordering::Relaxed);
            self.trace("abort", ApiEndpoint::Timeline);
        }
    }
    fn join_connections(&self, u: UserId) -> Flight<CachedConnections> {
        let outcome = self
            .connections
            .join(u, &self.counters, || self.inner.get_connections(u));
        self.trace_flight(&outcome, ApiEndpoint::Connections);
        outcome.0
    }
    fn abort_connections(&self, u: UserId) {
        if self.connections.resolve(u) {
            self.counters.aborts.fetch_add(1, Ordering::Relaxed);
            self.trace("abort", ApiEndpoint::Connections);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_totals() {
        let mut s = CacheStats {
            local_hits: 5,
            shared_hits: 3,
            misses: 1,
            actual_calls: 4,
            saved_calls: 9,
        };
        assert_eq!(s.requests(), 9);
        assert_eq!(s.shared_hit_rate(), Some(0.75));
        s.absorb(&s.clone());
        assert_eq!(s.misses, 2);
        assert_eq!(s.saved_calls, 18);
        assert_eq!(CacheStats::default().shared_hit_rate(), None);
    }

    #[test]
    fn display_is_informative() {
        let s = CacheStats {
            local_hits: 2,
            shared_hits: 1,
            misses: 3,
            actual_calls: 7,
            saved_calls: 2,
        };
        let text = s.to_string();
        assert!(text.contains("3 hits"));
        assert!(text.contains("3 misses"));
        assert!(text.contains("7 calls issued"));
    }

    /// Minimal in-memory layer for exercising the combinator.
    #[derive(Default)]
    struct MapLayer {
        searches: Mutex<HashMap<KeywordId, CachedSearch>>,
        timelines: Mutex<HashMap<UserId, CachedTimeline>>,
        connections: Mutex<HashMap<UserId, CachedConnections>>,
    }

    impl CacheLayer for MapLayer {
        fn get_search(&self, kw: KeywordId) -> Option<CachedSearch> {
            self.searches.lock().get(&kw).cloned()
        }
        fn put_search(&self, kw: KeywordId, entry: CachedSearch) {
            self.searches.lock().insert(kw, entry);
        }
        fn get_timeline(&self, u: UserId) -> Option<CachedTimeline> {
            self.timelines.lock().get(&u).cloned()
        }
        fn put_timeline(&self, u: UserId, entry: CachedTimeline) {
            self.timelines.lock().insert(u, entry);
        }
        fn get_connections(&self, u: UserId) -> Option<CachedConnections> {
            self.connections.lock().get(&u).cloned()
        }
        fn put_connections(&self, u: UserId, entry: CachedConnections) {
            self.connections.lock().insert(u, entry);
        }
    }

    #[test]
    fn default_join_is_the_plain_lookup() {
        let layer = MapLayer::default();
        let kw = KeywordId(3);
        assert!(matches!(layer.join_search(kw), Flight::Lead));
        layer.put_search(
            kw,
            Cached {
                data: Arc::new(Vec::new()),
                calls: 2,
            },
        );
        match layer.join_search(kw) {
            Flight::Ready(entry) => assert_eq!(entry.calls, 2),
            Flight::Lead => panic!("filled key must not elect a leader"),
        }
        // abort on a plain layer is a no-op.
        layer.abort_search(kw);
    }

    #[test]
    fn coalescing_parks_waiters_and_hands_over_the_entry() {
        let layer = Arc::new(CoalescingLayer::new(MapLayer::default()));
        let u = UserId(7);
        assert!(matches!(layer.join_connections(u), Flight::Lead));
        const WAITERS: u64 = 4;
        let handles: Vec<_> = (0..WAITERS)
            .map(|_| {
                let layer = Arc::clone(&layer);
                std::thread::spawn(move || match layer.join_connections(u) {
                    Flight::Ready(entry) => entry.calls,
                    Flight::Lead => panic!("waiter elected while a leader is in flight"),
                })
            })
            .collect();
        // All four threads must be parked on the slot before the leader
        // publishes, so the dedup counters are exact.
        while layer.stats().waits < WAITERS {
            std::thread::yield_now();
        }
        layer.put_connections(
            u,
            Cached {
                data: Arc::new(vec![UserId(1)]),
                calls: 3,
            },
        );
        for h in handles {
            assert_eq!(h.join().expect("waiter thread"), 3);
        }
        let stats = layer.stats();
        assert_eq!(stats.leads, 1);
        assert_eq!(stats.waits, WAITERS);
        assert_eq!(stats.aborts, 0);
        assert_eq!(stats.peak_inflight, WAITERS + 1);
        assert_eq!(stats.coalesced_miss_ratio(), Some(0.8));
    }

    #[test]
    fn abort_re_elects_a_parked_waiter() {
        let layer = Arc::new(CoalescingLayer::new(MapLayer::default()));
        let kw = KeywordId(11);
        assert!(matches!(layer.join_search(kw), Flight::Lead));
        let waiter = {
            let layer = Arc::clone(&layer);
            std::thread::spawn(move || match layer.join_search(kw) {
                // The re-elected waiter owes a completion like any leader.
                Flight::Lead => {
                    layer.put_search(
                        kw,
                        Cached {
                            data: Arc::new(Vec::new()),
                            calls: 1,
                        },
                    );
                    true
                }
                Flight::Ready(_) => false,
            })
        };
        while layer.stats().waits < 1 {
            std::thread::yield_now();
        }
        layer.abort_search(kw);
        assert!(
            waiter.join().expect("waiter thread"),
            "abort must hand leadership to a parked waiter"
        );
        let stats = layer.stats();
        assert_eq!(stats.leads, 2);
        assert_eq!(stats.aborts, 1);
        assert!(layer.get_search(kw).is_some());
    }
}
