//! Cross-query response caching.
//!
//! [`CacheLayer`] is the interface a *shared* cache implements so that
//! many concurrent queries against the same platform + [`ApiProfile`] can
//! reuse each other's SEARCH / USER TIMELINE / USER CONNECTIONS
//! responses. The service crate provides the production implementation (a
//! sharded, bounded, LRU-evicting store); this crate only defines the
//! contract and the accounting types.
//!
//! ## Logical charging
//!
//! The walkers terminate when the per-query budget runs out, so a cache
//! hit that cost *nothing* would lengthen the walk and change the
//! estimate — queries would stop being reproducible. Instead every cache
//! entry remembers how many API calls the original fetch cost
//! ([`Cached::calls`]), and a shared-cache hit charges the querying
//! client's budget and meter exactly that amount. The walk trajectory,
//! the reported [`CostMeter`] totals and the final estimate are therefore
//! *bit-identical* to an isolated run; only the count of **actual**
//! platform fetches drops. [`CacheStats`] tracks both sides.
//!
//! [`ApiProfile`]: crate::profile::ApiProfile
//! [`CostMeter`]: crate::meter::CostMeter

use crate::client::{SearchHit, UserView};
use crate::meter::CostMeter;
use microblog_platform::{KeywordId, UserId};
use serde::Serialize;
use std::sync::Arc;

/// A cached response plus the API-call cost of the fetch that produced
/// it, so hits can re-charge the same amount (see module docs).
#[derive(Clone, Debug)]
pub struct Cached<T: ?Sized> {
    /// The shared response payload.
    pub data: Arc<T>,
    /// API calls the original fetch charged.
    pub calls: u64,
}

/// A cached SEARCH response.
pub type CachedSearch = Cached<Vec<SearchHit>>;
/// A cached USER TIMELINE response.
pub type CachedTimeline = Cached<UserView>;
/// A cached USER CONNECTIONS response.
pub type CachedConnections = Cached<Vec<UserId>>;

/// A thread-safe response cache shared by many queries.
///
/// Implementations must be safe to call from concurrent worker threads;
/// all methods take `&self`. A layer instance is only meaningful for one
/// (platform, API profile) pair — mixing pollutes responses and costs.
pub trait CacheLayer: Send + Sync {
    /// Looks up a SEARCH response.
    fn get_search(&self, kw: KeywordId) -> Option<CachedSearch>;
    /// Stores a SEARCH response.
    fn put_search(&self, kw: KeywordId, entry: CachedSearch);
    /// Looks up a USER TIMELINE response.
    fn get_timeline(&self, u: UserId) -> Option<CachedTimeline>;
    /// Stores a USER TIMELINE response.
    fn put_timeline(&self, u: UserId, entry: CachedTimeline);
    /// Looks up a USER CONNECTIONS response.
    fn get_connections(&self, u: UserId) -> Option<CachedConnections>;
    /// Stores a USER CONNECTIONS response.
    fn put_connections(&self, u: UserId, entry: CachedConnections);
}

/// Per-client cache accounting, kept by
/// [`CachingClient`](crate::client::CachingClient).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct CacheStats {
    /// Requests served from this query's own memo at zero cost.
    pub local_hits: u64,
    /// Requests served from the shared cross-query layer (charged
    /// logically, but no platform fetch happened).
    pub shared_hits: u64,
    /// Requests that reached the platform.
    pub misses: u64,
    /// API calls actually issued against the platform (misses only).
    pub actual_calls: u64,
    /// API calls charged for shared hits without touching the platform —
    /// the cross-query saving.
    pub saved_calls: u64,
}

impl CacheStats {
    /// Total requests that went through the cache stack.
    pub fn requests(&self) -> u64 {
        self.local_hits + self.shared_hits + self.misses
    }

    /// Shared-layer hit rate over the requests that missed the local
    /// memo; `None` when no request got that far.
    pub fn shared_hit_rate(&self) -> Option<f64> {
        let reached = self.shared_hits + self.misses;
        (reached > 0).then(|| self.shared_hits as f64 / reached as f64)
    }

    /// Accumulates another client's counters (for service-wide totals).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.local_hits += other.local_hits;
        self.shared_hits += other.shared_hits;
        self.misses += other.misses;
        self.actual_calls += other.actual_calls;
        self.saved_calls += other.saved_calls;
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits ({} local, {} shared), {} misses; {} calls issued, {} saved",
            self.local_hits + self.shared_hits,
            self.local_hits,
            self.shared_hits,
            self.misses,
            self.actual_calls,
            self.saved_calls
        )
    }
}

/// A client's combined charge/cache report: what was charged (the
/// paper's cost metric, including logical charges for shared hits) and
/// how the cache stack behaved.
#[derive(Clone, Debug, Serialize)]
pub struct CostReport {
    /// Per-endpoint charged calls.
    pub meter: CostMeter,
    /// Hit/miss accounting.
    pub cache: CacheStats,
}

impl std::fmt::Display for CostReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}; cache: {}", self.meter, self.cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_totals() {
        let mut s = CacheStats {
            local_hits: 5,
            shared_hits: 3,
            misses: 1,
            actual_calls: 4,
            saved_calls: 9,
        };
        assert_eq!(s.requests(), 9);
        assert_eq!(s.shared_hit_rate(), Some(0.75));
        s.absorb(&s.clone());
        assert_eq!(s.misses, 2);
        assert_eq!(s.saved_calls, 18);
        assert_eq!(CacheStats::default().shared_hit_rate(), None);
    }

    #[test]
    fn display_is_informative() {
        let s = CacheStats {
            local_hits: 2,
            shared_hits: 1,
            misses: 3,
            actual_calls: 7,
            saved_calls: 2,
        };
        let text = s.to_string();
        assert!(text.contains("3 hits"));
        assert!(text.contains("3 misses"));
        assert!(text.contains("7 calls issued"));
    }
}
