//! # microblog-api
//!
//! The rate-limited data-access model of §2 of the paper. Every microblog
//! platform the paper targets exposes exactly three queries:
//!
//! 1. **SEARCH(keyword)** — recent posts containing the keyword, scoped to
//!    a trailing window (one week on Twitter) and paginated;
//! 2. **USER CONNECTIONS(u)** — the users connected to `u` (both follow
//!    directions on asymmetric platforms), paginated (5 000 per call on
//!    Twitter);
//! 3. **USER TIMELINE(u)** — `u`'s historic posts plus profile, paginated
//!    (200 per call on Twitter, 20 on Google+) and possibly capped (the
//!    most recent 3 200 tweets on Twitter).
//!
//! The paper's efficiency metric is *the number of API calls*, so
//! [`client::MicroblogClient`] charges each request to a [`meter::CostMeter`]
//! and an optional shared [`budget::QueryBudget`]; exceeding the budget
//! fails the call with [`error::ApiError::BudgetExhausted`]. The
//! [`profile::ApiProfile`] presets encode the Twitter / Google+ / Tumblr
//! page sizes, caps and rate quotas described in §2/§6.1, and
//! [`rate::wall_clock`] translates a call count into the real-world time a
//! run would take under the platform's quota — the "180 queries per 15
//! minutes" constraint that motivates the whole paper.
//!
//! The analyzer layer is only allowed to observe the platform through this
//! crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod cache;
pub mod client;
pub mod error;
pub mod meter;
pub mod profile;
pub mod rate;
pub mod resilient;
pub mod sched;

pub use budget::QueryBudget;
pub use cache::{
    CacheLayer, CacheStats, Cached, CachedConnections, CachedSearch, CachedTimeline, CostReport,
};
pub use client::{CachingClient, ClientState, MicroblogClient, SearchHit, UserView};
pub use error::ApiError;
pub use meter::CostMeter;
pub use microblog_platform::ApiEndpoint;
pub use profile::ApiProfile;
pub use resilient::{BreakerConfig, BreakerState, ResilienceStats, ResilientClient, RetryPolicy};
pub use sched::{
    FetchKey, FetchScheduler, InflightPolicy, PrefetchSink, SchedCloseGuard, SchedCounters,
    SchedStats,
};
