//! Platform API profiles: page sizes, caps, windows and rate quotas.
//!
//! These presets encode the access limitations the paper reports for each
//! platform (§2, §3.2, §6.1). They are what make the same algorithm cost
//! different absolute amounts per platform — e.g. Fig. 12/13's note that
//! Google+ costs are "much higher than in Twitter" because its APIs return
//! at most 20 results per invocation versus 200.

use microblog_platform::Duration;
use serde::{Deserialize, Serialize};

/// A platform's per-window call allowance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RateQuota {
    /// Calls allowed per window.
    pub calls: u64,
    /// Window length.
    pub per: Duration,
}

/// The access-interface parameters of one microblog platform.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApiProfile {
    /// Human-readable platform name.
    pub name: &'static str,
    /// How far back SEARCH can see (trailing window ending at "now").
    pub search_window: Duration,
    /// Posts returned per SEARCH call.
    pub search_page: usize,
    /// Hard cap on total SEARCH results, if any ("top-k in the low
    /// thousands" on some platforms).
    pub search_cap: Option<usize>,
    /// Posts returned per USER TIMELINE call.
    pub timeline_page: usize,
    /// Cap on how many historic posts the timeline exposes (3 200 on
    /// Twitter).
    pub timeline_cap: Option<usize>,
    /// Connections returned per USER CONNECTIONS call.
    pub connections_page: usize,
    /// Whether relations are asymmetric, requiring separate follower and
    /// followee endpoints (two paginated fetch sequences per user).
    pub asymmetric: bool,
    /// Rate quota.
    pub quota: RateQuota,
}

impl ApiProfile {
    /// Twitter's REST API v1.1 as described in the paper: one-week search,
    /// 100 tweets per search page, 200-per-page timeline capped at 3 200,
    /// 5 000-per-page follower/followee lists, 180 calls per 15 minutes.
    pub fn twitter() -> Self {
        ApiProfile {
            name: "twitter",
            search_window: Duration::WEEK,
            search_page: 100,
            search_cap: None,
            timeline_page: 200,
            timeline_cap: Some(3_200),
            connections_page: 5_000,
            asymmetric: true,
            quota: RateQuota {
                calls: 180,
                per: Duration(15 * 60),
            },
        }
    }

    /// Google+ as described in §6.1: Activity search returning 20 results
    /// per call, derived (symmetric) interaction connections, courtesy
    /// limit of 10 000 queries/day.
    pub fn google_plus() -> Self {
        ApiProfile {
            name: "google+",
            search_window: Duration::WEEK * 2,
            search_page: 20,
            search_cap: None,
            timeline_page: 20,
            timeline_cap: None,
            connections_page: 100,
            asymmetric: false,
            quota: RateQuota {
                calls: 10_000,
                per: Duration::DAY,
            },
        }
    }

    /// Tumblr as described in §6.1: 20-post pages, blog follows
    /// (asymmetric), one request per 10 seconds.
    pub fn tumblr() -> Self {
        ApiProfile {
            name: "tumblr",
            search_window: Duration::WEEK,
            search_page: 20,
            search_cap: Some(3_000),
            timeline_page: 20,
            timeline_cap: None,
            connections_page: 20,
            asymmetric: true,
            quota: RateQuota {
                calls: 1,
                per: Duration(10),
            },
        }
    }

    /// Calls needed to page through `items` items `page_size` at a time
    /// (at least one call — asking is what costs).
    pub fn calls_for(items: usize, page_size: usize) -> u64 {
        let pages = items.div_ceil(page_size.max(1));
        pages.max(1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_numbers() {
        let t = ApiProfile::twitter();
        assert_eq!(t.search_window, Duration::WEEK);
        assert_eq!(t.timeline_cap, Some(3_200));
        assert_eq!(t.connections_page, 5_000);
        assert_eq!(t.quota.calls, 180);
        assert!(t.asymmetric);

        let g = ApiProfile::google_plus();
        assert_eq!(g.timeline_page, 20);
        assert!(!g.asymmetric);

        let tb = ApiProfile::tumblr();
        assert_eq!(
            tb.quota,
            RateQuota {
                calls: 1,
                per: Duration(10)
            }
        );
        assert_eq!(tb.search_cap, Some(3_000));
    }

    #[test]
    fn paging_arithmetic() {
        assert_eq!(ApiProfile::calls_for(0, 200), 1);
        assert_eq!(ApiProfile::calls_for(1, 200), 1);
        assert_eq!(ApiProfile::calls_for(200, 200), 1);
        assert_eq!(ApiProfile::calls_for(201, 200), 2);
        assert_eq!(ApiProfile::calls_for(5_000, 5_000), 1);
        assert_eq!(ApiProfile::calls_for(10_001, 5_000), 3);
    }
}
