//! Per-endpoint API-call accounting.

use serde::{Deserialize, Serialize};

/// Counts API calls by endpoint. The paper's efficiency metric ("query
/// cost") is [`CostMeter::total`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostMeter {
    /// SEARCH calls.
    pub search: u64,
    /// USER CONNECTIONS calls (each page of each direction counts).
    pub connections: u64,
    /// USER TIMELINE calls (each page counts).
    pub timeline: u64,
}

impl CostMeter {
    /// A zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total API calls across all endpoints.
    pub fn total(&self) -> u64 {
        self.search + self.connections + self.timeline
    }

    /// Adds another meter's counts into this one.
    pub fn absorb(&mut self, other: &CostMeter) {
        self.search += other.search;
        self.connections += other.connections;
        self.timeline += other.timeline;
    }
}

impl std::fmt::Display for CostMeter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} calls (search {}, connections {}, timeline {})",
            self.total(),
            self.search,
            self.connections,
            self.timeline
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_absorb() {
        let mut a = CostMeter {
            search: 1,
            connections: 2,
            timeline: 3,
        };
        assert_eq!(a.total(), 6);
        let b = CostMeter {
            search: 10,
            connections: 0,
            timeline: 5,
        };
        a.absorb(&b);
        assert_eq!(
            a,
            CostMeter {
                search: 11,
                connections: 2,
                timeline: 8
            }
        );
        assert_eq!(
            a.to_string(),
            "21 calls (search 11, connections 2, timeline 8)"
        );
        assert_eq!(CostMeter::new().total(), 0);
    }
}
