//! Wall-clock cost model for rate-limited APIs.
//!
//! The paper's motivation is that 49 000 queries against Twitter's
//! 180-per-15-minutes quota means *days* of wall-clock time. This module
//! converts a call count under an [`ApiProfile`] into the simulated
//! wall-clock duration a real run would need, which the benches report
//! alongside raw call counts.

use crate::profile::ApiProfile;
use microblog_platform::Duration;

/// Wall-clock time needed to issue `calls` API calls under the profile's
/// quota, assuming calls are issued as fast as the quota allows.
///
/// The first window's allowance is free; every further full window of
/// calls waits out one quota period.
pub fn wall_clock(profile: &ApiProfile, calls: u64) -> Duration {
    if calls == 0 {
        return Duration(0);
    }
    let per_window = profile.quota.calls.max(1);
    let full_waits = (calls - 1) / per_window;
    Duration(full_waits as i64 * profile.quota.per.0)
}

/// Wall-clock time for `calls` API calls when `rate_limited_hits` of the
/// attempts were rejected with a 429 along the way.
///
/// Each rejection forces the client to wait out one full quota window
/// (the platform's `retry_after`) before the retry can go through, on top
/// of the steady-state pacing [`wall_clock`] models — so benches under
/// fault injection report realistic wall-clock, not the happy-path one.
pub fn wall_clock_with_retries(
    profile: &ApiProfile,
    calls: u64,
    rate_limited_hits: u64,
) -> Duration {
    wall_clock(profile, calls) + Duration(profile.quota.per.0 * rate_limited_hits as i64)
}

/// Human-readable rendering of a duration (e.g. `"2d 3h"`, `"45m"`).
pub fn human_duration(d: Duration) -> String {
    let secs = d.0.max(0);
    let days = secs / 86_400;
    let hours = (secs % 86_400) / 3_600;
    let minutes = (secs % 3_600) / 60;
    if days > 0 {
        format!("{days}d {hours}h")
    } else if hours > 0 {
        format!("{hours}h {minutes}m")
    } else if minutes > 0 {
        format!("{minutes}m")
    } else {
        format!("{secs}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twitter_quota_math() {
        let t = ApiProfile::twitter();
        assert_eq!(wall_clock(&t, 0), Duration(0));
        // 180 calls fit in the first window.
        assert_eq!(wall_clock(&t, 180), Duration(0));
        // 181 calls wait out one window.
        assert_eq!(wall_clock(&t, 181), Duration(15 * 60));
        // The paper's 49 000-query example: ~272 windows ≈ 2.8 days.
        let d = wall_clock(&t, 49_000);
        assert!(d > Duration::days(2) && d < Duration::days(3), "{}", d.0);
    }

    #[test]
    fn tumblr_is_one_per_ten_seconds() {
        let tb = ApiProfile::tumblr();
        assert_eq!(wall_clock(&tb, 1), Duration(0));
        assert_eq!(wall_clock(&tb, 2), Duration(10));
        assert_eq!(wall_clock(&tb, 61), Duration(600));
    }

    #[test]
    fn retries_add_full_quota_windows() {
        let t = ApiProfile::twitter();
        // No 429s: identical to the happy-path model.
        assert_eq!(wall_clock_with_retries(&t, 181, 0), wall_clock(&t, 181));
        // Each 429 waits out one 15-minute window.
        assert_eq!(
            wall_clock_with_retries(&t, 181, 3),
            Duration(15 * 60 + 3 * 15 * 60)
        );
        let tb = ApiProfile::tumblr();
        assert_eq!(wall_clock_with_retries(&tb, 2, 1), Duration(10 + 10));
    }

    #[test]
    fn humanize() {
        assert_eq!(human_duration(Duration(30)), "30s");
        assert_eq!(human_duration(Duration(150)), "2m");
        assert_eq!(human_duration(Duration::hours(3) + Duration(120)), "3h 2m");
        assert_eq!(
            human_duration(Duration::days(2) + Duration::hours(5)),
            "2d 5h"
        );
    }
}
