//! Property-based tests for the graph toolkit invariants.

use microblog_graph::components::{connected_components, UnionFind};
use microblog_graph::conductance::{
    conductance_level, conductance_with_intra, cut_conductance, min_conductance_exact,
    sweep_conductance, LevelModel,
};
use microblog_graph::csr::CsrGraph;
use microblog_graph::directed::DirectedGraph;
use microblog_graph::metrics::common_neighbors;
use microblog_graph::sizing::CollisionCounter;
use microblog_graph::walk::{simple_random_walk, srw_average};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Arbitrary small edge list over `n` nodes.
fn edges_strategy(max_n: u32) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..max_n).prop_flat_map(|n| {
        let edge = (0..n, 0..n);
        (Just(n as usize), proptest::collection::vec(edge, 0..40))
    })
}

proptest! {
    #[test]
    fn csr_is_symmetric_and_sorted((n, edges) in edges_strategy(24)) {
        let g = CsrGraph::from_edges(n, edges);
        for u in 0..n as u32 {
            let nbrs = g.neighbors(u);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "sorted + dedup");
            for &v in nbrs {
                prop_assert!(g.contains_edge(v, u), "symmetry {u}-{v}");
                prop_assert_ne!(v, u, "no self loops");
            }
        }
        prop_assert_eq!(g.total_volume(), 2 * g.edge_count());
    }

    #[test]
    fn csr_edges_round_trip((n, edges) in edges_strategy(24)) {
        let g = CsrGraph::from_edges(n, edges);
        let listed: Vec<_> = g.edges().collect();
        let g2 = CsrGraph::from_edges(n, listed.iter().copied());
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn induced_subgraph_preserves_adjacency((n, edges) in edges_strategy(20), mask_seed in any::<u64>()) {
        let g = CsrGraph::from_edges(n, edges);
        let keep: Vec<bool> = (0..n).map(|i| (mask_seed >> (i % 64)) & 1 == 1).collect();
        let (sub, back) = g.induced_subgraph(&keep);
        prop_assert_eq!(sub.node_count(), back.len());
        for (su, &ou) in back.iter().enumerate() {
            for &sv in sub.neighbors(su as u32) {
                prop_assert!(g.contains_edge(ou, back[sv as usize]));
            }
        }
        // Every kept original edge survives.
        for (u, v) in g.edges() {
            if keep[u as usize] && keep[v as usize] {
                let su = back.iter().position(|&x| x == u).unwrap() as u32;
                let sv = back.iter().position(|&x| x == v).unwrap() as u32;
                prop_assert!(sub.contains_edge(su, sv));
            }
        }
    }

    #[test]
    fn components_partition_nodes((n, edges) in edges_strategy(24)) {
        let g = CsrGraph::from_edges(n, edges);
        let cc = connected_components(&g);
        prop_assert_eq!(cc.label.len(), n);
        let total: usize = cc.size.iter().sum();
        prop_assert_eq!(total, n);
        // Edge endpoints always share a component.
        for (u, v) in g.edges() {
            prop_assert_eq!(cc.label[u as usize], cc.label[v as usize]);
        }
        // Component members lists agree with sizes.
        for c in 0..cc.component_count() as u32 {
            prop_assert_eq!(cc.members(c).len(), cc.size[c as usize]);
        }
    }

    #[test]
    fn union_find_is_transitive(pairs in proptest::collection::vec((0u32..16, 0u32..16), 0..30)) {
        let mut uf = UnionFind::new(16);
        for &(a, b) in &pairs {
            uf.union(a, b);
        }
        for &(a, b) in &pairs {
            prop_assert!(uf.connected(a, b));
        }
    }

    #[test]
    fn directed_to_undirected_is_union((n, arcs) in edges_strategy(20)) {
        let d = DirectedGraph::from_arcs(n, arcs.iter().copied());
        let u = d.to_undirected();
        for &(a, b) in &arcs {
            if a != b {
                prop_assert!(u.contains_edge(a, b));
                prop_assert!(d.followees(a).contains(&b));
                prop_assert!(d.followers(b).contains(&a));
            }
        }
        prop_assert!(u.edge_count() <= d.arc_count());
    }

    #[test]
    fn common_neighbors_is_symmetric((n, edges) in edges_strategy(16), a in 0u32..16, b in 0u32..16) {
        let g = CsrGraph::from_edges(n, edges);
        let (a, b) = (a % n as u32, b % n as u32);
        prop_assert_eq!(common_neighbors(&g, a, b), common_neighbors(&g, b, a));
    }

    #[test]
    fn cut_conductance_in_unit_range((n, edges) in edges_strategy(16), mask in any::<u16>()) {
        let g = CsrGraph::from_edges(n, edges);
        let in_s: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
        if let Some(phi) = cut_conductance(&g, &in_s) {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&phi), "phi = {phi}");
        }
    }

    #[test]
    fn sweep_never_beats_exact_minimum((n, edges) in edges_strategy(10)) {
        let g = CsrGraph::from_edges(n, edges);
        if let (Some(exact), Some(sweep)) = (min_conductance_exact(&g), sweep_conductance(&g, 150)) {
            prop_assert!(sweep >= exact - 1e-9, "sweep {sweep} below exact {exact}");
        }
    }

    #[test]
    fn intra_edges_never_raise_model_conductance(
        h in 3.0f64..40.0, d in 1.0f64..8.0, k in 0.5f64..8.0,
    ) {
        let n = 2000.0;
        let base = conductance_level(n, h, d);
        let with = conductance_with_intra(&LevelModel::new(n, h, d, k));
        if !base.is_nan() && !with.is_nan() {
            prop_assert!(with <= base + 1e-9, "h={h} d={d} k={k}: {with} > {base}");
        }
    }

    #[test]
    fn srw_average_bounded_by_extremes(vals in proptest::collection::vec((0.0f64..100.0, 1usize..20), 1..50)) {
        let est = srw_average(vals.iter().copied()).unwrap();
        let lo = vals.iter().map(|v| v.0).fold(f64::INFINITY, f64::min);
        let hi = vals.iter().map(|v| v.0).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9);
    }

    #[test]
    fn walk_stays_on_graph((n, edges) in edges_strategy(20), seed in any::<u64>(), start in 0u32..20) {
        let g = CsrGraph::from_edges(n, edges);
        let start = start % n as u32;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let trace = simple_random_walk(&mut &g, &mut rng, start, 64).unwrap();
        prop_assert_eq!(trace.visits[0].node, start);
        for w in trace.visits.windows(2) {
            let (a, b) = (w[0].node, w[1].node);
            prop_assert!(a == b || g.contains_edge(a, b), "teleport {a}->{b}");
            prop_assert_eq!(w[1].degree, g.degree(b));
        }
    }

    #[test]
    fn collision_counter_pairs_match_formula(ids in proptest::collection::vec(0u32..6, 0..40)) {
        let mut c = CollisionCounter::new();
        for &u in &ids {
            c.push(u, 3);
        }
        // Expected collisions: sum over nodes of C(count, 2).
        let mut counts = [0u64; 6];
        for &u in &ids {
            counts[u as usize] += 1;
        }
        let expected: u64 = counts.iter().map(|&c| c * (c.saturating_sub(1)) / 2).sum();
        prop_assert_eq!(c.collisions(), expected);
    }
}
