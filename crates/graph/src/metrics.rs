// ma-lint: allow-file(panic-safety) reason="degree arrays are sized to the node count"
//! Degree statistics, common-neighbor counts, and clustering coefficients.
//!
//! Table 2 of the paper contrasts the average number of common neighbors
//! shared by endpoints of intra-level edges against other edges — the
//! evidence that intra-level edges live inside tightly-knit communities.
//! [`common_neighbors`] and [`avg_common_neighbors`] compute that
//! statistic; [`DegreeStats`] summarizes degree distributions.

use crate::csr::CsrGraph;
use crate::NodeId;

/// Summary statistics of a degree distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
    /// Fraction of nodes with degree zero.
    pub isolated_fraction: f64,
}

/// Computes [`DegreeStats`] for an undirected graph.
///
/// Returns `None` for the empty graph.
pub fn degree_stats(g: &CsrGraph) -> Option<DegreeStats> {
    let n = g.node_count();
    if n == 0 {
        return None;
    }
    let mut degrees: Vec<usize> = (0..n as NodeId).map(|u| g.degree(u)).collect();
    degrees.sort_unstable();
    let isolated = degrees.iter().take_while(|&&d| d == 0).count();
    Some(DegreeStats {
        min: degrees[0],
        max: degrees[n - 1],
        mean: g.total_volume() as f64 / n as f64,
        median: degrees[n / 2],
        isolated_fraction: isolated as f64 / n as f64,
    })
}

/// Number of common neighbors of `u` and `v` (linear merge of the two
/// sorted adjacency slices).
pub fn common_neighbors(g: &CsrGraph, u: NodeId, v: NodeId) -> usize {
    let (mut a, mut b) = (
        g.neighbors(u).iter().peekable(),
        g.neighbors(v).iter().peekable(),
    );
    let mut shared = 0;
    while let (Some(&&x), Some(&&y)) = (a.peek(), b.peek()) {
        match x.cmp(&y) {
            std::cmp::Ordering::Less => {
                a.next();
            }
            std::cmp::Ordering::Greater => {
                b.next();
            }
            std::cmp::Ordering::Equal => {
                shared += 1;
                a.next();
                b.next();
            }
        }
    }
    shared
}

/// Average number of common neighbors over a set of edges.
///
/// Returns 0.0 when `edges` is empty.
pub fn avg_common_neighbors(g: &CsrGraph, edges: &[(NodeId, NodeId)]) -> f64 {
    if edges.is_empty() {
        return 0.0;
    }
    let total: usize = edges.iter().map(|&(u, v)| common_neighbors(g, u, v)).sum();
    total as f64 / edges.len() as f64
}

/// Local clustering coefficient of node `u`: fraction of neighbor pairs
/// that are themselves connected. 0.0 for degree < 2.
pub fn local_clustering(g: &CsrGraph, u: NodeId) -> f64 {
    let nbrs = g.neighbors(u);
    let d = nbrs.len();
    if d < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if g.contains_edge(a, b) {
                closed += 1;
            }
        }
    }
    closed as f64 / (d * (d - 1) / 2) as f64
}

/// Mean local clustering coefficient over all nodes of degree >= 2.
///
/// Returns 0.0 when no such node exists.
pub fn avg_clustering(g: &CsrGraph) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for u in 0..g.node_count() as NodeId {
        if g.degree(u) >= 2 {
            sum += local_clustering(g, u);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0-1, 0-2, 1-2, 1-3, 2-3: two triangles sharing edge 1-2.
        CsrGraph::from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn degree_stats_basic() {
        let s = degree_stats(&diamond()).unwrap();
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 3);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.isolated_fraction, 0.0);
        assert!(degree_stats(&CsrGraph::from_edges(0, [])).is_none());
    }

    #[test]
    fn common_neighbors_counts() {
        let g = diamond();
        assert_eq!(common_neighbors(&g, 1, 2), 2); // 0 and 3
        assert_eq!(common_neighbors(&g, 0, 3), 2); // 1 and 2
        assert_eq!(common_neighbors(&g, 0, 1), 1); // 2
    }

    #[test]
    fn avg_common_neighbors_over_edges() {
        let g = diamond();
        let avg = avg_common_neighbors(&g, &[(1, 2), (0, 1)]);
        assert!((avg - 1.5).abs() < 1e-12);
        assert_eq!(avg_common_neighbors(&g, &[]), 0.0);
    }

    #[test]
    fn clustering_of_triangle_corner() {
        let g = diamond();
        assert!((local_clustering(&g, 0) - 1.0).abs() < 1e-12);
        // Node 1 has neighbors {0,2,3}: pairs (0,2) closed, (0,3) open, (2,3) closed.
        assert!((local_clustering(&g, 1) - 2.0 / 3.0).abs() < 1e-12);
        let path = CsrGraph::from_edges(3, [(0, 1), (1, 2)]);
        assert_eq!(local_clustering(&path, 1), 0.0);
        assert_eq!(local_clustering(&path, 0), 0.0);
    }

    #[test]
    fn avg_clustering_skips_low_degree() {
        let path = CsrGraph::from_edges(3, [(0, 1), (1, 2)]);
        assert_eq!(avg_clustering(&path), 0.0);
        assert!(avg_clustering(&diamond()) > 0.5);
    }
}
