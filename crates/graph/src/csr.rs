// ma-lint: allow-file(panic-safety) reason="CSR offsets are constructed sorted and bounded by the edge count"
//! Immutable compressed-sparse-row adjacency for undirected graphs.
//!
//! [`CsrGraph`] stores each undirected edge twice (once per endpoint) with
//! neighbor lists sorted ascending, which makes `contains_edge` a binary
//! search and keeps iteration cache-friendly. Self-loops and duplicate
//! edges supplied to the builder are dropped.

use crate::NodeId;

/// An immutable undirected graph in CSR form.
///
/// Node identifiers are dense `0..node_count()`. Every edge `(u, v)` is
/// reachable from both endpoints and neighbor slices are sorted.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
}

impl CsrGraph {
    /// Builds an undirected graph over `n` nodes from an edge iterator.
    ///
    /// Edges are symmetrized and deduplicated; self-loops are dropped.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
        for (u, v) in edges {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge endpoint out of range"
            );
            if u == v {
                continue;
            }
            pairs.push((u, v));
            pairs.push((v, u));
        }
        pairs.sort_unstable();
        pairs.dedup();
        Self::from_sorted_arcs(n, &pairs)
    }

    /// Builds from a sorted, deduplicated arc list (both directions present).
    fn from_sorted_arcs(n: usize, arcs: &[(NodeId, NodeId)]) -> Self {
        let mut offsets = vec![0usize; n + 1];
        for &(u, _) in arcs {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets = arcs.iter().map(|&(_, v)| v).collect();
        CsrGraph { offsets, targets }
    }

    /// Number of nodes (including isolated ones).
    pub fn node_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Sorted neighbor list of `u`.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let u = u as usize;
        &self.targets[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: NodeId) -> usize {
        self.neighbors(u).len()
    }

    /// Whether the undirected edge `(u, v)` exists.
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Sum of degrees (`2 * edge_count`), the volume of the whole graph.
    pub fn total_volume(&self) -> usize {
        self.targets.len()
    }

    /// Iterates every undirected edge once, with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.node_count() as NodeId).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Returns the subgraph induced by `keep` (nodes where `keep[u]` is
    /// true), together with the mapping from new ids to original ids.
    ///
    /// # Panics
    /// Panics if `keep.len() != node_count()`.
    pub fn induced_subgraph(&self, keep: &[bool]) -> (CsrGraph, Vec<NodeId>) {
        assert_eq!(keep.len(), self.node_count(), "keep mask length mismatch");
        let mut new_id = vec![NodeId::MAX; self.node_count()];
        let mut back = Vec::new();
        for (u, &k) in keep.iter().enumerate() {
            if k {
                new_id[u] = back.len() as NodeId;
                back.push(u as NodeId);
            }
        }
        let edges = self.edges().filter_map(|(u, v)| {
            if keep[u as usize] && keep[v as usize] {
                Some((new_id[u as usize], new_id[v as usize]))
            } else {
                None
            }
        });
        (CsrGraph::from_edges(back.len(), edges), back)
    }

    /// Returns a copy with the given undirected edges removed.
    ///
    /// Edges absent from the graph are ignored.
    pub fn without_edges(&self, remove: impl IntoIterator<Item = (NodeId, NodeId)>) -> CsrGraph {
        let mut gone: Vec<(NodeId, NodeId)> = remove
            .into_iter()
            .map(|(u, v)| if u <= v { (u, v) } else { (v, u) })
            .collect();
        gone.sort_unstable();
        gone.dedup();
        let edges = self
            .edges()
            .filter(|&(u, v)| gone.binary_search(&(u, v)).is_err());
        CsrGraph::from_edges(self.node_count(), edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> CsrGraph {
        // 0-1, 1-2, 2-0 triangle; 2-3 tail; 4 isolated.
        CsrGraph::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle_plus_tail();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.total_volume(), 8);
    }

    #[test]
    fn neighbors_sorted_and_symmetric() {
        let g = triangle_plus_tail();
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        for (u, v) in g.edges() {
            assert!(g.contains_edge(u, v));
            assert!(g.contains_edge(v, u));
        }
    }

    #[test]
    fn dedup_and_self_loops() {
        let g = CsrGraph::from_edges(3, [(0, 1), (1, 0), (0, 1), (1, 1)]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = triangle_plus_tail();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn induced_subgraph_remaps_ids() {
        let g = triangle_plus_tail();
        let keep = vec![false, true, true, true, false];
        let (sub, back) = g.induced_subgraph(&keep);
        assert_eq!(back, vec![1, 2, 3]);
        assert_eq!(sub.node_count(), 3);
        // Edges 1-2 and 2-3 survive (0-1, 0-2 dropped with node 0).
        assert_eq!(sub.edge_count(), 2);
        assert!(sub.contains_edge(0, 1)); // 1-2
        assert!(sub.contains_edge(1, 2)); // 2-3
    }

    #[test]
    fn without_edges_removes_both_orientations() {
        let g = triangle_plus_tail();
        let g2 = g.without_edges([(1, 0), (3, 2)]);
        assert_eq!(g2.edge_count(), 2);
        assert!(!g2.contains_edge(0, 1));
        assert!(!g2.contains_edge(2, 3));
        assert!(g2.contains_edge(0, 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edges() {
        let _ = CsrGraph::from_edges(2, [(0, 2)]);
    }
}
