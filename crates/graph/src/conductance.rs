// ma-lint: allow-file(panic-safety) reason="cut and volume accumulators are sized to the node count"
//! Graph conductance: exact cut scores, brute-force and spectral sweep
//! minimization, and the paper's closed forms for stylized level-by-level
//! graphs (Theorem 4.1, Eq. 2/3) with Corollary 4.1's optimal degree.
//!
//! Conductance `φ(G) = min_S cut(S, S̄) / min(vol(S), vol(S̄))` governs how
//! fast a simple random walk mixes (Eq. 1 of the paper); the level-by-level
//! subgraph design is justified by showing that removing intra-level edges
//! raises conductance.
//!
//! # Reconstruction note
//!
//! The published PDF loses fraction bars in Theorem 4.1. We reconstruct the
//! formulas in the unique way consistent with (a) Eq. (2) reducing to
//! Eq. (3) at `k = 0`, (b) the proof sketch's horizontal-cut conductance
//! `1/(h−1+hk/(2d)) = 2d/(2d(h−1)+hk)`, and (c) Corollary 4.1's numeric
//! checkpoints (`d* = 2.13` at `h = 50`, `2.06` at `h = 100`), all of which
//! the unit tests verify.

use crate::csr::CsrGraph;
use crate::NodeId;

/// Parameters of the stylized level-by-level graph of Theorem 4.1.
///
/// `n` nodes evenly distributed across `h` levels; every node at level `i`
/// has `d` random adjacent-level neighbors at level `i+1` and `k` random
/// intra-level neighbors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LevelModel {
    /// Total node count.
    pub n: f64,
    /// Number of levels (`h >= 2`).
    pub h: f64,
    /// Adjacent-level degree per node.
    pub d: f64,
    /// Intra-level degree per node (0 for the pure level-by-level graph).
    pub k: f64,
}

impl LevelModel {
    /// Convenience constructor.
    pub fn new(n: f64, h: f64, d: f64, k: f64) -> Self {
        LevelModel { n, h, d, k }
    }

    /// The horizontal-cut conductance `2d / (2d(h−1) + hk)` from the proof
    /// sketch — equal to `1/(h−1)` when `k = 0`.
    pub fn horizontal_cut(&self) -> f64 {
        2.0 * self.d / (2.0 * self.d * (self.h - 1.0) + self.h * self.k)
    }
}

/// Theorem 4.1, Eq. (2): conductance of the stylized graph *with*
/// intra-level edges.
///
/// Returns `NaN` outside the theorem's parameter domain
/// (`d, k < n/h`, `h >= 2`).
pub fn conductance_with_intra(m: &LevelModel) -> f64 {
    let LevelModel { n, h, d, k } = *m;
    if h < 2.0 || d <= 0.0 || k < 0.0 || d >= n / h || k >= n / h {
        return f64::NAN;
    }
    let half_level = n / (2.0 * h);
    let horizontal = m.horizontal_cut();
    if d <= half_level && k <= half_level {
        h / ((k + d) * (h - 1.0) * n)
    } else if d <= half_level {
        // n/2h < k < n/h
        ((2.0 * k * h - n) / (k * h + d * n)).min(horizontal)
    } else if k <= half_level {
        // n/2h < d < n/h
        ((2.0 * d * h - n) / (k * h + d * n)).min(horizontal)
    } else {
        ((k - half_level) * (2.0 * d * h - n) / (k * h + d * n)).min(horizontal)
    }
}

/// Theorem 4.1, Eq. (3): conductance after removing all intra-level edges.
///
/// Returns `NaN` outside the domain (`0 < d < n/h`, `h >= 2`).
pub fn conductance_level(n: f64, h: f64, d: f64) -> f64 {
    if h < 2.0 || d <= 0.0 || d >= n / h {
        return f64::NAN;
    }
    if d <= n / (2.0 * h) {
        h / (n * d * (h - 1.0))
    } else {
        ((2.0 * h * d - n) / (n * d)).min(1.0 / (h - 1.0))
    }
}

/// Corollary 4.1: the adjacent-level degree maximizing Eq. (3) conductance,
/// `d* = (2h−1)(2h−2) / (h(2h−9))`.
///
/// Defined for `h > 4.5` (positive denominator); approaches 2 as `h → ∞`.
/// Returns `NaN` for smaller `h`.
pub fn optimal_inter_degree(h: f64) -> f64 {
    if h * (2.0 * h - 9.0) <= 0.0 {
        return f64::NAN;
    }
    (2.0 * h - 1.0) * (2.0 * h - 2.0) / (h * (2.0 * h - 9.0))
}

/// Exact conductance of the cut `(S, V∖S)` in `g`.
///
/// Returns `None` when either side has zero volume (e.g. `S` empty, all
/// nodes, or all-isolated).
pub fn cut_conductance(g: &CsrGraph, in_s: &[bool]) -> Option<f64> {
    assert_eq!(in_s.len(), g.node_count(), "cut mask length mismatch");
    let mut cut = 0usize;
    let mut vol_s = 0usize;
    for u in 0..g.node_count() {
        let d = g.degree(u as NodeId);
        if in_s[u] {
            vol_s += d;
            cut += g
                .neighbors(u as NodeId)
                .iter()
                .filter(|&&v| !in_s[v as usize])
                .count();
        }
    }
    let vol_rest = g.total_volume() - vol_s;
    let denom = vol_s.min(vol_rest);
    if denom == 0 {
        None
    } else {
        Some(cut as f64 / denom as f64)
    }
}

/// Exact minimum conductance by enumerating all 2^(n-1) cuts.
///
/// Only feasible for tiny graphs; returns `None` when no valid cut exists.
///
/// # Panics
/// Panics if `g.node_count() > 24`.
pub fn min_conductance_exact(g: &CsrGraph) -> Option<f64> {
    let n = g.node_count();
    assert!(n <= 24, "exact conductance enumeration limited to 24 nodes");
    if n < 2 {
        return None;
    }
    let mut best: Option<f64> = None;
    let mut in_s = vec![false; n];
    // Fix node 0 out of S to halve the enumeration (complement symmetry).
    for mask in 1u32..(1 << (n - 1)) {
        for (i, slot) in in_s.iter_mut().enumerate().take(n).skip(1) {
            *slot = mask & (1 << (i - 1)) != 0;
        }
        in_s[0] = false;
        if let Some(phi) = cut_conductance(g, &in_s) {
            best = Some(best.map_or(phi, |b: f64| b.min(phi)));
        }
    }
    best
}

/// Spectral sweep-cut upper bound on conductance.
///
/// Runs power iteration on the lazy random-walk matrix to approximate the
/// second eigenvector, orders nodes by the (degree-normalized) vector, and
/// returns the best conductance among the `n−1` prefix cuts. By Cheeger's
/// inequality this is within `sqrt(2·φ)` of the optimum. Returns `None`
/// for graphs where every cut is degenerate.
pub fn sweep_conductance(g: &CsrGraph, iterations: usize) -> Option<f64> {
    let n = g.node_count();
    if n < 2 || g.edge_count() == 0 {
        return None;
    }
    let vol = g.total_volume() as f64;
    // Stationary distribution of the walk: pi(u) = d(u)/vol.
    let pi: Vec<f64> = (0..n).map(|u| g.degree(u as NodeId) as f64 / vol).collect();
    // Deterministic pseudo-random start orthogonal to constants.
    let mut x: Vec<f64> = (0..n)
        .map(|u| ((u * 2654435761) % 1000) as f64 / 1000.0 - 0.5)
        .collect();
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        // Deflate the top eigenvector (all-ones in the pi inner product).
        let mean: f64 = x.iter().zip(&pi).map(|(xi, pi)| xi * pi).sum();
        for xi in x.iter_mut() {
            *xi -= mean;
        }
        // Lazy walk: x' = (x + P x) / 2, with P row-stochastic.
        for u in 0..n {
            let nbrs = g.neighbors(u as NodeId);
            let avg = if nbrs.is_empty() {
                0.0
            } else {
                nbrs.iter().map(|&v| x[v as usize]).sum::<f64>() / nbrs.len() as f64
            };
            next[u] = 0.5 * (x[u] + avg);
        }
        std::mem::swap(&mut x, &mut next);
        let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < 1e-300 {
            return min_fallback(g);
        }
        for xi in x.iter_mut() {
            *xi /= norm;
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| x[a].partial_cmp(&x[b]).unwrap_or(std::cmp::Ordering::Equal));
    let mut in_s = vec![false; n];
    let mut best: Option<f64> = None;
    for &u in order.iter().take(n - 1) {
        in_s[u] = true;
        if let Some(phi) = cut_conductance(g, &in_s) {
            best = Some(best.map_or(phi, |b: f64| b.min(phi)));
        }
    }
    best
}

/// Fallback when power iteration degenerates: single-node sweep.
fn min_fallback(g: &CsrGraph) -> Option<f64> {
    let n = g.node_count();
    let mut best: Option<f64> = None;
    let mut in_s = vec![false; n];
    for u in 0..n {
        in_s[u] = true;
        if let Some(phi) = cut_conductance(g, &in_s) {
            best = Some(best.map_or(phi, |b: f64| b.min(phi)));
        }
        in_s[u] = false;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 4-cliques joined by one bridge: min conductance cuts the bridge.
    fn barbell() -> CsrGraph {
        let mut edges = Vec::new();
        for c in 0..2u32 {
            let base = c * 4;
            for i in 0..4 {
                for j in i + 1..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((0, 4));
        CsrGraph::from_edges(8, edges)
    }

    #[test]
    fn cut_conductance_of_bridge() {
        let g = barbell();
        let in_s: Vec<bool> = (0..8).map(|u| u < 4).collect();
        // cut = 1, vol(S) = 6*2 + 1 = 13.
        let phi = cut_conductance(&g, &in_s).unwrap();
        assert!((phi - 1.0 / 13.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cuts_are_none() {
        let g = barbell();
        assert!(cut_conductance(&g, &[false; 8]).is_none());
        assert!(cut_conductance(&g, &[true; 8]).is_none());
    }

    #[test]
    fn exact_min_is_bridge_cut() {
        let g = barbell();
        let phi = min_conductance_exact(&g).unwrap();
        assert!((phi - 1.0 / 13.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_matches_exact_on_barbell() {
        let g = barbell();
        let sweep = sweep_conductance(&g, 200).unwrap();
        let exact = min_conductance_exact(&g).unwrap();
        assert!(
            (sweep - exact).abs() < 1e-9,
            "sweep {sweep} vs exact {exact}"
        );
    }

    #[test]
    fn complete_graph_has_high_conductance() {
        let mut edges = Vec::new();
        for i in 0..6u32 {
            for j in i + 1..6 {
                edges.push((i, j));
            }
        }
        let g = CsrGraph::from_edges(6, edges);
        assert!(min_conductance_exact(&g).unwrap() > 0.5);
    }

    #[test]
    fn corollary_matches_paper_checkpoints() {
        // §4.2.3: "d = 2.13 and 2.06 when h = 50 and 100".
        assert!((optimal_inter_degree(50.0) - 2.13).abs() < 0.005);
        assert!((optimal_inter_degree(100.0) - 2.06).abs() < 0.005);
        assert!(optimal_inter_degree(4.0).is_nan());
        // Limit is 2 as h grows.
        assert!((optimal_inter_degree(1e6) - 2.0).abs() < 1e-3);
    }

    #[test]
    fn eq2_reduces_to_eq3_without_intra_edges() {
        for &(n, h, d) in &[
            (1000.0, 10.0, 3.0),
            (5000.0, 25.0, 40.0),
            (600.0, 6.0, 70.0),
        ] {
            let with = conductance_with_intra(&LevelModel::new(n, h, d, 0.0));
            let without = conductance_level(n, h, d);
            assert!(
                (with - without).abs() < 1e-12,
                "mismatch at n={n} h={h} d={d}: {with} vs {without}"
            );
        }
    }

    #[test]
    fn intra_edges_reduce_conductance() {
        // The central claim of §4.2.2 across a parameter grid.
        for &h in &[5.0, 10.0, 20.0] {
            for &d in &[2.0, 5.0, 20.0] {
                let n = 1000.0;
                let base = conductance_level(n, h, d);
                for &k in &[1.0, 5.0, 20.0] {
                    let withk = conductance_with_intra(&LevelModel::new(n, h, d, k));
                    assert!(
                        withk <= base + 1e-12,
                        "k={k} raised conductance at h={h} d={d}: {withk} > {base}"
                    );
                }
            }
        }
    }

    #[test]
    fn closed_forms_reject_bad_domains() {
        assert!(conductance_level(100.0, 1.0, 2.0).is_nan());
        assert!(conductance_level(100.0, 10.0, 0.0).is_nan());
        assert!(conductance_level(100.0, 10.0, 11.0).is_nan());
        assert!(conductance_with_intra(&LevelModel::new(100.0, 10.0, 2.0, 10.5)).is_nan());
    }

    #[test]
    fn horizontal_cut_formula() {
        let m = LevelModel::new(1000.0, 11.0, 4.0, 0.0);
        assert!((m.horizontal_cut() - 0.1).abs() < 1e-12);
        // Adding intra edges lowers the horizontal-cut conductance.
        let m2 = LevelModel::new(1000.0, 11.0, 4.0, 6.0);
        assert!(m2.horizontal_cut() < m.horizontal_cut());
    }
}
