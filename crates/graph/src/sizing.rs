//! Collision-based population-size estimation (mark-and-recapture).
//!
//! The paper's M&R baseline adapts Katzir, Liberty and Somekh (WWW'11):
//! given nodes sampled by a simple random walk (stationary probability
//! proportional to degree), the population size is estimated from the
//! number of *collisions* — repeated appearances of the same node among
//! (near-)independent samples:
//!
//! `n̂ = (Σᵢ dᵢ) · (Σᵢ 1/dᵢ) / (2 · Ψ)`
//!
//! where `Ψ` is the number of unordered colliding sample pairs. §3.2 of
//! the paper notes that `Ω(√n)` samples are needed before the first
//! collision appears — the root cause of M&R's high query cost that
//! MA-TARW is designed to avoid, and exactly the behaviour reproduced by
//! the Figure 3/10 benchmarks.

use crate::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Serializable snapshot of a [`CollisionCounter`], used by walker
/// checkpoints. Floating sums are stored as raw IEEE-754 bits so a
/// round trip through JSON is bit-exact.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollisionState {
    /// Distinct `(node, occurrences)` pairs, sorted by node id.
    pub seen: Vec<(NodeId, u64)>,
    /// Unordered colliding pairs counted so far.
    pub collisions: u64,
    /// `Σ degree`, as `f64::to_bits`.
    pub sum_degree_bits: u64,
    /// `Σ 1/degree`, as `f64::to_bits`.
    pub sum_inv_degree_bits: u64,
    /// Samples accepted so far.
    pub samples: u64,
}

/// Incremental collision counter over degree-weighted samples.
///
/// Feed it `(node, degree)` samples from a simple random walk (after
/// burn-in and thinning); read the size estimate at any point.
#[derive(Clone, Debug, Default)]
pub struct CollisionCounter {
    seen: HashMap<NodeId, usize>,
    collisions: u64,
    sum_degree: f64,
    sum_inv_degree: f64,
    samples: usize,
}

impl CollisionCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample. Samples with degree 0 are ignored (they cannot be
    /// reached by a walk and would break the inverse-degree sum).
    pub fn push(&mut self, node: NodeId, degree: usize) {
        if degree == 0 {
            return;
        }
        let count = self.seen.entry(node).or_insert(0);
        self.collisions += *count as u64;
        *count += 1;
        self.sum_degree += degree as f64;
        self.sum_inv_degree += 1.0 / degree as f64;
        self.samples += 1;
    }

    /// Number of samples accepted so far.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Number of unordered colliding pairs observed so far.
    pub fn collisions(&self) -> u64 {
        self.collisions
    }

    /// Number of distinct nodes observed.
    pub fn distinct(&self) -> usize {
        self.seen.len()
    }

    /// Snapshots the counter for a walker checkpoint.
    pub fn snapshot(&self) -> CollisionState {
        let mut seen: Vec<(NodeId, u64)> = self.seen.iter().map(|(&u, &c)| (u, c as u64)).collect();
        seen.sort_unstable();
        CollisionState {
            seen,
            collisions: self.collisions,
            sum_degree_bits: self.sum_degree.to_bits(),
            sum_inv_degree_bits: self.sum_inv_degree.to_bits(),
            samples: self.samples as u64,
        }
    }

    /// Rebuilds a counter from a [`CollisionCounter::snapshot`]; the
    /// restored counter produces bit-identical estimates.
    pub fn restore(state: &CollisionState) -> CollisionCounter {
        CollisionCounter {
            seen: state.seen.iter().map(|&(u, c)| (u, c as usize)).collect(),
            collisions: state.collisions,
            sum_degree: f64::from_bits(state.sum_degree_bits),
            sum_inv_degree: f64::from_bits(state.sum_inv_degree_bits),
            samples: state.samples as usize,
        }
    }

    /// The Katzir size estimate; `None` until the first collision.
    pub fn estimate(&self) -> Option<f64> {
        if self.collisions == 0 {
            return None;
        }
        Some(self.sum_degree * self.sum_inv_degree / (2.0 * self.collisions as f64))
    }
}

/// One-shot helper: size estimate from a batch of `(node, degree)` samples.
pub fn katzir_estimate(samples: impl IntoIterator<Item = (NodeId, usize)>) -> Option<f64> {
    let mut c = CollisionCounter::new();
    for (u, d) in samples {
        c.push(u, d);
    }
    c.estimate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn no_collision_no_estimate() {
        let mut c = CollisionCounter::new();
        c.push(1, 3);
        c.push(2, 3);
        assert_eq!(c.estimate(), None);
        assert_eq!(c.collisions(), 0);
        assert_eq!(c.distinct(), 2);
    }

    #[test]
    fn collision_counting_is_pairwise() {
        let mut c = CollisionCounter::new();
        for _ in 0..4 {
            c.push(7, 2);
        }
        // C(4,2) = 6 colliding pairs.
        assert_eq!(c.collisions(), 6);
        assert_eq!(c.samples(), 4);
    }

    #[test]
    fn zero_degree_samples_ignored() {
        let mut c = CollisionCounter::new();
        c.push(1, 0);
        c.push(1, 0);
        assert_eq!(c.samples(), 0);
        assert_eq!(c.estimate(), None);
    }

    #[test]
    fn estimates_regular_population_size() {
        // Uniform sampling from a d-regular population of size 500:
        // stationary == uniform, so sampling with replacement is exact.
        let n = 500u32;
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut c = CollisionCounter::new();
        for _ in 0..400 {
            c.push(rng.gen_range(0..n), 8);
        }
        let est = c.estimate().expect("400 samples of 500 should collide");
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.35, "estimate {est} too far from {n}");
    }

    #[test]
    fn degree_weighted_sampling_is_corrected() {
        // Population: 300 nodes of degree 1, 100 of degree 9. Sample with
        // probability proportional to degree, as an SRW would.
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let mut c = CollisionCounter::new();
        let total_degree = 300.0 * 1.0 + 100.0 * 9.0;
        for _ in 0..600 {
            let x: f64 = rng.gen::<f64>() * total_degree;
            if x < 300.0 {
                c.push(rng.gen_range(0..300), 1);
            } else {
                c.push(300 + rng.gen_range(0..100), 9);
            }
        }
        let est = c.estimate().expect("collisions expected");
        let rel = (est - 400.0).abs() / 400.0;
        assert!(rel < 0.35, "estimate {est} too far from 400");
    }

    #[test]
    fn one_shot_helper_matches_incremental() {
        let samples = vec![(1u32, 2usize), (2, 4), (1, 2), (3, 1), (1, 2)];
        let mut c = CollisionCounter::new();
        for &(u, d) in &samples {
            c.push(u, d);
        }
        assert_eq!(katzir_estimate(samples), c.estimate());
    }
}
