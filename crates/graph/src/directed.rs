// ma-lint: allow-file(panic-safety) reason="in and out adjacency arrays are sized to the node count at build"
//! Directed follower/followee graphs.
//!
//! Microblog relations are often asymmetric (Twitter follower/followee).
//! The paper converts them to an undirected social graph by connecting two
//! users "if either follows the other" (§3.2); [`DirectedGraph::to_undirected`]
//! implements exactly that union. The directed views remain available
//! because aggregate metrics such as *number of followers* are defined on
//! the directed graph.

use crate::csr::CsrGraph;
use crate::NodeId;

/// A directed graph stored as two CSR indexes (out- and in-adjacency).
///
/// An arc `u -> v` means "u follows v": `v` appears in `followees(u)` and
/// `u` appears in `followers(v)`.
#[derive(Clone, Debug, Default)]
pub struct DirectedGraph {
    out_offsets: Vec<usize>,
    out_targets: Vec<NodeId>,
    in_offsets: Vec<usize>,
    in_targets: Vec<NodeId>,
}

impl DirectedGraph {
    /// Builds from an arc list `u -> v` over `n` nodes.
    ///
    /// Duplicate arcs and self-loops are dropped.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= n`.
    pub fn from_arcs(n: usize, arcs: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut fwd: Vec<(NodeId, NodeId)> = arcs
            .into_iter()
            .inspect(|&(u, v)| {
                assert!(
                    (u as usize) < n && (v as usize) < n,
                    "arc endpoint out of range"
                )
            })
            .filter(|&(u, v)| u != v)
            .collect();
        fwd.sort_unstable();
        fwd.dedup();
        let mut rev: Vec<(NodeId, NodeId)> = fwd.iter().map(|&(u, v)| (v, u)).collect();
        rev.sort_unstable();

        let (out_offsets, out_targets) = csr_from_sorted(n, &fwd);
        let (in_offsets, in_targets) = csr_from_sorted(n, &rev);
        DirectedGraph {
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out_offsets.len().saturating_sub(1)
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Users that `u` follows (out-neighbors), sorted.
    pub fn followees(&self, u: NodeId) -> &[NodeId] {
        let u = u as usize;
        &self.out_targets[self.out_offsets[u]..self.out_offsets[u + 1]]
    }

    /// Users following `u` (in-neighbors), sorted.
    pub fn followers(&self, u: NodeId) -> &[NodeId] {
        let u = u as usize;
        &self.in_targets[self.in_offsets[u]..self.in_offsets[u + 1]]
    }

    /// In-degree of `u` — the "number of followers" metric of the paper's
    /// running example.
    pub fn follower_count(&self, u: NodeId) -> usize {
        self.followers(u).len()
    }

    /// Out-degree of `u`.
    pub fn followee_count(&self, u: NodeId) -> usize {
        self.followees(u).len()
    }

    /// Iterates every arc `u -> v`.
    pub fn arcs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.node_count() as NodeId)
            .flat_map(move |u| self.followees(u).iter().map(move |&v| (u, v)))
    }

    /// The undirected social graph: `u — v` iff `u -> v` or `v -> u`.
    pub fn to_undirected(&self) -> CsrGraph {
        let arcs = (0..self.node_count() as NodeId)
            .flat_map(|u| self.followees(u).iter().map(move |&v| (u, v)));
        CsrGraph::from_edges(self.node_count(), arcs)
    }
}

fn csr_from_sorted(n: usize, arcs: &[(NodeId, NodeId)]) -> (Vec<usize>, Vec<NodeId>) {
    let mut offsets = vec![0usize; n + 1];
    for &(u, _) in arcs {
        offsets[u as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    (offsets, arcs.iter().map(|&(_, v)| v).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DirectedGraph {
        // 0 -> 1, 1 -> 0 (mutual); 2 -> 0; 1 -> 3.
        DirectedGraph::from_arcs(4, [(0, 1), (1, 0), (2, 0), (1, 3)])
    }

    #[test]
    fn follower_followee_views() {
        let g = sample();
        assert_eq!(g.followees(1), &[0, 3]);
        assert_eq!(g.followers(0), &[1, 2]);
        assert_eq!(g.follower_count(0), 2);
        assert_eq!(g.followee_count(2), 1);
        assert_eq!(g.follower_count(2), 0);
        assert_eq!(g.arc_count(), 4);
    }

    #[test]
    fn undirected_union() {
        let g = sample().to_undirected();
        // Mutual 0<->1 collapses to one edge; 2->0 and 1->3 become edges.
        assert_eq!(g.edge_count(), 3);
        assert!(g.contains_edge(0, 1));
        assert!(g.contains_edge(0, 2));
        assert!(g.contains_edge(1, 3));
    }

    #[test]
    fn dedup_and_self_loops() {
        let g = DirectedGraph::from_arcs(2, [(0, 1), (0, 1), (0, 0)]);
        assert_eq!(g.arc_count(), 1);
        assert_eq!(g.followers(1), &[0]);
    }
}
