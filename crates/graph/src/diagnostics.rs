// ma-lint: allow-file(panic-safety) reason="diagnostic histograms index buckets computed from their own bounds"
//! Markov-chain convergence diagnostics.
//!
//! The paper measures burn-in with the Geweke diagnostic [11] and a
//! threshold of `|Z| <= 0.1` (§4.1). [`geweke_z`] computes the classic
//! two-window z-score over a scalar chain (first 10% vs last 50% by
//! default); [`burn_in`] scans prefixes until the diagnostic passes,
//! reproducing the paper's burn-in measurement methodology.

/// Mean and (population) variance of a slice. Returns `(0, 0)` on empty.
fn mean_var(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var)
}

/// Geweke z-score comparing the first `frac_a` and last `frac_b` windows of
/// a scalar chain.
///
/// `Z = (μ_A − μ_B) / sqrt(σ²_A/n_A + σ²_B/n_B)`. Values near zero indicate
/// that the chain start has the same distribution as the end, i.e. the
/// chain has converged. Returns `None` when either window is empty or both
/// variances vanish with unequal means.
///
/// # Panics
/// Panics unless `0 < frac_a`, `0 < frac_b`, and `frac_a + frac_b <= 1`.
pub fn geweke_z(chain: &[f64], frac_a: f64, frac_b: f64) -> Option<f64> {
    assert!(
        frac_a > 0.0 && frac_b > 0.0 && frac_a + frac_b <= 1.0,
        "invalid window fractions"
    );
    let n = chain.len();
    let na = ((n as f64) * frac_a).floor() as usize;
    let nb = ((n as f64) * frac_b).floor() as usize;
    if na == 0 || nb == 0 {
        return None;
    }
    let (ma, va) = mean_var(&chain[..na]);
    let (mb, vb) = mean_var(&chain[n - nb..]);
    let denom = (va / na as f64 + vb / nb as f64).sqrt();
    if denom == 0.0 {
        return if ma == mb { Some(0.0) } else { None };
    }
    Some((ma - mb) / denom)
}

/// Geweke z-score with the conventional 10% / 50% windows.
pub fn geweke_z_default(chain: &[f64]) -> Option<f64> {
    geweke_z(chain, 0.1, 0.5)
}

/// Estimates the burn-in length of a scalar chain: the smallest prefix `b`
/// (scanned in `step`-sized increments) such that the Geweke z-score of the
/// remaining chain satisfies `|Z| <= threshold`.
///
/// Returns `None` if no prefix up to `chain.len()/2` passes — i.e. the
/// chain has not converged within its recorded length.
pub fn burn_in(chain: &[f64], threshold: f64, step: usize) -> Option<usize> {
    let step = step.max(1);
    let mut b = 0usize;
    while b <= chain.len() / 2 {
        if let Some(z) = geweke_z_default(&chain[b..]) {
            if z.abs() <= threshold {
                return Some(b);
            }
        }
        b += step;
    }
    None
}

/// Lag-`k` autocorrelation of a chain; `None` when undefined (length <= k
/// or zero variance).
pub fn autocorrelation(chain: &[f64], lag: usize) -> Option<f64> {
    if chain.len() <= lag {
        return None;
    }
    let (mean, var) = mean_var(chain);
    if var == 0.0 {
        return None;
    }
    let n = chain.len() - lag;
    let cov = (0..n)
        .map(|i| (chain[i] - mean) * (chain[i + lag] - mean))
        .sum::<f64>()
        / chain.len() as f64;
    Some(cov / var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn iid_chain(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen::<f64>()).collect()
    }

    #[test]
    fn converged_chain_has_small_z() {
        let chain = iid_chain(20_000, 1);
        let z = geweke_z_default(&chain).unwrap();
        assert!(z.abs() < 3.0, "z = {z}");
    }

    #[test]
    fn drifting_chain_has_large_z() {
        // A chain whose start is offset by +5: clearly not converged.
        let mut chain = iid_chain(10_000, 2);
        for x in chain.iter_mut().take(1000) {
            *x += 5.0;
        }
        let z = geweke_z_default(&chain).unwrap();
        assert!(z.abs() > 10.0, "z = {z}");
    }

    #[test]
    fn burn_in_detects_transient() {
        let mut chain = iid_chain(10_000, 3);
        for x in chain.iter_mut().take(500) {
            *x += 5.0;
        }
        let b = burn_in(&chain, 2.0, 100).unwrap();
        assert!((400..=1500).contains(&b), "burn-in {b}");
        // An unconverged chain (linear trend) yields None.
        let trend: Vec<f64> = (0..2000).map(|i| i as f64).collect();
        assert_eq!(burn_in(&trend, 0.1, 50), None);
    }

    #[test]
    fn constant_chain_is_converged() {
        let chain = vec![2.5; 100];
        assert_eq!(geweke_z_default(&chain), Some(0.0));
        assert_eq!(burn_in(&chain, 0.1, 10), Some(0));
    }

    #[test]
    fn short_chain_returns_none() {
        assert!(geweke_z_default(&[1.0, 2.0]).is_none());
        assert!(geweke_z_default(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "invalid window fractions")]
    fn rejects_bad_fractions() {
        let _ = geweke_z(&[1.0; 10], 0.6, 0.6);
    }

    #[test]
    fn autocorrelation_of_alternating_chain() {
        let chain: Vec<f64> = (0..1000)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let r1 = autocorrelation(&chain, 1).unwrap();
        assert!(r1 < -0.9);
        let r2 = autocorrelation(&chain, 2).unwrap();
        assert!(r2 > 0.9);
        assert!(autocorrelation(&chain, 1000).is_none());
        assert!(autocorrelation(&[1.0; 50], 1).is_none());
    }
}
