// ma-lint: allow-file(panic-safety) reason="union-find and BFS arrays are sized to the node count"
//! Connected components via union-find.
//!
//! The paper's Table 2 reports the *recall* of the term-induced subgraph as
//! the fraction of matching users inside its largest connected component;
//! [`ComponentLabels::largest`] provides that statistic.

use crate::csr::CsrGraph;
use crate::NodeId;

/// Disjoint-set forest with union by rank and path halving.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns true if they were disjoint.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Per-node component labels plus component sizes.
#[derive(Clone, Debug)]
pub struct ComponentLabels {
    /// `label[u]` is the component index of node `u`, in `0..component_count`.
    pub label: Vec<u32>,
    /// `size[c]` is the number of nodes in component `c`.
    pub size: Vec<usize>,
}

impl ComponentLabels {
    /// Number of connected components.
    pub fn component_count(&self) -> usize {
        self.size.len()
    }

    /// `(component index, size)` of the largest component; `None` on an
    /// empty graph.
    pub fn largest(&self) -> Option<(u32, usize)> {
        self.size
            .iter()
            .enumerate()
            .max_by_key(|&(_, s)| *s)
            .map(|(c, &s)| (c as u32, s))
    }

    /// Nodes belonging to component `c`.
    pub fn members(&self, c: u32) -> Vec<NodeId> {
        self.label
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == c)
            .map(|(u, _)| u as NodeId)
            .collect()
    }
}

/// Computes connected components of an undirected graph.
pub fn connected_components(g: &CsrGraph) -> ComponentLabels {
    let n = g.node_count();
    let mut uf = UnionFind::new(n);
    for (u, v) in g.edges() {
        uf.union(u, v);
    }
    let mut label = vec![u32::MAX; n];
    let mut size = Vec::new();
    for u in 0..n as u32 {
        let root = uf.find(u);
        if label[root as usize] == u32::MAX {
            label[root as usize] = size.len() as u32;
            size.push(0);
        }
        let c = label[root as usize];
        if u != root {
            label[u as usize] = c;
        }
        size[c as usize] += 1;
    }
    ComponentLabels { label, size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_merges() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        uf.union(2, 3);
        uf.union(1, 2);
        assert!(uf.connected(0, 3));
    }

    #[test]
    fn components_of_two_islands() {
        let g = CsrGraph::from_edges(6, [(0, 1), (1, 2), (3, 4)]);
        let cc = connected_components(&g);
        assert_eq!(cc.component_count(), 3); // {0,1,2}, {3,4}, {5}
        let (big, size) = cc.largest().unwrap();
        assert_eq!(size, 3);
        assert_eq!(cc.members(big), vec![0, 1, 2]);
        assert_eq!(cc.label[3], cc.label[4]);
        assert_ne!(cc.label[0], cc.label[5]);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, []);
        let cc = connected_components(&g);
        assert_eq!(cc.component_count(), 0);
        assert!(cc.largest().is_none());
    }

    #[test]
    fn singleton_components_counted() {
        let g = CsrGraph::from_edges(3, []);
        let cc = connected_components(&g);
        assert_eq!(cc.component_count(), 3);
        assert_eq!(cc.largest().unwrap().1, 1);
    }
}
