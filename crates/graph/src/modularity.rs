// ma-lint: allow-file(panic-safety) reason="degree and community vectors are sized to the node count at entry"
//! Newman modularity and a simple label-propagation community detector.
//!
//! §4.1 of the paper measures the "tightly connected communities" of the
//! term-induced subgraph by graph modularity [26]. We provide the standard
//! modularity score of a partition plus a cheap label-propagation community
//! finder, used by the platform generator tests to confirm the planted
//! community structure actually materializes.

use crate::csr::CsrGraph;
use crate::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;

/// Newman modularity `Q` of a partition.
///
/// `community[u]` assigns each node a community label. `Q = Σ_c (e_c/m −
/// (vol_c / 2m)^2)` where `e_c` counts intra-community edges, `vol_c` the
/// total degree of community `c`, and `m` the edge count. Returns 0.0 for
/// graphs without edges.
///
/// # Panics
/// Panics if `community.len() != g.node_count()`.
pub fn modularity(g: &CsrGraph, community: &[u32]) -> f64 {
    assert_eq!(
        community.len(),
        g.node_count(),
        "community labels length mismatch"
    );
    let m = g.edge_count();
    if m == 0 {
        return 0.0;
    }
    let ncomm = community
        .iter()
        .copied()
        .max()
        .map_or(0, |c| c as usize + 1);
    let mut intra = vec![0usize; ncomm];
    let mut vol = vec![0usize; ncomm];
    for (u, v) in g.edges() {
        if community[u as usize] == community[v as usize] {
            intra[community[u as usize] as usize] += 1;
        }
    }
    for u in 0..g.node_count() {
        vol[community[u] as usize] += g.degree(u as NodeId);
    }
    let m = m as f64;
    (0..ncomm)
        .map(|c| intra[c] as f64 / m - (vol[c] as f64 / (2.0 * m)).powi(2))
        .sum()
}

/// Asynchronous label propagation: each node repeatedly adopts the most
/// frequent label among its neighbors until a fixed point (or `max_rounds`).
///
/// Returns per-node community labels compacted to `0..k`. Deterministic
/// given the RNG (used for visit order and tie-breaking).
pub fn label_propagation<R: Rng>(g: &CsrGraph, rng: &mut R, max_rounds: usize) -> Vec<u32> {
    let n = g.node_count();
    let mut label: Vec<u32> = (0..n as u32).collect();
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    let mut counts: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for _ in 0..max_rounds {
        order.shuffle(rng);
        let mut changed = false;
        for &u in &order {
            let nbrs = g.neighbors(u);
            if nbrs.is_empty() {
                continue;
            }
            counts.clear();
            for &v in nbrs {
                *counts.entry(label[v as usize]).or_insert(0) += 1;
            }
            let best_count = *counts.values().max().expect("non-empty");
            let mut best: Vec<u32> = counts
                .iter()
                .filter(|&(_, &c)| c == best_count)
                .map(|(&l, _)| l)
                .collect();
            best.sort_unstable();
            let pick = best[rng.gen_range(0..best.len())];
            if pick != label[u as usize] {
                label[u as usize] = pick;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    compact_labels(&mut label);
    label
}

fn compact_labels(label: &mut [u32]) {
    let mut remap = std::collections::HashMap::new();
    for l in label.iter_mut() {
        let next = remap.len() as u32;
        *l = *remap.entry(*l).or_insert(next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Two 4-cliques joined by a single bridge edge.
    fn two_cliques() -> CsrGraph {
        let mut edges = Vec::new();
        for c in 0..2u32 {
            let base = c * 4;
            for i in 0..4 {
                for j in i + 1..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((0, 4));
        CsrGraph::from_edges(8, edges)
    }

    #[test]
    fn modularity_prefers_true_partition() {
        let g = two_cliques();
        let good: Vec<u32> = (0..8).map(|u| u / 4).collect();
        let trivial = vec![0u32; 8];
        let scrambled: Vec<u32> = (0..8).map(|u| u % 2).collect();
        assert!(modularity(&g, &good) > 0.3);
        assert!((modularity(&g, &trivial)).abs() < 1e-12);
        assert!(modularity(&g, &good) > modularity(&g, &scrambled));
    }

    #[test]
    fn modularity_empty_graph_is_zero() {
        let g = CsrGraph::from_edges(3, []);
        assert_eq!(modularity(&g, &[0, 1, 2]), 0.0);
    }

    #[test]
    fn label_propagation_finds_cliques() {
        let g = two_cliques();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let labels = label_propagation(&g, &mut rng, 50);
        // Within each clique, labels agree.
        assert!(labels[0..4].iter().all(|&l| l == labels[0]));
        assert!(labels[4..8].iter().all(|&l| l == labels[4]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn modularity_rejects_bad_labels() {
        let g = two_cliques();
        let _ = modularity(&g, &[0, 1]);
    }
}
