//! Random walks over abstract neighbor sources.
//!
//! Walkers pull adjacency through [`NeighborSource`] rather than a concrete
//! graph so that the analyzer layer can (a) filter edges on the fly — the
//! term-induced and level-by-level subgraphs are never materialized, exactly
//! as in the paper's GRAPH-BUILDER — and (b) charge every neighbor fetch to
//! a rate-limited API budget, which is the paper's cost metric.
//!
//! Two topology-oblivious walks are provided: the simple random walk (SRW)
//! whose stationary distribution weights nodes by degree, and the
//! Metropolis–Hastings random walk (MHRW) targeting the uniform
//! distribution. The paper's topology-*aware* walk lives in the analyzer
//! crate because it depends on the level structure.

use crate::NodeId;
use rand::Rng;
use std::borrow::Cow;

/// A source of adjacency lists, possibly fallible (budget exhaustion) and
/// possibly stateful (API caches, on-the-fly filtering).
pub trait NeighborSource {
    /// Error surfaced when adjacency cannot be fetched (e.g. query budget
    /// exhausted).
    type Error;

    /// Neighbor list of `u`. May allocate when the view is filtered.
    fn neighbors(&mut self, u: NodeId) -> Result<Cow<'_, [NodeId]>, Self::Error>;

    /// Degree of `u` under this view.
    fn degree(&mut self, u: NodeId) -> Result<usize, Self::Error> {
        Ok(self.neighbors(u)?.len())
    }
}

impl NeighborSource for &crate::csr::CsrGraph {
    type Error = std::convert::Infallible;

    fn neighbors(&mut self, u: NodeId) -> Result<Cow<'_, [NodeId]>, Self::Error> {
        Ok(Cow::Borrowed(crate::csr::CsrGraph::neighbors(self, u)))
    }
}

/// One visited node of a walk trace, with its degree under the walked view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Visit {
    /// The node visited at this step.
    pub node: NodeId,
    /// Its degree in the graph being walked (needed by the SRW estimators,
    /// whose stationary distribution is proportional to degree).
    pub degree: usize,
}

/// A recorded random-walk trajectory.
#[derive(Clone, Debug, Default)]
pub struct WalkTrace {
    /// Visits in step order, including the start node.
    pub visits: Vec<Visit>,
}

impl WalkTrace {
    /// Drops the first `burn_in` visits and keeps every `thinning`-th of the
    /// remainder, starting with the first post-burn-in visit.
    ///
    /// Edge cases are total rather than panicking or surprising:
    /// `burn_in >= visits.len()` yields an empty sample set (the whole
    /// trace was burn-in), `thinning` of 0 is clamped to 1 (keep every
    /// visit), and a `thinning` larger than the post-burn-in remainder
    /// keeps exactly the first remaining visit.
    pub fn samples(&self, burn_in: usize, thinning: usize) -> Vec<Visit> {
        if burn_in >= self.visits.len() {
            return Vec::new();
        }
        let thinning = thinning.max(1);
        self.visits
            .iter()
            .skip(burn_in)
            .step_by(thinning)
            .copied()
            .collect()
    }

    /// Number of steps taken (visits − 1, saturating).
    pub fn steps(&self) -> usize {
        self.visits.len().saturating_sub(1)
    }
}

/// Runs a simple random walk for `steps` transitions starting at `start`.
///
/// At each step a neighbor is chosen uniformly at random; if the current
/// node has no neighbors under the view, the walk stays in place (a
/// self-loop), which keeps the chain well-defined on views with dangling
/// nodes.
pub fn simple_random_walk<S: NeighborSource, R: Rng>(
    source: &mut S,
    rng: &mut R,
    start: NodeId,
    steps: usize,
) -> Result<WalkTrace, S::Error> {
    let mut visits = Vec::with_capacity(steps + 1);
    let mut current = start;
    let mut degree = source.neighbors(current)?.len();
    visits.push(Visit {
        node: current,
        degree,
    });
    for _ in 0..steps {
        let nbrs = source.neighbors(current)?;
        if !nbrs.is_empty() {
            current = nbrs[rng.gen_range(0..nbrs.len())]; // ma-lint: allow(panic-safety) reason="index sampled from gen_range(0..len), in range by construction"
            degree = source.neighbors(current)?.len();
        }
        visits.push(Visit {
            node: current,
            degree,
        });
    }
    Ok(WalkTrace { visits })
}

/// Runs a Metropolis–Hastings random walk targeting the uniform
/// distribution: propose a uniform neighbor `v`, accept with probability
/// `min(1, d(u)/d(v))`, otherwise stay.
pub fn metropolis_hastings_walk<S: NeighborSource, R: Rng>(
    source: &mut S,
    rng: &mut R,
    start: NodeId,
    steps: usize,
) -> Result<WalkTrace, S::Error> {
    let mut visits = Vec::with_capacity(steps + 1);
    let mut current = start;
    let mut cur_deg = source.neighbors(current)?.len();
    visits.push(Visit {
        node: current,
        degree: cur_deg,
    });
    for _ in 0..steps {
        if cur_deg > 0 {
            let proposal = {
                let nbrs = source.neighbors(current)?;
                nbrs[rng.gen_range(0..nbrs.len())] // ma-lint: allow(panic-safety) reason="index sampled from gen_range(0..len), in range by construction"
            };
            let prop_deg = source.neighbors(proposal)?.len();
            let accept = if prop_deg == 0 {
                false
            } else {
                rng.gen::<f64>() < (cur_deg as f64 / prop_deg as f64).min(1.0)
            };
            if accept {
                current = proposal;
                cur_deg = prop_deg;
            }
        }
        visits.push(Visit {
            node: current,
            degree: cur_deg,
        });
    }
    Ok(WalkTrace { visits })
}

/// The standard SRW ratio estimator for a population average.
///
/// SRW samples nodes with probability proportional to degree, so
/// `AVG(f) ≈ (Σ f(u)/d(u)) / (Σ 1/d(u))` over the sampled visits
/// (a Hansen–Hurwitz ratio with importance weights `1/d`). Returns `None`
/// when no sample has positive degree.
pub fn srw_average(samples: impl IntoIterator<Item = (f64, usize)>) -> Option<f64> {
    let mut num = 0.0;
    let mut den = 0.0;
    for (f, d) in samples {
        if d > 0 {
            num += f / d as f64;
            den += 1.0 / d as f64;
        }
    }
    if den > 0.0 {
        Some(num / den)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn star() -> CsrGraph {
        // Hub 0 connected to 1..=4.
        CsrGraph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
    }

    #[test]
    fn srw_visits_alternate_on_star() {
        let g = star();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let trace = simple_random_walk(&mut &g, &mut rng, 0, 100).unwrap();
        assert_eq!(trace.visits.len(), 101);
        assert_eq!(trace.steps(), 100);
        // From the hub every step goes to a leaf and back.
        for (i, v) in trace.visits.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(v.node, 0);
                assert_eq!(v.degree, 4);
            } else {
                assert_ne!(v.node, 0);
                assert_eq!(v.degree, 1);
            }
        }
    }

    #[test]
    fn srw_stationary_matches_degree_distribution() {
        // Path 0-1-2: stationary = (1/4, 1/2, 1/4).
        let g = CsrGraph::from_edges(3, [(0, 1), (1, 2)]);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let trace = simple_random_walk(&mut &g, &mut rng, 0, 60_000).unwrap();
        let samples = trace.samples(1000, 1);
        let mut counts = [0usize; 3];
        for v in &samples {
            counts[v.node as usize] += 1;
        }
        let total = samples.len() as f64;
        assert!((counts[1] as f64 / total - 0.5).abs() < 0.02);
        assert!((counts[0] as f64 / total - 0.25).abs() < 0.02);
    }

    #[test]
    fn isolated_start_stays_put() {
        let g = CsrGraph::from_edges(2, []);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let trace = simple_random_walk(&mut &g, &mut rng, 1, 5).unwrap();
        assert!(trace.visits.iter().all(|v| v.node == 1 && v.degree == 0));
    }

    #[test]
    fn mhrw_targets_uniform_distribution() {
        // Star graph: SRW spends half its time at the hub, MHRW should be
        // close to uniform (1/5 per node).
        let g = star();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let trace = metropolis_hastings_walk(&mut &g, &mut rng, 0, 80_000).unwrap();
        let samples = trace.samples(2000, 1);
        let mut counts = [0usize; 5];
        for v in &samples {
            counts[v.node as usize] += 1;
        }
        let total = samples.len() as f64;
        for &c in &counts {
            assert!((c as f64 / total - 0.2).abs() < 0.03, "counts {counts:?}");
        }
    }

    #[test]
    fn trace_thinning_and_burn_in() {
        let g = star();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let trace = simple_random_walk(&mut &g, &mut rng, 0, 10).unwrap();
        let s = trace.samples(3, 4);
        assert_eq!(s.len(), 2); // visits 3 and 7
        assert_eq!(s[0], trace.visits[3]);
        assert_eq!(s[1], trace.visits[7]);
        // thinning 0 is clamped to 1
        assert_eq!(trace.samples(0, 0).len(), 11);
    }

    #[test]
    fn samples_burn_in_at_or_past_the_end_is_empty() {
        let g = star();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let trace = simple_random_walk(&mut &g, &mut rng, 0, 4).unwrap();
        assert_eq!(trace.visits.len(), 5);
        assert!(trace.samples(5, 1).is_empty(), "burn_in == len");
        assert!(trace.samples(6, 1).is_empty(), "burn_in > len");
        assert!(trace.samples(usize::MAX, 3).is_empty());
        // One visit left after burn-in: exactly one sample regardless of
        // thinning.
        assert_eq!(trace.samples(4, 1), vec![trace.visits[4]]);
    }

    #[test]
    fn samples_thinning_larger_than_remainder_keeps_first_visit() {
        let g = star();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let trace = simple_random_walk(&mut &g, &mut rng, 0, 10).unwrap();
        // 8 visits remain after burn_in = 3; thinning beyond that keeps
        // only visit 3.
        assert_eq!(trace.samples(3, 8), vec![trace.visits[3]]);
        assert_eq!(trace.samples(3, 100), vec![trace.visits[3]]);
        assert_eq!(trace.samples(3, usize::MAX), vec![trace.visits[3]]);
        // thinning == remainder - 1 still catches the last visit.
        assert_eq!(trace.samples(3, 7), vec![trace.visits[3], trace.visits[10]]);
    }

    #[test]
    fn samples_on_an_empty_trace_is_empty() {
        let trace = WalkTrace::default();
        assert!(trace.samples(0, 1).is_empty());
        assert!(trace.samples(3, 2).is_empty());
    }

    #[test]
    fn srw_average_reweights_by_degree() {
        // Path 0-1-2 with f = node id. True average = 1.
        // Degree-weighted raw mean would over-weight node 1.
        let samples = [(0.0, 1), (1.0, 2), (1.0, 2), (2.0, 1)];
        let est = srw_average(samples).unwrap();
        assert!((est - 1.0).abs() < 1e-12);
        assert!(srw_average([(1.0, 0)]).is_none());
        assert!(srw_average([]).is_none());
    }
}
