//! # microblog-graph
//!
//! A self-contained graph toolkit backing the MICROBLOG-ANALYZER
//! reproduction (SIGMOD 2014, "Aggregate Estimation Over a Microblog
//! Platform").
//!
//! The crate provides everything the paper's GRAPH-BUILDER and
//! GRAPH-WALKER layers need from a graph library:
//!
//! * [`csr`] — compact, immutable compressed-sparse-row adjacency for
//!   undirected graphs, plus [`directed::DirectedGraph`] for
//!   follower/followee relations with an undirected union view.
//! * [`components`] — union-find connected components (used for the
//!   *recall* statistic of Table 2: the fraction of term-matching users
//!   inside the largest connected component of the term-induced subgraph).
//! * [`metrics`] — degree statistics, common-neighbor counts, clustering.
//! * [`modularity`] — Newman modularity of a node partition (the paper
//!   cites modularity as the measure of "tightly connected communities").
//! * [`conductance`] — cut conductance, brute-force minimum conductance for
//!   small graphs, a spectral sweep-cut estimate for larger ones, and the
//!   paper's closed forms: Eq. (2) (level-by-level graph *with* intra-level
//!   edges), Eq. (3) (without), and Corollary 4.1's optimal inter-level
//!   degree.
//! * [`walk`] — simple and Metropolis–Hastings random walks over any
//!   [`walk::NeighborSource`], with step traces suitable for estimation.
//! * [`diagnostics`] — the Geweke convergence diagnostic used by the paper
//!   to measure burn-in (`Z ≤ 0.1` threshold in §4.1).
//! * [`sizing`] — the collision-based (mark-and-recapture / Katzir et al.)
//!   population-size estimator used by the M&R baseline and by MA-SRW for
//!   COUNT queries.
//!
//! The toolkit is deliberately independent of the microblog domain: nodes
//! are plain `u32` identifiers, and walkers pull neighbor lists through the
//! [`walk::NeighborSource`] trait so that higher layers can charge API-call
//! costs, filter edges on the fly, or serve adjacency from a simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod components;
pub mod conductance;
pub mod csr;
pub mod diagnostics;
pub mod directed;
pub mod metrics;
pub mod modularity;
pub mod sizing;
pub mod walk;

pub use csr::CsrGraph;
pub use directed::DirectedGraph;
pub use walk::{Visit, WalkTrace};

/// Node identifier used across the toolkit.
pub type NodeId = u32;
