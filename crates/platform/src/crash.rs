//! Deterministic crash injection for crash-recovery testing.
//!
//! [`FaultPlan`](crate::FaultPlan) makes the *API* hostile; [`CrashPlan`]
//! makes the *process* hostile. A plan names a crashpoint — a labelled
//! spot in the service engine or journal writer — and arms a single shot
//! that either kills the worker (a panic carrying
//! [`CRASH_PANIC_PREFIX`]) or tears the journal tail (the writer drops
//! the final bytes of the record it just appended, then dies), so
//! recovery paths can be exercised reproducibly in-process without
//! `kill -9`.
//!
//! Injection is deterministic: the shot fires on the `hit`-th arrival at
//! the named point, counted per point, independent of thread timing for
//! a single-job pipeline (the crash-recovery tests run one job at a
//! time through the crashpoint).

use std::collections::HashMap;
use std::sync::Mutex;

/// Prefix of panic payloads raised by crash injection. Supervisors use
/// it to tell a deliberate kill (requeue from checkpoint) from a real
/// worker bug (fail the job).
pub const CRASH_PANIC_PREFIX: &str = "ma-crash:";

/// The named crashpoints the service engine and journal writer expose,
/// in job-lifecycle order. CI's chaos-recovery matrix iterates this.
pub const CRASH_POINTS: [&str; 5] = [
    "post_admit",
    "post_reserve",
    "checkpoint",
    "pre_settle",
    "post_settle",
];

/// What happens when an armed crashpoint fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashMode {
    /// Panic with [`CRASH_PANIC_PREFIX`], killing the worker thread.
    Kill,
    /// Tear the journal: the writer truncates the final `drop` bytes it
    /// wrote, simulating a crash mid-append, then dies.
    TornTail {
        /// Bytes to chop off the journal tail.
        drop: u64,
    },
}

/// A declarative, single-shot crash plan: fire `mode` on the `hit`-th
/// arrival at crashpoint `point`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashPlan {
    /// The named crashpoint to arm (see [`CRASH_POINTS`]).
    pub point: String,
    /// Which arrival fires the shot (1-based; 1 = the first arrival).
    pub hit: u64,
    /// What to do when it fires.
    pub mode: CrashMode,
}

impl CrashPlan {
    /// Kills the worker on the first arrival at `point`.
    pub fn kill(point: &str) -> CrashPlan {
        CrashPlan {
            point: point.to_string(),
            hit: 1,
            mode: CrashMode::Kill,
        }
    }

    /// Tears `drop` bytes off the journal tail at `point`, then dies.
    pub fn torn_tail(point: &str, drop: u64) -> CrashPlan {
        CrashPlan {
            point: point.to_string(),
            hit: 1,
            mode: CrashMode::TornTail { drop },
        }
    }

    /// Fires on the `hit`-th arrival instead of the first.
    pub fn with_hit(mut self, hit: u64) -> CrashPlan {
        self.hit = hit.max(1);
        self
    }

    /// Parses a CLI-style spec like `point=pre_settle,hit=2,mode=kill`
    /// or `point=checkpoint,mode=torn,drop=7`.
    ///
    /// Recognized keys: `point` (required), `hit` (1-based arrival
    /// count, default 1), `mode` (`kill` | `torn`, default `kill`),
    /// `drop` (tail bytes for `torn`, default 1). Each key may appear at
    /// most once.
    pub fn parse(spec: &str) -> Result<CrashPlan, String> {
        let mut point: Option<String> = None;
        let mut hit: u64 = 1;
        let mut torn = false;
        let mut drop: u64 = 1;
        let mut seen: Vec<&str> = Vec::new();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("crash-plan entry `{part}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = || format!("crash-plan `{key}` has invalid value `{value}`");
            match key {
                "point" => point = Some(value.to_string()),
                "hit" => {
                    hit = value.parse().map_err(|_| bad())?;
                    if hit == 0 {
                        return Err("crash-plan `hit` is 1-based; 0 never fires".to_string());
                    }
                }
                "mode" => match value {
                    "kill" => torn = false,
                    "torn" | "torn_tail" => torn = true,
                    _ => return Err(bad()),
                },
                "drop" => drop = value.parse().map_err(|_| bad())?,
                other => return Err(format!("unknown crash-plan key `{other}`")),
            }
            if seen.contains(&key) {
                return Err(format!("crash-plan key `{key}` given more than once"));
            }
            seen.push(key);
        }
        let point = point.ok_or_else(|| "crash-plan needs a `point`".to_string())?;
        Ok(CrashPlan {
            point,
            hit,
            mode: if torn {
                CrashMode::TornTail { drop }
            } else {
                CrashMode::Kill
            },
        })
    }
}

/// The armed runtime of a [`CrashPlan`]: counts arrivals per crashpoint
/// and reports when the shot fires. Shared by reference between the
/// engine (kill points) and the journal writer (torn-tail points).
#[derive(Debug)]
pub struct CrashInjector {
    plan: CrashPlan,
    hits: Mutex<HashMap<String, u64>>,
}

impl CrashInjector {
    /// Arms `plan`.
    pub fn new(plan: CrashPlan) -> CrashInjector {
        CrashInjector {
            plan,
            hits: Mutex::new(HashMap::new()),
        }
    }

    /// The armed plan.
    pub fn plan(&self) -> &CrashPlan {
        &self.plan
    }

    /// Records an arrival at `point` and returns the crash mode if this
    /// arrival is the one the plan fires on (single shot: exactly one
    /// arrival ever returns `Some`).
    pub fn check(&self, point: &str) -> Option<CrashMode> {
        if point != self.plan.point {
            return None;
        }
        // Poison only means another worker died at this point — which is
        // exactly what crash injection does; the counter is still sound.
        let mut hits = self.hits.lock().unwrap_or_else(|e| e.into_inner());
        let slot = hits.entry(point.to_string()).or_insert(0);
        *slot += 1;
        (*slot == self.plan.hit).then_some(self.plan.mode)
    }

    /// Records an arrival at `point` and kills the calling thread with a
    /// [`CRASH_PANIC_PREFIX`] panic if a `Kill` shot fires. `TornTail`
    /// shots are ignored here — only the journal writer consumes them.
    pub fn crash_if_armed(&self, point: &str) {
        if let Some(CrashMode::Kill) = self.check(point) {
            // ma-lint: allow(panic-safety) reason="deliberate crash injection: the supervisor catches this panic by prefix"
            panic!("{CRASH_PANIC_PREFIX}{point}");
        }
    }
}

/// Extracts the crashpoint name from a panic payload raised by
/// [`CrashInjector::crash_if_armed`], or `None` for ordinary panics.
pub fn crash_point(payload: &(dyn std::any::Any + Send)) -> Option<&str> {
    let msg: &str = if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        return None;
    };
    msg.strip_prefix(CRASH_PANIC_PREFIX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_once_on_the_named_hit() {
        let inj = CrashInjector::new(CrashPlan::kill("pre_settle").with_hit(3));
        assert_eq!(inj.check("post_admit"), None);
        assert_eq!(inj.check("pre_settle"), None);
        assert_eq!(inj.check("pre_settle"), None);
        assert_eq!(inj.check("pre_settle"), Some(CrashMode::Kill));
        assert_eq!(inj.check("pre_settle"), None);
    }

    #[test]
    fn crash_panic_carries_the_point_name() {
        let inj = CrashInjector::new(CrashPlan::kill("checkpoint"));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inj.crash_if_armed("checkpoint");
        }))
        .unwrap_err();
        assert_eq!(crash_point(err.as_ref()), Some("checkpoint"));
    }

    #[test]
    fn ordinary_panics_are_not_crash_points() {
        let err = std::panic::catch_unwind(|| panic!("index out of bounds: whatever")).unwrap_err();
        assert_eq!(crash_point(err.as_ref()), None);
    }

    #[test]
    fn torn_tail_is_reported_not_panicked() {
        let inj = CrashInjector::new(CrashPlan::torn_tail("checkpoint", 7));
        assert_eq!(
            inj.check("checkpoint"),
            Some(CrashMode::TornTail { drop: 7 })
        );
        inj.crash_if_armed("checkpoint"); // must not panic
    }

    #[test]
    fn parse_round_trips_the_cli_spec() {
        let p = CrashPlan::parse("point=pre_settle, hit=2, mode=kill").unwrap();
        assert_eq!(p, CrashPlan::kill("pre_settle").with_hit(2));
        let t = CrashPlan::parse("point=checkpoint,mode=torn,drop=9").unwrap();
        assert_eq!(t, CrashPlan::torn_tail("checkpoint", 9));
        assert!(CrashPlan::parse("mode=kill").is_err(), "point is required");
        assert!(CrashPlan::parse("point=x,hit=0").is_err());
        assert!(CrashPlan::parse("point=x,bogus=1").is_err());
        assert!(CrashPlan::parse("point=x,point=y").is_err());
    }
}
