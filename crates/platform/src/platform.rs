// ma-lint: allow-file(panic-safety) reason="timeline and keyword tables are densely indexed by ids the platform itself issued"
//! The platform store: users, posts, timelines and indexes.
//!
//! [`Platform`] is the complete state of the simulated microblog service.
//! Access-limited views of it (the three API queries of §2 of the paper)
//! are provided by the `microblog-api` crate; exact ground truth is
//! computed by [`crate::truth`]. Nothing in the analyzer is allowed to
//! touch `Platform` directly — only through the rate-limited API.

use crate::cascade::{exp_sample, poisson, CascadeOutcome, PostDraft};
use crate::ids::{KeywordId, PostId, UserId};
use crate::post::{KeywordCatalog, Post};
use crate::time::{Duration, TimeWindow, Timestamp};
use crate::user::UserProfile;
use microblog_graph::DirectedGraph;
use rand::Rng;

/// The immutable, fully-built platform state.
#[derive(Clone, Debug)]
pub struct Platform {
    pub(crate) graph: DirectedGraph,
    pub(crate) users: Vec<UserProfile>,
    pub(crate) posts: Vec<Post>,
    /// Per-user post ids, most recent first (like real timeline APIs).
    pub(crate) timelines: Vec<Vec<PostId>>,
    /// Per-keyword post ids, oldest first.
    pub(crate) keyword_index: Vec<Vec<PostId>>,
    pub(crate) keywords: KeywordCatalog,
    pub(crate) now: Timestamp,
    /// Planted community labels when the generator provides them.
    pub(crate) community: Option<Vec<u32>>,
}

impl Platform {
    /// Number of registered users.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Number of posts ever published.
    pub fn post_count(&self) -> usize {
        self.posts.len()
    }

    /// The platform's current clock ("today" for the search API window).
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Profile of `u`.
    ///
    /// # Panics
    /// Panics on an unknown user id.
    pub fn profile(&self, u: UserId) -> &UserProfile {
        &self.users[u.index()]
    }

    /// The follower graph.
    pub fn graph(&self) -> &DirectedGraph {
        &self.graph
    }

    /// Users following `u`.
    pub fn followers(&self, u: UserId) -> &[u32] {
        self.graph.followers(u.0)
    }

    /// Users `u` follows.
    pub fn followees(&self, u: UserId) -> &[u32] {
        self.graph.followees(u.0)
    }

    /// Full timeline of `u`, most recent post first.
    pub fn timeline(&self, u: UserId) -> &[PostId] {
        &self.timelines[u.index()]
    }

    /// The post with id `p`.
    pub fn post(&self, p: PostId) -> &Post {
        &self.posts[p.index()]
    }

    /// The keyword catalog.
    pub fn keywords(&self) -> &KeywordCatalog {
        &self.keywords
    }

    /// Planted community labels, when the scenario kept them.
    pub fn community_labels(&self) -> Option<&[u32]> {
        self.community.as_deref()
    }

    /// Posts mentioning `kw` inside `window`, most recent first.
    pub fn search_posts(&self, kw: KeywordId, window: TimeWindow) -> Vec<PostId> {
        let index = match self.keyword_index.get(kw.index()) {
            Some(v) => v,
            None => return Vec::new(),
        };
        let lo = index.partition_point(|&p| self.posts[p.index()].time < window.start);
        let hi = index.partition_point(|&p| self.posts[p.index()].time < window.end);
        index[lo..hi].iter().rev().copied().collect()
    }

    /// The time of `u`'s first post mentioning `kw` inside `window`
    /// (ground-truth view; the analyzer recomputes this from API data).
    pub fn first_mention(&self, u: UserId, kw: KeywordId, window: TimeWindow) -> Option<Timestamp> {
        self.timelines[u.index()]
            .iter()
            .rev() // oldest first
            .map(|&p| &self.posts[p.index()])
            .find(|p| p.mentions(kw) && window.contains(p.time))
            .map(|p| p.time)
    }
}

/// Builds a [`Platform`] from a graph, profiles, cascades and chatter.
pub struct PlatformBuilder {
    graph: DirectedGraph,
    users: Vec<UserProfile>,
    keywords: KeywordCatalog,
    drafts: Vec<PostDraft>,
    now: Timestamp,
    community: Option<Vec<u32>>,
}

impl PlatformBuilder {
    /// Starts a build over `graph` with the given profiles; `now` is the
    /// platform clock after build (search windows end here).
    ///
    /// # Panics
    /// Panics if `users.len() != graph.node_count()`.
    pub fn new(graph: DirectedGraph, users: Vec<UserProfile>, now: Timestamp) -> Self {
        assert_eq!(
            users.len(),
            graph.node_count(),
            "one profile per node required"
        );
        PlatformBuilder {
            graph,
            users,
            keywords: KeywordCatalog::new(),
            drafts: Vec::new(),
            now,
            community: None,
        }
    }

    /// Records planted community labels for later inspection.
    pub fn with_communities(mut self, labels: Vec<u32>) -> Self {
        assert_eq!(
            labels.len(),
            self.users.len(),
            "one label per user required"
        );
        self.community = Some(labels);
        self
    }

    /// Interns a keyword so cascades can reference it.
    pub fn intern_keyword(&mut self, name: &str) -> KeywordId {
        self.keywords.intern(name)
    }

    /// Access to the graph for cascade simulation.
    pub fn graph(&self) -> &DirectedGraph {
        &self.graph
    }

    /// The planted community labels, when provided via
    /// [`PlatformBuilder::with_communities`].
    pub fn communities(&self) -> Option<&[u32]> {
        self.community.as_deref()
    }

    /// Merges a cascade's posts into the platform.
    pub fn add_cascade(&mut self, outcome: CascadeOutcome) {
        self.drafts.extend(outcome.posts);
    }

    /// Adds keyword-free "chatter" posts: every user posts a
    /// Poisson(`mean_posts`) number of generic posts at uniform times in
    /// `window`. Chatter is what makes timeline pagination costly, like on
    /// the real platforms.
    pub fn add_chatter<R: Rng>(&mut self, rng: &mut R, mean_posts: f64, window: TimeWindow) {
        let span = window.length().0.max(1);
        for u in 0..self.users.len() as u32 {
            let count = poisson(rng, mean_posts);
            for _ in 0..count {
                let t = window.start + Duration(rng.gen_range(0..span));
                let followers = self.graph.follower_count(u) as f64;
                let likes = poisson(rng, (followers * 0.01 + 0.1).min(300.0)) as u32;
                self.drafts.push(PostDraft {
                    author: UserId(u),
                    time: t,
                    keywords: Vec::new(),
                    likes,
                    chars: rng.gen_range(10..140) as u16,
                    is_repost: rng.gen_bool(0.2),
                });
            }
        }
    }

    /// Adds a single post by `u` at exactly time `t`, mentioning `kw` when
    /// given — the precision tool for scripted test worlds.
    pub fn add_post_at(&mut self, u: UserId, kw: Option<KeywordId>, t: Timestamp, likes: u32) {
        self.drafts.push(PostDraft {
            author: u,
            time: t,
            keywords: kw.into_iter().collect(),
            likes,
            chars: 42,
            is_repost: false,
        });
    }

    /// Adds posts by `u` mentioning `kw` at exponential intervals — used by
    /// tests to script exact timelines.
    pub fn add_scripted_posts<R: Rng>(
        &mut self,
        rng: &mut R,
        u: UserId,
        kw: KeywordId,
        count: usize,
        window: TimeWindow,
    ) {
        let mean_gap = window.length().0 as f64 / (count as f64 + 1.0);
        let mut t = window.start;
        for _ in 0..count {
            t = t + Duration(exp_sample(rng, mean_gap).max(1.0) as i64);
            if !window.contains(t) {
                break;
            }
            self.drafts.push(PostDraft {
                author: u,
                time: t,
                keywords: vec![kw],
                likes: 0,
                chars: 42,
                is_repost: false,
            });
        }
    }

    /// Finalizes the platform: sorts posts, assigns ids, builds timeline
    /// and keyword indexes.
    pub fn build(self) -> Platform {
        let PlatformBuilder {
            graph,
            users,
            keywords,
            mut drafts,
            now,
            community,
        } = self;
        drafts.sort_by_key(|d| (d.time, d.author));
        let mut posts = Vec::with_capacity(drafts.len());
        let mut timelines: Vec<Vec<PostId>> = vec![Vec::new(); users.len()];
        let mut keyword_index: Vec<Vec<PostId>> = vec![Vec::new(); keywords.len()];
        for (i, mut d) in drafts.into_iter().enumerate() {
            let id = PostId(u32::try_from(i).expect("post count overflow"));
            d.keywords.sort_unstable();
            d.keywords.dedup();
            for &kw in &d.keywords {
                keyword_index[kw.index()].push(id);
            }
            timelines[d.author.index()].push(id);
            posts.push(Post {
                id,
                author: d.author,
                time: d.time,
                keywords: d.keywords,
                likes: d.likes,
                chars: d.chars,
                is_repost: d.is_repost,
            });
        }
        // Most recent first.
        for t in &mut timelines {
            t.reverse();
        }
        Platform {
            graph,
            users,
            posts,
            timelines,
            keyword_index,
            keywords,
            now,
            community,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cascade::{simulate, CascadeConfig};
    use crate::gen::{community_preferential, CommunityGraphConfig};
    use crate::user::generate_profile;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn build_small(seed: u64) -> Platform {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cfg = CommunityGraphConfig {
            nodes: 1_500,
            communities: 8,
            ..Default::default()
        };
        let (graph, labels) = community_preferential(&mut rng, &cfg);
        let users = (0..1_500)
            .map(|_| generate_profile(&mut rng, 0.3, Timestamp::EPOCH))
            .collect();
        let now = Timestamp::at_day(100);
        let mut b = PlatformBuilder::new(graph, users, now).with_communities(labels);
        let kw = b.intern_keyword("privacy");
        let window = TimeWindow::new(Timestamp::EPOCH, now);
        let outcome = simulate(&mut rng, b.graph(), &CascadeConfig::new(kw, window));
        b.add_cascade(outcome);
        b.add_chatter(&mut rng, 5.0, window);
        b.build()
    }

    #[test]
    fn timelines_are_recent_first_and_complete() {
        let p = build_small(1);
        assert_eq!(p.user_count(), 1_500);
        let mut total = 0usize;
        for u in 0..1_500u32 {
            let tl = p.timeline(UserId(u));
            total += tl.len();
            for pair in tl.windows(2) {
                assert!(
                    p.post(pair[0]).time >= p.post(pair[1]).time,
                    "timeline not descending"
                );
            }
            for &pid in tl {
                assert_eq!(p.post(pid).author, UserId(u));
            }
        }
        assert_eq!(total, p.post_count());
    }

    #[test]
    fn search_respects_window_and_keyword() {
        let p = build_small(2);
        let kw = p.keywords().get("privacy").unwrap();
        let window = TimeWindow::new(Timestamp::at_day(10), Timestamp::at_day(60));
        let hits = p.search_posts(kw, window);
        assert!(!hits.is_empty(), "cascade produced no posts in window");
        for pair in hits.windows(2) {
            assert!(
                p.post(pair[0]).time >= p.post(pair[1]).time,
                "search not recent-first"
            );
        }
        for &pid in &hits {
            let post = p.post(pid);
            assert!(post.mentions(kw));
            assert!(window.contains(post.time));
        }
        // Unknown keyword id → empty.
        assert!(p.search_posts(KeywordId(999), window).is_empty());
    }

    #[test]
    fn first_mention_matches_search() {
        let p = build_small(3);
        let kw = p.keywords().get("privacy").unwrap();
        let window = TimeWindow::new(Timestamp::EPOCH, p.now());
        let hits = p.search_posts(kw, window);
        let user = p.post(hits[0]).author;
        let first = p.first_mention(user, kw, window).unwrap();
        // No earlier qualifying post exists on that user's timeline.
        for &pid in p.timeline(user) {
            let post = p.post(pid);
            if post.mentions(kw) && window.contains(post.time) {
                assert!(post.time >= first);
            }
        }
        // A user with no keyword posts yields None.
        let silent = (0..1_500u32)
            .map(UserId)
            .find(|&u| p.first_mention(u, kw, window).is_none())
            .expect("some user never mentioned the keyword");
        assert!(p
            .timeline(silent)
            .iter()
            .all(|&pid| !p.post(pid).mentions(kw)));
    }

    #[test]
    fn chatter_has_no_keywords() {
        let p = build_small(4);
        let chatter = p
            .timelines
            .iter()
            .flatten()
            .map(|&pid| p.post(pid))
            .filter(|post| post.keywords.is_empty())
            .count();
        assert!(chatter > 1_000, "chatter missing");
    }

    #[test]
    #[should_panic(expected = "one profile per node")]
    fn builder_rejects_mismatched_profiles() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let (graph, _) = community_preferential(
            &mut rng,
            &CommunityGraphConfig {
                nodes: 10,
                communities: 2,
                ..Default::default()
            },
        );
        let _ = PlatformBuilder::new(graph, vec![], Timestamp::EPOCH);
    }
}
