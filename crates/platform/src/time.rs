//! Simulated time: timestamps, durations and half-open windows.
//!
//! The simulation clock counts seconds from an arbitrary epoch that the
//! scenarios pin to `2013-01-01 00:00:00 UTC`, matching the paper's
//! ground-truth collection window (Jan 1 – Oct 31, 2013).

use serde::{Deserialize, Serialize};

/// A point in simulated time, in seconds since the scenario epoch.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Timestamp(pub i64);

/// A span of simulated time, in seconds. Non-negative by convention.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Duration(pub i64);

impl Duration {
    /// One second.
    pub const SECOND: Duration = Duration(1);
    /// One minute.
    pub const MINUTE: Duration = Duration(60);
    /// One hour.
    pub const HOUR: Duration = Duration(3_600);
    /// One day.
    pub const DAY: Duration = Duration(86_400);
    /// One week.
    pub const WEEK: Duration = Duration(7 * 86_400);
    /// Thirty days — the paper's "1M" interval candidate.
    pub const MONTH: Duration = Duration(30 * 86_400);

    /// Builds a duration of `n` hours.
    pub const fn hours(n: i64) -> Duration {
        Duration(n * 3_600)
    }

    /// Builds a duration of `n` days.
    pub const fn days(n: i64) -> Duration {
        Duration(n * 86_400)
    }

    /// The span in seconds.
    pub const fn seconds(self) -> i64 {
        self.0
    }

    /// The span in fractional hours.
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / 3_600.0
    }

    /// Human-readable label used in Figure 5's axis (2H, 12H, 1D, 1W, 1M).
    pub fn label(self) -> String {
        let s = self.0;
        if s % Duration::MONTH.0 == 0 && s != 0 {
            format!("{}M", s / Duration::MONTH.0)
        } else if s % Duration::WEEK.0 == 0 && s != 0 {
            format!("{}W", s / Duration::WEEK.0)
        } else if s % Duration::DAY.0 == 0 && s != 0 {
            format!("{}D", s / Duration::DAY.0)
        } else if s % Duration::HOUR.0 == 0 && s != 0 {
            format!("{}H", s / Duration::HOUR.0)
        } else {
            format!("{s}s")
        }
    }
}

impl Timestamp {
    /// The scenario epoch (2013-01-01 00:00 in scenario time).
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Timestamp `n` days after the epoch.
    pub const fn at_day(n: i64) -> Timestamp {
        Timestamp(n * 86_400)
    }

    /// Elapsed time since `earlier` (may be negative).
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration(self.0 - earlier.0)
    }
}

impl std::ops::Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, d: Duration) -> Timestamp {
        Timestamp(self.0 + d.0)
    }
}

impl std::ops::Sub<Duration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, d: Duration) -> Timestamp {
        Timestamp(self.0 - d.0)
    }
}

impl std::ops::Add for Duration {
    type Output = Duration;
    fn add(self, other: Duration) -> Duration {
        Duration(self.0 + other.0)
    }
}

impl std::ops::Mul<i64> for Duration {
    type Output = Duration;
    fn mul(self, k: i64) -> Duration {
        Duration(self.0 * k)
    }
}

/// A half-open time window `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeWindow {
    /// Inclusive start.
    pub start: Timestamp,
    /// Exclusive end.
    pub end: Timestamp,
}

impl TimeWindow {
    /// Creates `[start, end)`.
    ///
    /// # Panics
    /// Panics if `end < start`.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        assert!(end >= start, "window end before start");
        TimeWindow { start, end }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.start && t < self.end
    }

    /// The window length.
    pub fn length(&self) -> Duration {
        self.end.since(self.start)
    }

    /// The last `d` of time before (and excluding) `now` — how search APIs
    /// scope their results.
    pub fn trailing(now: Timestamp, d: Duration) -> Self {
        TimeWindow::new(now - d, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Timestamp::at_day(3) + Duration::hours(5);
        assert_eq!(t.0, 3 * 86_400 + 5 * 3_600);
        assert_eq!((t - Duration::hours(5)), Timestamp::at_day(3));
        assert_eq!(
            Timestamp::at_day(2).since(Timestamp::at_day(1)),
            Duration::DAY
        );
        assert_eq!(Duration::HOUR * 12, Duration::hours(12));
    }

    #[test]
    fn labels_match_figure5_axis() {
        assert_eq!(Duration::hours(2).label(), "2H");
        assert_eq!(Duration::hours(12).label(), "12H");
        assert_eq!(Duration::DAY.label(), "1D");
        assert_eq!(Duration::days(2).label(), "2D");
        assert_eq!(Duration::WEEK.label(), "1W");
        assert_eq!(Duration::MONTH.label(), "1M");
        assert_eq!(Duration(90).label(), "90s");
    }

    #[test]
    fn window_contains_half_open() {
        let w = TimeWindow::new(Timestamp(10), Timestamp(20));
        assert!(w.contains(Timestamp(10)));
        assert!(w.contains(Timestamp(19)));
        assert!(!w.contains(Timestamp(20)));
        assert!(!w.contains(Timestamp(9)));
        assert_eq!(w.length(), Duration(10));
    }

    #[test]
    fn trailing_window() {
        let w = TimeWindow::trailing(Timestamp(100), Duration(30));
        assert_eq!(w.start, Timestamp(70));
        assert_eq!(w.end, Timestamp(100));
    }

    #[test]
    #[should_panic(expected = "end before start")]
    fn rejects_inverted_window() {
        let _ = TimeWindow::new(Timestamp(5), Timestamp(1));
    }
}
