//! Platform persistence: save and reload whole worlds.
//!
//! Scenario construction is deterministic given a seed, but large worlds
//! take a while to simulate; persisting a built [`Platform`] lets the
//! experiment harness (and downstream users) reuse one world across many
//! runs and ship reproducible fixtures. The snapshot is a plain
//! serde-serializable value — JSON here, but any serde format works.

use crate::ids::PostId;
use crate::platform::Platform;
use crate::post::{KeywordCatalog, Post};
use crate::time::Timestamp;
use crate::user::UserProfile;
use microblog_graph::DirectedGraph;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::Path;

/// A self-contained, serializable image of a [`Platform`].
///
/// Indexes (timelines, keyword index) are *not* stored — they are
/// reconstructed on load, which keeps snapshots small and guarantees the
/// loaded platform is internally consistent.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PlatformSnapshot {
    /// Snapshot format version.
    pub version: u32,
    /// Number of users.
    pub user_count: usize,
    /// Follower arcs `u -> v`.
    pub arcs: Vec<(u32, u32)>,
    /// User profiles, by id.
    pub users: Vec<UserProfile>,
    /// All posts (creation-ordered).
    pub posts: Vec<Post>,
    /// Keyword catalog.
    pub keywords: KeywordCatalog,
    /// Platform clock.
    pub now: Timestamp,
    /// Planted community labels, if kept.
    pub community: Option<Vec<u32>>,
}

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Errors from snapshot load/save.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed snapshot payload.
    Format(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            PersistError::Format(m) => write!(f, "snapshot format error: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl Platform {
    /// Captures a serializable snapshot of this platform.
    pub fn to_snapshot(&self) -> PlatformSnapshot {
        PlatformSnapshot {
            version: SNAPSHOT_VERSION,
            user_count: self.user_count(),
            arcs: self.graph.arcs().collect(),
            users: self.users.clone(),
            posts: self.posts.clone(),
            keywords: self.keywords.clone(),
            now: self.now,
            community: self.community.clone(),
        }
    }

    /// Rebuilds a platform from a snapshot, reconstructing all indexes.
    ///
    /// Fails if the snapshot is internally inconsistent (bad ids, unsorted
    /// post times, version mismatch).
    pub fn from_snapshot(snapshot: PlatformSnapshot) -> Result<Platform, PersistError> {
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(PersistError::Format(format!(
                "unsupported snapshot version {}",
                snapshot.version
            )));
        }
        if snapshot.users.len() != snapshot.user_count {
            return Err(PersistError::Format("user count mismatch".into()));
        }
        if let Some(labels) = &snapshot.community {
            if labels.len() != snapshot.user_count {
                return Err(PersistError::Format(
                    "community label count mismatch".into(),
                ));
            }
        }
        for &(u, v) in &snapshot.arcs {
            if u as usize >= snapshot.user_count || v as usize >= snapshot.user_count {
                return Err(PersistError::Format(format!("arc ({u},{v}) out of range")));
            }
        }
        let mut timelines: Vec<Vec<PostId>> = vec![Vec::new(); snapshot.user_count];
        let mut max_kw = 0usize;
        for (i, post) in snapshot.posts.iter().enumerate() {
            if post.id.index() != i {
                return Err(PersistError::Format(format!(
                    "post {} has id {} (must be dense, in order)",
                    i, post.id
                )));
            }
            if post.author.index() >= snapshot.user_count {
                return Err(PersistError::Format(format!(
                    "post {} author out of range",
                    post.id
                )));
            }
            // ma-lint: allow(panic-safety) reason="guarded by i > 0"
            if i > 0 && snapshot.posts[i - 1].time > post.time {
                return Err(PersistError::Format("posts not time-ordered".into()));
            }
            max_kw = max_kw.max(post.keywords.last().map_or(0, |k| k.index() + 1));
            timelines[post.author.index()].push(post.id); // ma-lint: allow(panic-safety) reason="table sized to the id space at construction"
        }
        if max_kw > snapshot.keywords.len() {
            return Err(PersistError::Format(
                "post references unknown keyword".into(),
            ));
        }
        let mut keyword_index: Vec<Vec<PostId>> = vec![Vec::new(); snapshot.keywords.len()];
        for post in &snapshot.posts {
            for &kw in &post.keywords {
                keyword_index[kw.index()].push(post.id); // ma-lint: allow(panic-safety) reason="table sized to the id space at construction"
            }
        }
        for t in &mut timelines {
            t.reverse(); // most recent first
        }
        Ok(Platform {
            graph: DirectedGraph::from_arcs(snapshot.user_count, snapshot.arcs),
            users: snapshot.users,
            posts: snapshot.posts,
            timelines,
            keyword_index,
            keywords: snapshot.keywords,
            now: snapshot.now,
            community: snapshot.community,
        })
    }

    /// Serializes the platform as JSON to `writer`.
    pub fn save_json<W: Write>(&self, writer: W) -> Result<(), PersistError> {
        serde_json::to_writer(writer, &self.to_snapshot())
            .map_err(|e| PersistError::Format(e.to_string()))
    }

    /// Deserializes a platform from JSON.
    pub fn load_json<R: Read>(reader: R) -> Result<Platform, PersistError> {
        let snapshot: PlatformSnapshot =
            serde_json::from_reader(reader).map_err(|e| PersistError::Format(e.to_string()))?;
        Platform::from_snapshot(snapshot)
    }

    /// Saves to a file path (JSON).
    pub fn save_to_file(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let file = std::fs::File::create(path)?;
        self.save_json(std::io::BufWriter::new(file))
    }

    /// Loads from a file path (JSON).
    pub fn load_from_file(path: impl AsRef<Path>) -> Result<Platform, PersistError> {
        let file = std::fs::File::open(path)?;
        Platform::load_json(std::io::BufReader::new(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{twitter_2013, Scale};
    use crate::truth::{exact_avg, exact_count, Condition};
    use crate::{TimeWindow, UserId, UserMetric};

    fn world() -> Platform {
        twitter_2013(Scale::Tiny, 501).platform
    }

    #[test]
    fn json_round_trip_preserves_everything_observable() {
        let p = world();
        let mut buf = Vec::new();
        p.save_json(&mut buf).unwrap();
        let q = Platform::load_json(buf.as_slice()).unwrap();

        assert_eq!(p.user_count(), q.user_count());
        assert_eq!(p.post_count(), q.post_count());
        assert_eq!(p.now(), q.now());
        assert_eq!(p.keywords().len(), q.keywords().len());
        assert_eq!(p.community_labels(), q.community_labels());
        // Graph equality via adjacency samples.
        for u in (0..p.user_count() as u32).step_by(97) {
            assert_eq!(p.followers(UserId(u)), q.followers(UserId(u)));
            assert_eq!(p.followees(UserId(u)), q.followees(UserId(u)));
            assert_eq!(p.timeline(UserId(u)), q.timeline(UserId(u)));
        }
        // Ground truths agree.
        let kw = p.keywords().get("boston").unwrap();
        let window = TimeWindow::new(Timestamp::EPOCH, p.now());
        let cond = Condition::keyword(kw).in_window(window);
        assert_eq!(exact_count(&p, &cond), exact_count(&q, &cond));
        assert_eq!(
            exact_avg(&p, &cond, UserMetric::FollowerCount),
            exact_avg(&q, &cond, UserMetric::FollowerCount)
        );
    }

    #[test]
    fn corrupted_snapshots_are_rejected() {
        let p = world();
        let mut snap = p.to_snapshot();
        snap.version = 99;
        assert!(matches!(
            Platform::from_snapshot(snap),
            Err(PersistError::Format(_))
        ));

        let mut snap = p.to_snapshot();
        snap.users.pop();
        assert!(Platform::from_snapshot(snap).is_err());

        let mut snap = p.to_snapshot();
        snap.arcs.push((0, u32::MAX));
        assert!(Platform::from_snapshot(snap).is_err());

        let mut snap = p.to_snapshot();
        if snap.posts.len() >= 2 {
            snap.posts.swap(0, 1);
            assert!(Platform::from_snapshot(snap).is_err());
        }
    }

    #[test]
    fn file_round_trip() {
        let p = world();
        let path = std::env::temp_dir().join("ma_platform_snapshot_test.json");
        p.save_to_file(&path).unwrap();
        let q = Platform::load_from_file(&path).unwrap();
        assert_eq!(p.post_count(), q.post_count());
        let _ = std::fs::remove_file(&path);
    }
}
