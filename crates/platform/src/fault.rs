//! Deterministic fault injection for the platform API surface.
//!
//! The paper's premise is a flaky, rate-limited public API; real crawlers
//! (twAwler, "Walk, Not Wait") spend most of their engineering on 429/5xx
//! handling. [`FaultyPlatform`] wraps a pristine [`Platform`] behind the
//! [`ApiBackend`] trait and injects configurable failure modes — transient
//! server errors, rate-limit rejections with a retry-after window,
//! latency/timeouts, and truncated pagination — so resilience code can be
//! tested without a network.
//!
//! Injection is **deterministic**: whether attempt *n* on a given
//! (endpoint, request key) faults is a pure function of the
//! [`FaultPlan`] seed, so runs are reproducible per call-index and
//! independent of thread interleaving *within* a key's attempt sequence.

use crate::backend::ApiBackend;
use crate::ids::{KeywordId, PostId, UserId};
use crate::platform::Platform;
use crate::time::{Duration, TimeWindow};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The three faultable API endpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ApiEndpoint {
    /// Keyword search (`SEARCH(kw, window)`).
    Search,
    /// Follower/followee lists (`CONNECTIONS(u)`).
    Connections,
    /// User timelines (`TIMELINE(u)`).
    Timeline,
}

impl ApiEndpoint {
    /// All endpoints, in a fixed order.
    pub const ALL: [ApiEndpoint; 3] = [
        ApiEndpoint::Search,
        ApiEndpoint::Connections,
        ApiEndpoint::Timeline,
    ];

    /// Stable index of the endpoint (for per-endpoint tables).
    pub fn index(self) -> usize {
        match self {
            ApiEndpoint::Search => 0,
            ApiEndpoint::Connections => 1,
            ApiEndpoint::Timeline => 2,
        }
    }

    /// Short lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ApiEndpoint::Search => "search",
            ApiEndpoint::Connections => "connections",
            ApiEndpoint::Timeline => "timeline",
        }
    }
}

impl std::fmt::Display for ApiEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One injected failure, as surfaced by a fetch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// A transient server error (HTTP 5xx): retry after backoff.
    Transient,
    /// A rate-limit rejection (HTTP 429) naming its cool-off window.
    RateLimited {
        /// How long the server asks the client to wait.
        retry_after: Duration,
    },
    /// The call hung past its latency budget and was abandoned.
    Timeout {
        /// How long the call hung before being cut.
        latency: Duration,
    },
    /// Pagination was cut short; only a prefix of the result came back.
    /// The partial data is *discarded* (the cursor is inconsistent), so
    /// the caller retries the fetch from scratch.
    Truncated {
        /// Items served before the cut (strictly fewer than the total).
        served: usize,
    },
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::Transient => write!(f, "transient server error"),
            Fault::RateLimited { retry_after } => {
                write!(f, "rate limited (retry after {}s)", retry_after.0)
            }
            Fault::Timeout { latency } => write!(f, "timed out after {}s", latency.0),
            Fault::Truncated { served } => write!(f, "truncated page ({served} items served)"),
        }
    }
}

/// Per-mode injection probabilities, each in `[0, 1]`.
///
/// The modes are drawn exclusively: one uniform draw per attempt selects
/// at most one fault, so `total()` must not exceed 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultRates {
    /// Probability of a transient server error.
    pub transient: f64,
    /// Probability of a rate-limit rejection.
    pub rate_limited: f64,
    /// Probability of a timeout.
    pub timeout: f64,
    /// Probability of a truncated page.
    pub truncated: f64,
}

impl FaultRates {
    /// No faults at all.
    pub const NONE: FaultRates = FaultRates {
        transient: 0.0,
        rate_limited: 0.0,
        timeout: 0.0,
        truncated: 0.0,
    };

    /// Sum of all mode probabilities.
    pub fn total(&self) -> f64 {
        self.transient + self.rate_limited + self.timeout + self.truncated
    }
}

/// A seeded, declarative plan of which faults to inject.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-attempt fault draws.
    pub seed: u64,
    /// Per-mode probabilities.
    pub rates: FaultRates,
    /// The `retry_after` window attached to rate-limit rejections.
    pub retry_after: Duration,
    /// The hang time attached to timeouts.
    pub latency: Duration,
    /// Cap on *consecutive* faults per (endpoint, key): after this many
    /// faulted attempts in a row the next attempt is forced to succeed,
    /// so a caller whose retry budget exceeds the cap always gets the
    /// data. `0` disables the cap (outage mode — breakers want this).
    pub max_consecutive: u32,
}

impl FaultPlan {
    /// A plan that never faults.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            rates: FaultRates::NONE,
            retry_after: Duration::MINUTE,
            latency: Duration(5),
            max_consecutive: 3,
        }
    }

    /// Transient errors only, at probability `rate`.
    pub fn transient(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: FaultRates {
                transient: rate,
                ..FaultRates::NONE
            },
            ..FaultPlan::none()
        }
    }

    /// All four modes, splitting `rate` equally among them.
    pub fn mixed(seed: u64, rate: f64) -> FaultPlan {
        let each = rate / 4.0;
        FaultPlan {
            seed,
            rates: FaultRates {
                transient: each,
                rate_limited: each,
                timeout: each,
                truncated: each,
            },
            ..FaultPlan::none()
        }
    }

    /// A hard outage: every attempt fails with a transient error, with no
    /// consecutive-fault cap. This is what trips circuit breakers.
    pub fn outage(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: FaultRates {
                transient: 1.0,
                ..FaultRates::NONE
            },
            max_consecutive: 0,
            ..FaultPlan::none()
        }
    }

    /// Overrides the consecutive-fault cap.
    pub fn with_max_consecutive(mut self, cap: u32) -> FaultPlan {
        self.max_consecutive = cap;
        self
    }

    /// Parses a CLI-style spec like
    /// `transient=0.05,rate_limited=0.02,timeout=0.01,truncated=0.01,seed=42`.
    ///
    /// Recognized keys: the four rate names, `seed`, `retry_after`
    /// (seconds), `latency` (seconds), `max_consecutive`. Each key may
    /// appear at most once; rates must each lie in `[0, 1]` (and sum to
    /// at most 1), and durations must be non-negative.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        let mut seen: Vec<&str> = Vec::new();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault-plan entry `{part}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = || format!("fault-plan `{key}` has invalid value `{value}`");
            // A repeated key is almost certainly a typo'd plan; last-wins
            // would silently discard the first rate.
            let rate = |v: &str| -> Result<f64, String> {
                let r: f64 = v.parse().map_err(|_| bad())?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("fault-plan `{key}` rate {r} is outside [0, 1]"));
                }
                Ok(r)
            };
            let secs = |v: &str| -> Result<Duration, String> {
                let s: i64 = v.parse().map_err(|_| bad())?;
                if s < 0 {
                    return Err(format!("fault-plan `{key}` duration {s}s is negative"));
                }
                Ok(Duration(s))
            };
            match key {
                "transient" => plan.rates.transient = rate(value)?,
                "rate_limited" => plan.rates.rate_limited = rate(value)?,
                "timeout" => plan.rates.timeout = rate(value)?,
                "truncated" => plan.rates.truncated = rate(value)?,
                "seed" => plan.seed = value.parse().map_err(|_| bad())?,
                "retry_after" => plan.retry_after = secs(value)?,
                "latency" => plan.latency = secs(value)?,
                "max_consecutive" => plan.max_consecutive = value.parse().map_err(|_| bad())?,
                other => return Err(format!("unknown fault-plan key `{other}`")),
            }
            if seen.contains(&key) {
                return Err(format!("fault-plan key `{key}` given more than once"));
            }
            seen.push(key);
        }
        let total = plan.rates.total();
        if !(0.0..=1.0).contains(&total) {
            return Err(format!("fault rates sum to {total}, must be within [0, 1]"));
        }
        Ok(plan)
    }
}

/// Totals of injected faults, by mode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Transient server errors injected.
    pub transient: u64,
    /// Rate-limit rejections injected.
    pub rate_limited: u64,
    /// Timeouts injected.
    pub timeout: u64,
    /// Truncated pages injected.
    pub truncated: u64,
}

impl FaultCounts {
    /// All injected faults.
    pub fn total(&self) -> u64 {
        self.transient + self.rate_limited + self.timeout + self.truncated
    }
}

/// A [`Platform`] wrapper that injects the faults of a [`FaultPlan`].
///
/// Each (endpoint, request key) pair keeps an attempt counter; whether
/// attempt *n* faults — and with which mode — is a pure function of
/// `(plan.seed, endpoint, key, n)`. Retrying the same request therefore
/// walks a deterministic fault sequence, and [`FaultPlan::max_consecutive`]
/// bounds how long that sequence can stay hostile.
#[derive(Debug)]
pub struct FaultyPlatform {
    inner: Arc<Platform>,
    plan: FaultPlan,
    attempts: Mutex<HashMap<(u8, u64), u64>>,
    counts: [AtomicU64; 4],
    calls: AtomicU64,
}

impl FaultyPlatform {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: Arc<Platform>, plan: FaultPlan) -> FaultyPlatform {
        FaultyPlatform {
            inner,
            plan,
            attempts: Mutex::new(HashMap::new()),
            counts: Default::default(),
            calls: AtomicU64::new(0),
        }
    }

    /// The active plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Totals of faults injected so far.
    pub fn injected(&self) -> FaultCounts {
        FaultCounts {
            transient: self.counts[0].load(Ordering::Relaxed), // ma-lint: allow(panic-safety) reason="counts is a fixed [AtomicU64; 4] indexed by constants"
            rate_limited: self.counts[1].load(Ordering::Relaxed), // ma-lint: allow(panic-safety) reason="counts is a fixed [AtomicU64; 4] indexed by constants"
            timeout: self.counts[2].load(Ordering::Relaxed), // ma-lint: allow(panic-safety) reason="counts is a fixed [AtomicU64; 4] indexed by constants"
            truncated: self.counts[3].load(Ordering::Relaxed), // ma-lint: allow(panic-safety) reason="counts is a fixed [AtomicU64; 4] indexed by constants"
        }
    }

    /// Fetch attempts observed so far (faulted or not).
    pub fn fetches(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Rolls one observed attempt on `(endpoint, key)` back out of the
    /// deterministic fault schedule — the undo for a speculative prefetch
    /// that was issued but never consumed by its walker. After the
    /// rollback, the next real fetch of the key draws the same fault the
    /// abandoned attempt did, exactly as if the prefetch never happened.
    /// The injection counts and fetch total are history (the call really
    /// went out) and are left untouched.
    pub fn forget_attempt(&self, endpoint: ApiEndpoint, key: u64) {
        let mut attempts = self.attempts.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(slot) = attempts.get_mut(&(endpoint.index() as u8, key)) {
            *slot = slot.saturating_sub(1);
        }
    }

    /// Draws the fault (if any) for the next attempt on (endpoint, key).
    /// `len` is the full result size, used to size truncations.
    fn draw(&self, endpoint: ApiEndpoint, key: u64, len: usize) -> Option<Fault> {
        let n = {
            // Poison only means a panicked holder mid-increment; the
            // counters are still sound, so recover rather than abort.
            let mut attempts = self.attempts.lock().unwrap_or_else(|e| e.into_inner());
            let slot = attempts.entry((endpoint.index() as u8, key)).or_insert(0);
            let n = *slot;
            *slot += 1;
            n
        };
        self.calls.fetch_add(1, Ordering::Relaxed);
        let fault = self.fault_at(endpoint, key, n, len)?;
        let mode = match fault {
            Fault::Transient => 0,
            Fault::RateLimited { .. } => 1,
            Fault::Timeout { .. } => 2,
            Fault::Truncated { .. } => 3,
        };
        self.counts[mode].fetch_add(1, Ordering::Relaxed); // ma-lint: allow(panic-safety) reason="mode is one of the four match arms above"
        Some(fault)
    }

    /// Pure fault decision for attempt `n`, honoring the consecutive cap.
    fn fault_at(&self, endpoint: ApiEndpoint, key: u64, n: u64, len: usize) -> Option<Fault> {
        let cap = self.plan.max_consecutive as u64;
        if cap > 0 && n >= cap {
            let run_faulted = (n - cap..n).all(|i| self.raw_draw(endpoint, key, i, len).is_some());
            if run_faulted {
                return None; // forced success: the run hit the cap
            }
        }
        self.raw_draw(endpoint, key, n, len)
    }

    /// The unclamped seeded draw for attempt `n`.
    fn raw_draw(&self, endpoint: ApiEndpoint, key: u64, n: u64, len: usize) -> Option<Fault> {
        let rates = &self.plan.rates;
        if rates.total() <= 0.0 {
            return None;
        }
        let h = mix(
            self.plan.seed,
            &[0x1517_u64, endpoint.index() as u64, key, n],
        );
        let u = unit_f64(h);
        let mut edge = rates.transient;
        if u < edge {
            return Some(Fault::Transient);
        }
        edge += rates.rate_limited;
        if u < edge {
            return Some(Fault::RateLimited {
                retry_after: self.plan.retry_after,
            });
        }
        edge += rates.timeout;
        if u < edge {
            return Some(Fault::Timeout {
                latency: self.plan.latency,
            });
        }
        edge += rates.truncated;
        if u < edge {
            if len == 0 {
                // Nothing to truncate; degrade to a transient error so the
                // configured fault rate still applies.
                return Some(Fault::Transient);
            }
            // A second, independent draw sizes the served prefix in [0, len).
            let frac = unit_f64(mix(
                self.plan.seed,
                &[0x7C57, endpoint.index() as u64, key, n],
            ));
            return Some(Fault::Truncated {
                served: ((len as f64) * frac) as usize,
            });
        }
        None
    }
}

impl ApiBackend for FaultyPlatform {
    fn store(&self) -> &Platform {
        &self.inner
    }

    fn fetch_search(&self, kw: KeywordId, window: TimeWindow) -> Result<Vec<PostId>, Fault> {
        let full = self.inner.search_posts(kw, window);
        let key = mix(
            0x5EA2C4,
            &[kw.0 as u64, window.start.0 as u64, window.end.0 as u64],
        );
        match self.draw(ApiEndpoint::Search, key, full.len()) {
            Some(f) => Err(f),
            None => Ok(full),
        }
    }

    fn fetch_timeline(&self, u: UserId) -> Result<&[PostId], Fault> {
        let full = self.inner.timeline(u);
        match self.draw(ApiEndpoint::Timeline, u.0 as u64, full.len()) {
            Some(f) => Err(f),
            None => Ok(full),
        }
    }

    fn fetch_connections(&self, u: UserId) -> Result<(&[u32], &[u32]), Fault> {
        let followers = self.inner.followers(u);
        let followees = self.inner.followees(u);
        let len = followers.len() + followees.len();
        match self.draw(ApiEndpoint::Connections, u.0 as u64, len) {
            Some(f) => Err(f),
            None => Ok((followers, followees)),
        }
    }
}

/// SplitMix64-style avalanche over a word sequence.
fn mix(seed: u64, words: &[u64]) -> u64 {
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    for &w in words {
        state = state.wrapping_add(w).wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        state = z ^ (z >> 31);
    }
    state
}

/// Maps a hash to the unit interval `[0, 1)`.
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{twitter_2013, Scale};

    fn faulty(seed: u64, plan: FaultPlan) -> (FaultyPlatform, KeywordId, TimeWindow) {
        let s = twitter_2013(Scale::Tiny, seed);
        let kw = s.keyword("privacy").unwrap();
        let window = s.window;
        (FaultyPlatform::new(Arc::new(s.platform), plan), kw, window)
    }

    #[test]
    fn no_fault_plan_is_transparent() {
        let (f, kw, window) = faulty(11, FaultPlan::none());
        for _ in 0..50 {
            assert!(f.fetch_search(kw, window).is_ok());
            assert!(f.fetch_timeline(UserId(3)).is_ok());
            assert!(f.fetch_connections(UserId(3)).is_ok());
        }
        assert_eq!(f.injected().total(), 0);
        assert_eq!(f.fetches(), 150);
    }

    #[test]
    fn fault_sequence_is_deterministic_per_attempt() {
        let plan = FaultPlan::mixed(42, 0.5);
        let (a, kw, window) = faulty(12, plan);
        let (b, _, _) = faulty(12, plan);
        for _ in 0..100 {
            let ra = a.fetch_search(kw, window);
            let rb = b.fetch_search(kw, window);
            assert_eq!(ra.is_ok(), rb.is_ok());
            if let (Err(fa), Err(fb)) = (ra, rb) {
                assert_eq!(fa, fb);
            }
        }
        assert_eq!(a.injected(), b.injected());
        assert!(a.injected().total() > 10, "50% mixed plan must fault often");
    }

    #[test]
    fn consecutive_cap_forces_eventual_success() {
        // A savage plan, but capped: any run of 2 faults forces success.
        let plan = FaultPlan::transient(7, 0.95).with_max_consecutive(2);
        let (f, _, _) = faulty(13, plan);
        let mut longest_run = 0u32;
        let mut run = 0u32;
        for _ in 0..200 {
            match f.fetch_timeline(UserId(5)) {
                Err(_) => run += 1,
                Ok(_) => run = 0,
            }
            longest_run = longest_run.max(run);
        }
        assert!(longest_run <= 2, "run of {longest_run} exceeds cap");
    }

    #[test]
    fn outage_never_recovers() {
        let (f, kw, window) = faulty(14, FaultPlan::outage(1));
        for _ in 0..50 {
            assert!(f.fetch_search(kw, window).is_err());
        }
        assert_eq!(f.injected().transient, 50);
    }

    #[test]
    fn truncation_serves_a_strict_prefix() {
        let plan = FaultPlan {
            rates: FaultRates {
                truncated: 1.0,
                ..FaultRates::NONE
            },
            max_consecutive: 0,
            ..FaultPlan::none()
        };
        let (f, kw, window) = faulty(15, plan);
        let full = f.store().search_posts(kw, window).len();
        assert!(full > 0);
        for _ in 0..20 {
            match f.fetch_search(kw, window) {
                Err(Fault::Truncated { served }) => assert!(served < full),
                other => panic!("expected truncation, got {other:?}"),
            }
        }
    }

    #[test]
    fn parse_round_trips_the_cli_spec() {
        let plan = FaultPlan::parse(
            "transient=0.05, rate_limited=0.02, timeout=0.01, truncated=0.01, \
             seed=42, retry_after=120, latency=9, max_consecutive=4",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert!((plan.rates.total() - 0.09).abs() < 1e-12);
        assert_eq!(plan.retry_after, Duration(120));
        assert_eq!(plan.latency, Duration(9));
        assert_eq!(plan.max_consecutive, 4);
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("transient=0.9,timeout=0.9").is_err());
        assert!(FaultPlan::parse("transient=x").is_err());
    }

    #[test]
    fn rates_report_the_modes_injected() {
        let (f, kw, window) = faulty(16, FaultPlan::mixed(3, 0.8).with_max_consecutive(0));
        for u in 0..300u32 {
            let _ = f.fetch_connections(UserId(u % 50));
            let _ = f.fetch_search(kw, window);
        }
        let counts = f.injected();
        assert!(counts.transient > 0);
        assert!(counts.rate_limited > 0);
        assert!(counts.timeout > 0);
        assert!(counts.truncated > 0);
    }
}
