// ma-lint: allow-file(panic-safety) reason="scenario assembly indexes spec tables it just built"
//! Preset worlds reproducing the paper's evaluation setting.
//!
//! The paper's ground truth covers Jan 1 – Oct 31, 2013 (303 days) and a
//! keyword mix with three temporal shapes (Fig. 7): perpetually popular
//! ("new york"), low frequency with occasional spikes ("privacy"), and
//! medium frequency with one singular event ("boston", Apr 15, 2013 —
//! day 104 of the year). The remaining Table 2/3 keywords (fiscalcliff,
//! super bowl, obamacare, tunisia, simvastatin, oprah winfrey, $wmt,
//! lipitor, tahrir) span popular-to-obscure. [`twitter_2013`] builds a
//! synthetic world with those shapes; [`google_plus_2013`] and
//! [`tumblr_2013`] re-skin it with platform-appropriate profile and graph
//! parameters (e.g. gender disclosure on Google+, heavier reblogging on
//! Tumblr).

use crate::cascade::{simulate, CascadeConfig, CommunityAffinity, Spike};
use crate::gen::{community_preferential, CommunityGraphConfig};
use crate::ids::KeywordId;
use crate::platform::{Platform, PlatformBuilder};
use crate::time::{Duration, TimeWindow, Timestamp};
use crate::user::generate_profile;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// How large a world to build. Experiment runtime scales roughly linearly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// ~2 000 users — unit/integration tests.
    Tiny,
    /// ~10 000 users — quick experiments.
    Small,
    /// ~40 000 users — the default for benchmark figures.
    Medium,
    /// ~120 000 users — stress runs.
    Large,
}

impl Scale {
    /// Number of users at this scale.
    pub fn users(self) -> usize {
        match self {
            Scale::Tiny => 2_000,
            Scale::Small => 10_000,
            Scale::Medium => 40_000,
            Scale::Large => 120_000,
        }
    }

    /// Multiplier applied to seed counts and background rates so keyword
    /// selectivity stays roughly constant across scales.
    fn factor(self) -> f64 {
        self.users() as f64 / 40_000.0
    }
}

/// The temporal shape of one scenario keyword.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KeywordSpec {
    /// Canonical keyword text.
    pub name: &'static str,
    /// Spontaneous seeds at day 0 (pre-scaling).
    pub initial_seeds: usize,
    /// Spontaneous adopters per day (pre-scaling).
    pub background_per_day: f64,
    /// Per-exposure adoption probability.
    pub adoption_prob: f64,
    /// Event days and burst sizes (pre-scaling).
    pub spike_days: Vec<(i64, usize)>,
    /// Fraction of communities that ever care about this keyword (the
    /// community-affinity footprint; popular terms touch many clusters,
    /// obscure ones a handful).
    pub affinity: f64,
}

/// The standard keyword mix (shapes mirror Fig. 7 and Tables 2–3).
pub fn standard_keywords() -> Vec<KeywordSpec> {
    vec![
        KeywordSpec {
            name: "privacy",
            initial_seeds: 3,
            background_per_day: 0.8,
            adoption_prob: 0.180,
            // Snowden leak becomes public in June (day ~156), echo in Oct.
            affinity: 0.080,
            spike_days: vec![(156, 60), (275, 25)],
        },
        KeywordSpec {
            name: "new york",
            initial_seeds: 40,
            background_per_day: 6.0,
            adoption_prob: 0.160,
            affinity: 0.350,
            spike_days: vec![],
        },
        KeywordSpec {
            name: "boston",
            initial_seeds: 6,
            background_per_day: 1.2,
            adoption_prob: 0.180,
            // Marathon bombing, Apr 15 (day 104).
            affinity: 0.175,
            spike_days: vec![(104, 300)],
        },
        KeywordSpec {
            name: "fiscalcliff",
            initial_seeds: 80,
            background_per_day: 0.3,
            adoption_prob: 0.180,
            affinity: 0.140,
            spike_days: vec![],
        },
        KeywordSpec {
            name: "super bowl",
            initial_seeds: 2,
            background_per_day: 0.5,
            adoption_prob: 0.180,
            // Feb 3 (day 33).
            affinity: 0.210,
            spike_days: vec![(33, 250)],
        },
        KeywordSpec {
            name: "obamacare",
            initial_seeds: 8,
            background_per_day: 1.0,
            adoption_prob: 0.180,
            // Exchange launch, Oct 1 (day 273).
            affinity: 0.140,
            spike_days: vec![(273, 120)],
        },
        KeywordSpec {
            name: "oprah winfrey",
            initial_seeds: 4,
            background_per_day: 0.8,
            adoption_prob: 0.160,
            affinity: 0.084,
            spike_days: vec![],
        },
        KeywordSpec {
            name: "tunisia",
            initial_seeds: 2,
            background_per_day: 0.25,
            adoption_prob: 0.160,
            affinity: 0.042,
            spike_days: vec![(205, 30)],
        },
        KeywordSpec {
            name: "simvastatin",
            initial_seeds: 1,
            background_per_day: 0.2,
            adoption_prob: 0.140,
            affinity: 0.030,
            spike_days: vec![],
        },
        KeywordSpec {
            name: "$wmt",
            initial_seeds: 2,
            background_per_day: 0.25,
            adoption_prob: 0.150,
            affinity: 0.035,
            spike_days: vec![],
        },
        KeywordSpec {
            name: "lipitor",
            initial_seeds: 1,
            background_per_day: 0.2,
            adoption_prob: 0.140,
            affinity: 0.030,
            spike_days: vec![],
        },
        KeywordSpec {
            name: "tahrir",
            initial_seeds: 2,
            background_per_day: 0.25,
            adoption_prob: 0.170,
            // Egyptian coup, Jul 3 (day 183).
            affinity: 0.042,
            spike_days: vec![(183, 80)],
        },
    ]
}

/// Full configuration of a scenario world.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// World size.
    pub scale: Scale,
    /// Master RNG seed; everything is deterministic given it.
    pub seed: u64,
    /// Keyword mix.
    pub keywords: Vec<KeywordSpec>,
    /// Mean keyword-free posts per user over the whole window.
    pub chatter_mean: f64,
    /// Gender disclosure rate on profiles.
    pub gender_disclosure: f64,
    /// Social-graph shape.
    pub graph: CommunityGraphConfig,
}

impl ScenarioConfig {
    /// Twitter-flavoured defaults at the given scale.
    pub fn twitter(scale: Scale, seed: u64) -> Self {
        ScenarioConfig {
            scale,
            seed,
            keywords: standard_keywords(),
            chatter_mean: 25.0,
            gender_disclosure: 0.05,
            graph: CommunityGraphConfig {
                nodes: scale.users(),
                // Small, dense interest clusters (tens of users): one
                // cascade burst sweeps roughly one community within
                // hours, which is what makes same-level co-adopters share
                // many neighbors (Table 2's intra/inter contrast).
                communities: (scale.users() / 50).max(8),
                intra_prob: 0.72,
                reciprocity: 0.25,
                mean_out_degree: 18.0,
                pareto_alpha: 2.2,
                max_out_degree: 4_000,
                triadic_closure: 0.45,
            },
        }
    }

    /// Google+-flavoured: sparser activity graph (we connect users who
    /// interacted in the last year, per §6.1), high gender disclosure.
    pub fn google_plus(scale: Scale, seed: u64) -> Self {
        let mut cfg = Self::twitter(scale, seed ^ 0x9e37_79b9);
        cfg.gender_disclosure = 0.85;
        cfg.chatter_mean = 12.0;
        cfg.graph.mean_out_degree = 16.0;
        cfg.graph.reciprocity = 0.55;
        cfg
    }

    /// Tumblr-flavoured: blog follows with heavy reblogging (higher repeat
    /// posting, more likes).
    pub fn tumblr(scale: Scale, seed: u64) -> Self {
        let mut cfg = Self::twitter(scale, seed ^ 0x51ed_270b);
        cfg.gender_disclosure = 0.25;
        cfg.chatter_mean = 35.0;
        cfg.graph.mean_out_degree = 24.0;
        cfg.graph.intra_prob = 0.78;
        cfg
    }
}

/// A built world: the platform plus the keyword mix it was built with.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The platform, clock set to Oct 31 2013 (day 303).
    pub platform: Platform,
    /// Keyword ids in the platform catalog, parallel to `specs`.
    pub keyword_ids: Vec<KeywordId>,
    /// The generating specs.
    pub specs: Vec<KeywordSpec>,
    /// The ground-truth window (Jan 1 – Oct 31, 2013).
    pub window: TimeWindow,
}

impl Scenario {
    /// Looks up a scenario keyword id by name.
    pub fn keyword(&self, name: &str) -> Option<KeywordId> {
        self.platform.keywords().get(name)
    }
}

/// The evaluation window: Jan 1 00:00 – Oct 31 24:00, 2013 (303 days).
pub fn evaluation_window() -> TimeWindow {
    TimeWindow::new(Timestamp::EPOCH, Timestamp::at_day(303))
}

/// Builds a world from `cfg`.
pub fn build_scenario(cfg: &ScenarioConfig) -> Scenario {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let window = evaluation_window();
    let now = window.end;
    let (graph, labels) = community_preferential(&mut rng, &cfg.graph);
    let users = (0..cfg.graph.nodes)
        .map(|_| generate_profile(&mut rng, cfg.gender_disclosure, window.start))
        .collect();
    let mut builder = PlatformBuilder::new(graph, users, now).with_communities(labels);

    let factor = cfg.scale.factor();
    let scaled = |x: usize| ((x as f64 * factor).round() as usize).max(1);
    let mut keyword_ids = Vec::with_capacity(cfg.keywords.len());
    for (i, spec) in cfg.keywords.iter().enumerate() {
        let kw = builder.intern_keyword(spec.name);
        keyword_ids.push(kw);
        // Independent stream per keyword so cascades do not interact.
        let mut kw_rng = ChaCha8Rng::seed_from_u64(cfg.seed.wrapping_add(0xC0FFEE + i as u64));
        let labels = builder
            .communities()
            .expect("scenario keeps community labels")
            .to_vec();
        let affinity = build_affinity(
            &mut kw_rng,
            builder.graph(),
            &labels,
            cfg.graph.communities,
            spec,
            window,
        );
        let cascade = CascadeConfig {
            keyword: kw,
            window,
            initial_seeds: scaled(spec.initial_seeds),
            adoption_prob: spec.adoption_prob,
            attention_ref: 20.0,
            delay: Default::default(),
            // Floor keeps obscure keywords alive at small scales so the
            // search API can always seed a walk (as on the real platform,
            // where even "simvastatin" shows up weekly).
            background_rate_per_day: (spec.background_per_day * factor).max(0.15),
            // Spikes scale sub-linearly (√factor): a news event must stand
            // out against the background even in small worlds.
            spikes: spec
                .spike_days
                .iter()
                .map(|&(day, seeds)| Spike {
                    time: Timestamp::at_day(day),
                    seeds: ((seeds as f64 * factor.sqrt()).round() as usize).max(1),
                })
                .collect(),
            repeat_post_prob: 0.5,
            repeat_gap_mean: Duration::days(6),
            affinity: Some(affinity),
        };
        let mut outcome = simulate(&mut kw_rng, builder.graph(), &cascade);
        crate::cascade::ensure_recent_activity(
            &mut kw_rng,
            builder.graph(),
            &cascade,
            &mut outcome,
        );
        builder.add_cascade(outcome);
    }
    let mut chatter_rng = ChaCha8Rng::seed_from_u64(rng.gen());
    builder.add_chatter(&mut chatter_rng, cfg.chatter_mean, window);
    Scenario {
        platform: builder.build(),
        keyword_ids,
        specs: cfg.keywords.clone(),
        window,
    }
}

/// Samples the keyword's community-affinity structure: which communities
/// care, and when each discovers the term.
///
/// * **Homophilous footprint.** The eligible communities are grown as a
///   connected cluster over the *community adjacency graph* (weighted by
///   inter-community arcs): topically-related interest clusters are
///   socially close, which is what gives bursts the inter-burst edges the
///   level-by-level walk travels on. A uniformly random footprint leaves
///   the bursts near-disconnected.
/// * **Onsets.** Spiky keywords wake 60% of their footprint exactly at an
///   event; a handful of communities make scheduled "spontaneous
///   discoveries" at uniform times; one community is guaranteed to onset
///   in the final days so the week-limited search API always sees a fresh
///   bottom-level burst (the paper's "users returned by the search API"
///   seed assumption). Everything else onsets through contagion.
fn build_affinity<R: Rng>(
    rng: &mut R,
    graph: &microblog_graph::DirectedGraph,
    labels: &[u32],
    communities: usize,
    spec: &KeywordSpec,
    window: TimeWindow,
) -> CommunityAffinity {
    let affine_count =
        ((communities as f64 * spec.affinity).round() as usize).clamp(2, communities);

    // Community adjacency weights from inter-community arcs.
    let mut weight: std::collections::HashMap<(u32, u32), u32> = std::collections::HashMap::new();
    for u in 0..graph.node_count() as u32 {
        let cu = labels[u as usize];
        for &v in graph.followees(u) {
            let cv = labels[v as usize];
            if cu != cv {
                let key = if cu < cv { (cu, cv) } else { (cv, cu) };
                *weight.entry(key).or_insert(0) += 1;
            }
        }
    }
    // Weighted flood: grow the footprint along strong community links.
    let mut eligible = vec![false; communities];
    let start = rng.gen_range(0..communities);
    eligible[start] = true;
    let mut chosen = vec![start];
    while chosen.len() < affine_count {
        let mut candidates: Vec<(usize, f64)> = (0..communities)
            .filter(|&c| !eligible[c])
            .map(|c| {
                let w: u32 = chosen
                    .iter()
                    .map(|&e| {
                        let key = if (c as u32) < (e as u32) {
                            (c as u32, e as u32)
                        } else {
                            (e as u32, c as u32)
                        };
                        weight.get(&key).copied().unwrap_or(0)
                    })
                    .sum();
                (c, w as f64)
            })
            .collect();
        let total: f64 = candidates.iter().map(|x| x.1).sum();
        let pick = if total <= 0.0 {
            candidates[rng.gen_range(0..candidates.len())].0
        } else {
            let mut x = rng.gen::<f64>() * total;
            let mut pick = candidates[0].0;
            for &(c, w) in &candidates {
                if x < w {
                    pick = c;
                    break;
                }
                x -= w;
            }
            pick
        };
        candidates.clear();
        eligible[pick] = true;
        chosen.push(pick);
    }

    let span = window.length().0.max(1);
    let mut onset = vec![None; communities];
    // Spikes wake 60% of the footprint (spiky keywords only).
    if !spec.spike_days.is_empty() {
        for (rank, &c) in chosen.iter().enumerate() {
            if rank * 10 >= chosen.len() * 4 {
                let (day, _) = spec.spike_days[rng.gen_range(0..spec.spike_days.len())];
                onset[c] = Some(Timestamp::at_day(day));
            }
        }
    }
    // Scheduled spontaneous discoveries: a trickle across the window.
    let discoveries = (chosen.len() / 6).clamp(2, 10);
    for _ in 0..discoveries {
        let c = chosen[rng.gen_range(0..chosen.len())];
        if onset[c].is_none() {
            onset[c] = Some(window.start + Duration(rng.gen_range(0..span)));
        }
    }
    // Guaranteed fresh bottom-level burst inside the final search week —
    // a *re-ignition* of an already-onset community where possible, so the
    // recent burst connects upward through its community's older adopters.
    let recent_at = window.end - Duration::days(3) - Duration(rng.gen_range(0..Duration::DAY.0));
    let mut extra_onsets = Vec::new();
    match chosen.iter().find(|&&c| onset[c].is_some()) {
        Some(&c) => extra_onsets.push((c as u32, recent_at)),
        None => onset[chosen[0]] = Some(recent_at),
    }

    CommunityAffinity {
        labels: labels.to_vec(),
        eligible,
        onset,
        off_affinity_factor: 0.01,
        interest_decay: Duration::hours(36),
        onset_contagion: 0.12,
        ignition_lag_mean: Duration::days(4),
        extra_onsets,
        reignition_cooldown: Duration::days(18),
    }
}

/// Convenience: the Twitter world.
pub fn twitter_2013(scale: Scale, seed: u64) -> Scenario {
    build_scenario(&ScenarioConfig::twitter(scale, seed))
}

/// Convenience: the Google+ world.
pub fn google_plus_2013(scale: Scale, seed: u64) -> Scenario {
    build_scenario(&ScenarioConfig::google_plus(scale, seed))
}

/// Convenience: the Tumblr world.
pub fn tumblr_2013(scale: Scale, seed: u64) -> Scenario {
    build_scenario(&ScenarioConfig::tumblr(scale, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::{exact_count, Condition};

    #[test]
    fn tiny_world_has_expected_shape() {
        let s = twitter_2013(Scale::Tiny, 42);
        assert_eq!(s.platform.user_count(), 2_000);
        assert_eq!(s.keyword_ids.len(), standard_keywords().len());
        assert!(
            s.platform.post_count() > 10_000,
            "posts: {}",
            s.platform.post_count()
        );
        // The popular keyword reaches more users than the obscure one.
        let ny = exact_count(
            &s.platform,
            &Condition::keyword(s.keyword("new york").unwrap()),
        );
        let simva = exact_count(
            &s.platform,
            &Condition::keyword(s.keyword("simvastatin").unwrap()),
        );
        assert!(ny > simva, "new york {ny} vs simvastatin {simva}");
        assert!(simva > 0.0, "even obscure keywords must appear");
        // Keyword selectivity stays small (the paper's premise).
        assert!(ny / 2_000.0 < 0.6, "new york too broad: {ny}");
    }

    #[test]
    fn boston_spike_dominates_its_timeline() {
        let s = twitter_2013(Scale::Tiny, 7);
        let kw = s.keyword("boston").unwrap();
        // Weekly adoption rate in the two spike weeks must beat the
        // average pre-spike weekly rate by a wide margin.
        let before = exact_count(
            &s.platform,
            &Condition::keyword(kw)
                .in_window(TimeWindow::new(Timestamp::EPOCH, Timestamp::at_day(104))),
        );
        let during = exact_count(
            &s.platform,
            &Condition::keyword(kw).in_window(TimeWindow::new(
                Timestamp::at_day(104),
                Timestamp::at_day(118),
            )),
        );
        let pre_weekly = before / (104.0 / 7.0);
        let spike_weekly = during / 2.0;
        assert!(
            spike_weekly > 2.0 * pre_weekly,
            "spike weekly {spike_weekly} <= 2x pre-spike weekly {pre_weekly}"
        );
    }

    #[test]
    fn recent_posts_exist_for_search_seeding() {
        // The search API only sees the last week; every keyword must have
        // recent posts or walks cannot be seeded.
        let s = twitter_2013(Scale::Tiny, 9);
        let last_week = TimeWindow::trailing(s.platform.now(), Duration::WEEK);
        for (spec, &kw) in s.specs.iter().zip(&s.keyword_ids) {
            let hits = s.platform.search_posts(kw, last_week);
            assert!(!hits.is_empty(), "no recent posts for {}", spec.name);
        }
    }

    #[test]
    fn scenarios_are_deterministic() {
        let a = twitter_2013(Scale::Tiny, 5);
        let b = twitter_2013(Scale::Tiny, 5);
        assert_eq!(a.platform.post_count(), b.platform.post_count());
        let kw_a = a.keyword("privacy").unwrap();
        let kw_b = b.keyword("privacy").unwrap();
        assert_eq!(
            exact_count(&a.platform, &Condition::keyword(kw_a)),
            exact_count(&b.platform, &Condition::keyword(kw_b))
        );
    }

    #[test]
    fn platform_flavours_differ() {
        let g = google_plus_2013(Scale::Tiny, 3);
        let t = twitter_2013(Scale::Tiny, 3);
        // Google+ disclosure is high, Twitter's near zero.
        let disclosed = |s: &Scenario| {
            (0..s.platform.user_count() as u32)
                .filter(|&u| {
                    s.platform.profile(crate::UserId(u)).gender != crate::Gender::Undisclosed
                })
                .count()
        };
        assert!(disclosed(&g) > 5 * disclosed(&t).max(1));
    }
}
