//! Strongly-typed identifiers for platform entities.

use serde::{Deserialize, Serialize};

/// Identifier of a user account. Dense: `0..user_count`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UserId(pub u32);

/// Identifier of a post. Dense: `0..post_count`, ordered by creation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PostId(pub u32);

/// Interned keyword (hashtag / term) identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct KeywordId(pub u16);

impl UserId {
    /// The raw index, for adjacency lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PostId {
    /// The raw index into the platform's post table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl KeywordId {
    /// The raw index into the keyword catalog.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl std::fmt::Display for PostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_order_and_display() {
        assert!(UserId(3) < UserId(10));
        assert_eq!(UserId(7).index(), 7);
        assert_eq!(PostId(2).index(), 2);
        assert_eq!(KeywordId(1).index(), 1);
        assert_eq!(UserId(7).to_string(), "u7");
        assert_eq!(PostId(9).to_string(), "p9");
    }
}
