//! Aggregate metrics `f(u)` and profile predicates.
//!
//! The paper's aggregates have the form `AGGR(f(u))` where `f` is a numeric
//! per-user measure. [`UserMetric`] enumerates the measures used in the
//! evaluation (number of followers, display-name length, keyword-post
//! counts and likes), and [`evaluate_metric`] computes them from exactly
//! the data a USER TIMELINE query exposes — profile, connection counts and
//! visible posts — so the estimator side can never peek beyond the API.

use crate::ids::KeywordId;
use crate::post::Post;
use crate::time::TimeWindow;
use crate::user::{Gender, UserProfile};
use serde::{Deserialize, Serialize};

/// A numeric per-user measure `f(u)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UserMetric {
    /// Number of followers (Fig. 2, 8, 9 — the high-variance metric).
    FollowerCount,
    /// Number of followees.
    FolloweeCount,
    /// Display-name length in characters (Fig. 11, 12 — low variance).
    DisplayNameLength,
    /// Constant 1 — turns SUM into COUNT of users.
    One,
    /// Number of visible posts mentioning the query keyword (in-window);
    /// SUM of this is the COUNT of matching *posts*.
    KeywordPostCount,
    /// Total likes on visible keyword posts (in-window); the Tumblr
    /// experiment (Fig. 14) is SUM(likes)/SUM(posts).
    KeywordPostLikes,
    /// Number of visible posts of any kind.
    TotalPostCount,
    /// Account age in days at the scenario epoch.
    AccountAgeDays,
    /// Self-reported age in years (0.0 when undisclosed; combine with
    /// [`ProfilePredicate::AgeDisclosed`] for meaningful averages).
    AgeYears,
}

/// The data available about one user after a USER TIMELINE query.
#[derive(Clone, Copy, Debug)]
pub struct MetricInputs<'a> {
    /// Profile returned with the timeline.
    pub profile: &'a UserProfile,
    /// Follower count as reported on the profile.
    pub follower_count: usize,
    /// Followee count as reported on the profile.
    pub followee_count: usize,
    /// Visible posts, most recent first (possibly truncated by the
    /// platform's timeline cap, e.g. 3200 on Twitter).
    pub posts: &'a [Post],
}

/// Evaluates `metric` for a user. `keyword`/`window` scope the
/// keyword-dependent metrics; when `window` is `None` all visible posts
/// qualify.
pub fn evaluate_metric(
    metric: UserMetric,
    inputs: &MetricInputs<'_>,
    keyword: Option<KeywordId>,
    window: Option<TimeWindow>,
) -> f64 {
    let in_window = |p: &Post| window.is_none_or(|w| w.contains(p.time));
    match metric {
        UserMetric::FollowerCount => inputs.follower_count as f64,
        UserMetric::FolloweeCount => inputs.followee_count as f64,
        UserMetric::DisplayNameLength => inputs.profile.display_name_len() as f64,
        UserMetric::One => 1.0,
        UserMetric::KeywordPostCount => match keyword {
            Some(kw) => inputs
                .posts
                .iter()
                .filter(|p| p.mentions(kw) && in_window(p))
                .count() as f64,
            None => 0.0,
        },
        UserMetric::KeywordPostLikes => match keyword {
            Some(kw) => inputs
                .posts
                .iter()
                .filter(|p| p.mentions(kw) && in_window(p))
                .map(|p| p.likes as f64)
                .sum(),
            None => 0.0,
        },
        UserMetric::TotalPostCount => inputs.posts.len() as f64,
        UserMetric::AccountAgeDays => {
            (-inputs.profile.joined.0) as f64 / crate::time::Duration::DAY.0 as f64
        }
        UserMetric::AgeYears => inputs.profile.age.map_or(0.0, |a| a as f64),
    }
}

/// A selection predicate over profile attributes (the CONDITION clause
/// beyond the keyword and time window).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ProfilePredicate {
    /// Profile gender equals the given value (Fig. 13: COUNT of male users).
    GenderIs(Gender),
    /// Profile region equals the given bucket.
    RegionIs(u8),
    /// Follower count at least this large.
    MinFollowers(usize),
    /// Follower count below this bound.
    MaxFollowers(usize),
    /// Profile discloses an age.
    AgeDisclosed,
    /// Disclosed age at least this (undisclosed never matches).
    MinAge(u8),
}

impl ProfilePredicate {
    /// Whether the user satisfies the predicate.
    pub fn matches(&self, profile: &UserProfile, follower_count: usize) -> bool {
        match *self {
            ProfilePredicate::GenderIs(g) => profile.gender == g,
            ProfilePredicate::RegionIs(r) => profile.region == r,
            ProfilePredicate::MinFollowers(k) => follower_count >= k,
            ProfilePredicate::MaxFollowers(k) => follower_count < k,
            ProfilePredicate::AgeDisclosed => profile.age.is_some(),
            ProfilePredicate::MinAge(a) => profile.age.is_some_and(|x| x >= a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{PostId, UserId};
    use crate::time::Timestamp;

    fn profile() -> UserProfile {
        UserProfile {
            display_name: "Ana Belle".into(),
            gender: Gender::Female,
            region: 3,
            age: Some(27),
            joined: Timestamp(-86_400 * 10),
        }
    }

    fn post(t: i64, kws: &[u16], likes: u32) -> Post {
        Post {
            id: PostId(0),
            author: UserId(0),
            time: Timestamp(t),
            keywords: kws.iter().map(|&k| KeywordId(k)).collect(),
            likes,
            chars: 80,
            is_repost: false,
        }
    }

    #[test]
    fn metrics_from_profile() {
        let p = profile();
        let posts = [post(5, &[1], 3)];
        let inputs = MetricInputs {
            profile: &p,
            follower_count: 7,
            followee_count: 4,
            posts: &posts,
        };
        assert_eq!(
            evaluate_metric(UserMetric::FollowerCount, &inputs, None, None),
            7.0
        );
        assert_eq!(
            evaluate_metric(UserMetric::FolloweeCount, &inputs, None, None),
            4.0
        );
        assert_eq!(
            evaluate_metric(UserMetric::DisplayNameLength, &inputs, None, None),
            9.0
        );
        assert_eq!(evaluate_metric(UserMetric::One, &inputs, None, None), 1.0);
        assert_eq!(
            evaluate_metric(UserMetric::TotalPostCount, &inputs, None, None),
            1.0
        );
        assert_eq!(
            evaluate_metric(UserMetric::AccountAgeDays, &inputs, None, None),
            10.0
        );
    }

    #[test]
    fn keyword_metrics_respect_window() {
        let p = profile();
        let posts = [
            post(5, &[1], 3),
            post(50, &[1, 2], 10),
            post(500, &[1], 100),
        ];
        let inputs = MetricInputs {
            profile: &p,
            follower_count: 0,
            followee_count: 0,
            posts: &posts,
        };
        let kw = Some(KeywordId(1));
        let w = Some(TimeWindow::new(Timestamp(0), Timestamp(100)));
        assert_eq!(
            evaluate_metric(UserMetric::KeywordPostCount, &inputs, kw, w),
            2.0
        );
        assert_eq!(
            evaluate_metric(UserMetric::KeywordPostLikes, &inputs, kw, w),
            13.0
        );
        // No window: all three count.
        assert_eq!(
            evaluate_metric(UserMetric::KeywordPostCount, &inputs, kw, None),
            3.0
        );
        // Wrong keyword.
        assert_eq!(
            evaluate_metric(
                UserMetric::KeywordPostCount,
                &inputs,
                Some(KeywordId(9)),
                None
            ),
            0.0
        );
        // Keyword metric without keyword is zero.
        assert_eq!(
            evaluate_metric(UserMetric::KeywordPostCount, &inputs, None, None),
            0.0
        );
    }

    #[test]
    fn predicates() {
        let p = profile();
        assert!(ProfilePredicate::GenderIs(Gender::Female).matches(&p, 0));
        assert!(!ProfilePredicate::GenderIs(Gender::Male).matches(&p, 0));
        assert!(ProfilePredicate::RegionIs(3).matches(&p, 0));
        assert!(!ProfilePredicate::RegionIs(4).matches(&p, 0));
        assert!(ProfilePredicate::MinFollowers(5).matches(&p, 5));
        assert!(!ProfilePredicate::MinFollowers(5).matches(&p, 4));
        assert!(ProfilePredicate::MaxFollowers(5).matches(&p, 4));
        assert!(!ProfilePredicate::MaxFollowers(5).matches(&p, 5));
        assert!(ProfilePredicate::AgeDisclosed.matches(&p, 0));
        assert!(ProfilePredicate::MinAge(27).matches(&p, 0));
        assert!(!ProfilePredicate::MinAge(28).matches(&p, 0));
        let mut anon = p.clone();
        anon.age = None;
        assert!(!ProfilePredicate::AgeDisclosed.matches(&anon, 0));
        assert!(!ProfilePredicate::MinAge(1).matches(&anon, 0));
    }

    #[test]
    fn age_metric() {
        let p = profile();
        let inputs = MetricInputs {
            profile: &p,
            follower_count: 0,
            followee_count: 0,
            posts: &[],
        };
        assert_eq!(
            evaluate_metric(UserMetric::AgeYears, &inputs, None, None),
            27.0
        );
        let mut anon = p.clone();
        anon.age = None;
        let inputs = MetricInputs {
            profile: &anon,
            follower_count: 0,
            followee_count: 0,
            posts: &[],
        };
        assert_eq!(
            evaluate_metric(UserMetric::AgeYears, &inputs, None, None),
            0.0
        );
    }
}
