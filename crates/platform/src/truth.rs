//! Exact ground truth for aggregate queries.
//!
//! The paper collected ground truth through the Streaming API (§3.2); here
//! the simulator *is* the full dataset, so exact answers are a scan over
//! the platform indexes. Estimators are scored by relative error against
//! these values.

use crate::ids::{KeywordId, UserId};
use crate::metric::{evaluate_metric, MetricInputs, ProfilePredicate, UserMetric};
use crate::platform::Platform;
use crate::post::Post;
use crate::time::TimeWindow;

/// The selection condition of an aggregate: keyword, optional window,
/// optional profile predicates.
#[derive(Clone, Debug)]
pub struct Condition {
    /// The keyword predicate (always present — see §2: "we focus on
    /// aggregate queries with at least one keyword predicate").
    pub keyword: KeywordId,
    /// Optional time window on the qualifying posts.
    pub window: Option<TimeWindow>,
    /// Additional profile predicates (ANDed).
    pub predicates: Vec<ProfilePredicate>,
}

impl Condition {
    /// Condition with only a keyword.
    pub fn keyword(kw: KeywordId) -> Self {
        Condition {
            keyword: kw,
            window: None,
            predicates: Vec::new(),
        }
    }

    /// Adds a time window.
    pub fn in_window(mut self, w: TimeWindow) -> Self {
        self.window = Some(w);
        self
    }

    /// Adds a profile predicate.
    pub fn with_predicate(mut self, p: ProfilePredicate) -> Self {
        self.predicates.push(p);
        self
    }

    /// The window used for matching: the explicit one, or all time.
    pub fn effective_window(&self, platform: &Platform) -> TimeWindow {
        self.window.unwrap_or_else(|| {
            TimeWindow::new(crate::time::Timestamp(i64::MIN / 2), platform.now())
        })
    }
}

/// Users satisfying `cond` (keyword mention inside the window plus all
/// profile predicates), in ascending id order.
pub fn matching_users(platform: &Platform, cond: &Condition) -> Vec<UserId> {
    let window = cond.effective_window(platform);
    let mut users: Vec<UserId> = platform
        .search_posts(cond.keyword, window)
        .iter()
        .map(|&p| platform.post(p).author)
        .collect();
    users.sort_unstable();
    users.dedup();
    users.retain(|&u| {
        let profile = platform.profile(u);
        let fc = platform.followers(u).len();
        cond.predicates.iter().all(|p| p.matches(profile, fc))
    });
    users
}

/// Exact metric value for one user under `cond`'s keyword/window scope,
/// computed from the user's full timeline.
pub fn metric_value(platform: &Platform, u: UserId, metric: UserMetric, cond: &Condition) -> f64 {
    let posts: Vec<Post> = platform
        .timeline(u)
        .iter()
        .map(|&p| platform.post(p).clone())
        .collect();
    let inputs = MetricInputs {
        profile: platform.profile(u),
        follower_count: platform.followers(u).len(),
        followee_count: platform.followees(u).len(),
        posts: &posts,
    };
    evaluate_metric(
        metric,
        &inputs,
        Some(cond.keyword),
        Some(cond.effective_window(platform)),
    )
}

/// Exact COUNT of users satisfying `cond`.
pub fn exact_count(platform: &Platform, cond: &Condition) -> f64 {
    matching_users(platform, cond).len() as f64
}

/// Exact SUM of `metric` over users satisfying `cond`.
pub fn exact_sum(platform: &Platform, cond: &Condition, metric: UserMetric) -> f64 {
    matching_users(platform, cond)
        .iter()
        .map(|&u| metric_value(platform, u, metric, cond))
        .sum()
}

/// Exact AVG of `metric` over users satisfying `cond`; `None` when no user
/// matches.
pub fn exact_avg(platform: &Platform, cond: &Condition, metric: UserMetric) -> Option<f64> {
    let users = matching_users(platform, cond);
    if users.is_empty() {
        return None;
    }
    let sum: f64 = users
        .iter()
        .map(|&u| metric_value(platform, u, metric, cond))
        .sum();
    Some(sum / users.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cascade::{simulate, CascadeConfig};
    use crate::gen::{community_preferential, CommunityGraphConfig};
    use crate::time::Timestamp;
    use crate::user::{generate_profile, Gender};
    use crate::PlatformBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn build(seed: u64) -> Platform {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cfg = CommunityGraphConfig {
            nodes: 1_200,
            communities: 6,
            ..Default::default()
        };
        let (graph, _) = community_preferential(&mut rng, &cfg);
        let users = (0..1_200)
            .map(|_| generate_profile(&mut rng, 0.9, Timestamp::EPOCH))
            .collect();
        let now = Timestamp::at_day(90);
        let mut b = PlatformBuilder::new(graph, users, now);
        let kw = b.intern_keyword("privacy");
        let window = TimeWindow::new(Timestamp::EPOCH, now);
        let outcome = simulate(&mut rng, b.graph(), &CascadeConfig::new(kw, window));
        b.add_cascade(outcome);
        b.add_chatter(&mut rng, 3.0, window);
        b.build()
    }

    #[test]
    fn matching_users_agree_with_first_mention() {
        let p = build(1);
        let kw = p.keywords().get("privacy").unwrap();
        let cond = Condition::keyword(kw);
        let window = cond.effective_window(&p);
        let matched = matching_users(&p, &cond);
        assert!(!matched.is_empty());
        for &u in &matched {
            assert!(p.first_mention(u, kw, window).is_some());
        }
        let matched_set: std::collections::HashSet<_> = matched.iter().copied().collect();
        for u in 0..p.user_count() as u32 {
            let u = UserId(u);
            assert_eq!(
                p.first_mention(u, kw, window).is_some(),
                matched_set.contains(&u)
            );
        }
    }

    #[test]
    fn window_narrows_matches() {
        let p = build(2);
        let kw = p.keywords().get("privacy").unwrap();
        let all = exact_count(&p, &Condition::keyword(kw));
        let narrow = exact_count(
            &p,
            &Condition::keyword(kw).in_window(TimeWindow::new(
                Timestamp::at_day(40),
                Timestamp::at_day(45),
            )),
        );
        assert!(narrow <= all);
        assert!(narrow > 0.0, "cascade should be active mid-window");
    }

    #[test]
    fn predicates_partition_count() {
        let p = build(3);
        let kw = p.keywords().get("privacy").unwrap();
        let total = exact_count(&p, &Condition::keyword(kw));
        let male = exact_count(
            &p,
            &Condition::keyword(kw).with_predicate(ProfilePredicate::GenderIs(Gender::Male)),
        );
        let female = exact_count(
            &p,
            &Condition::keyword(kw).with_predicate(ProfilePredicate::GenderIs(Gender::Female)),
        );
        let undisclosed = exact_count(
            &p,
            &Condition::keyword(kw).with_predicate(ProfilePredicate::GenderIs(Gender::Undisclosed)),
        );
        assert_eq!(male + female + undisclosed, total);
    }

    #[test]
    fn sum_and_avg_consistent() {
        let p = build(4);
        let kw = p.keywords().get("privacy").unwrap();
        let cond = Condition::keyword(kw);
        let count = exact_count(&p, &cond);
        let sum = exact_sum(&p, &cond, UserMetric::FollowerCount);
        let avg = exact_avg(&p, &cond, UserMetric::FollowerCount).unwrap();
        assert!((avg - sum / count).abs() < 1e-9);
        // SUM(One) == COUNT.
        assert_eq!(exact_sum(&p, &cond, UserMetric::One), count);
        // No matching users → None.
        let mut cat_kw = None;
        for id in 0..p.keywords().len() as u16 {
            if p.keywords().name(KeywordId(id)) == "nonexistent" {
                cat_kw = Some(KeywordId(id));
            }
        }
        assert!(cat_kw.is_none());
    }

    #[test]
    fn keyword_post_count_sums_posts_not_users() {
        let p = build(5);
        let kw = p.keywords().get("privacy").unwrap();
        let cond = Condition::keyword(kw);
        let posts = exact_sum(&p, &cond, UserMetric::KeywordPostCount);
        let users = exact_count(&p, &cond);
        assert!(
            posts >= users,
            "every matching user has >= 1 qualifying post"
        );
        // Cross-check against the search index.
        let window = cond.effective_window(&p);
        assert_eq!(posts, p.search_posts(kw, window).len() as f64);
    }
}
