//! The backend seam between the platform store and the API crate.
//!
//! [`ApiBackend`] is the narrow interface through which the rate-limited
//! API fetches data. The pristine [`Platform`] implements it infallibly;
//! [`crate::fault::FaultyPlatform`] wraps a platform and injects
//! deterministic failures, so every walker, bench and service test can
//! run against a hostile API without code changes.

use crate::fault::Fault;
use crate::ids::{KeywordId, PostId, UserId};
use crate::platform::Platform;
use crate::time::TimeWindow;

/// The fetch surface the API crate consumes.
///
/// The three fetchers mirror the three API queries of §2 of the paper
/// (search, timeline, connections) and are the *only* calls that can
/// fail: metadata lookups (post payloads, the clock, the keyword catalog)
/// go through [`ApiBackend::store`], which models data the client has
/// already received.
pub trait ApiBackend: std::fmt::Debug + Send + Sync {
    /// The underlying platform store, for payload access and ground truth.
    fn store(&self) -> &Platform;

    /// Posts mentioning `kw` inside `window`, most recent first.
    fn fetch_search(&self, kw: KeywordId, window: TimeWindow) -> Result<Vec<PostId>, Fault>;

    /// Full timeline of `u`, most recent post first.
    fn fetch_timeline(&self, u: UserId) -> Result<&[PostId], Fault>;

    /// Followers and followees of `u`, as sorted id lists.
    fn fetch_connections(&self, u: UserId) -> Result<(&[u32], &[u32]), Fault>;
}

impl ApiBackend for Platform {
    fn store(&self) -> &Platform {
        self
    }

    fn fetch_search(&self, kw: KeywordId, window: TimeWindow) -> Result<Vec<PostId>, Fault> {
        Ok(self.search_posts(kw, window))
    }

    fn fetch_timeline(&self, u: UserId) -> Result<&[PostId], Fault> {
        Ok(self.timeline(u))
    }

    fn fetch_connections(&self, u: UserId) -> Result<(&[u32], &[u32]), Fault> {
        Ok((self.followers(u), self.followees(u)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{twitter_2013, Scale};

    #[test]
    fn pristine_platform_never_faults() {
        let s = twitter_2013(Scale::Tiny, 9);
        let backend: &dyn ApiBackend = &s.platform;
        let kw = s.keyword("privacy").unwrap();
        let hits = backend.fetch_search(kw, s.window).unwrap();
        assert_eq!(hits, s.platform.search_posts(kw, s.window));
        let u = UserId(0);
        assert_eq!(backend.fetch_timeline(u).unwrap(), s.platform.timeline(u));
        let (fols, fees) = backend.fetch_connections(u).unwrap();
        assert_eq!(fols, s.platform.followers(u));
        assert_eq!(fees, s.platform.followees(u));
        assert_eq!(backend.store().now(), s.platform.now());
    }
}
