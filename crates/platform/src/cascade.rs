// ma-lint: allow-file(panic-safety) reason="retweet cascade tables are indexed by ids minted during construction"
//! Event-driven keyword cascade simulation.
//!
//! A cascade models how a term/hashtag propagates through the follower
//! graph: seed users post it, their followers see it and adopt with some
//! probability after a reaction delay, and so on. Two empirical facts the
//! paper leans on are built into the model:
//!
//! * **Bursty intra-community adoption.** Keyword interest is scoped to
//!   communities with per-community onset times ([`CommunityAffinity`]);
//!   reaction delays are a two-mode mixture (same-hours / next-day), so a
//!   community's first mentions concentrate into a burst of a few days.
//!   Same-day co-adopters inside a dense community are what produce the
//!   intra-level edges §4.2 removes; next-day stragglers produce the
//!   adjacent-level edges the level-by-level walk travels on.
//! * **Exogenous events.** Spikes inject fresh spontaneous adopters at a
//!   point in time (e.g. "boston" on Apr 15, 2013), and a small background
//!   rate keeps low-frequency terms like "privacy" alive for months, so
//!   the search API always has recent posts to seed walks from.

use crate::ids::{KeywordId, UserId};
use crate::time::{Duration, TimeWindow, Timestamp};
use microblog_graph::DirectedGraph;
use rand::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reaction-delay mixture.
#[derive(Clone, Copy, Debug)]
pub struct DelayModel {
    /// Probability of a "fast" reaction.
    pub fast_fraction: f64,
    /// Mean of the fast (exponential) mode.
    pub fast_mean: Duration,
    /// Mean of the slow (exponential) mode.
    pub slow_mean: Duration,
}

impl Default for DelayModel {
    /// Adoption (first-mention) reactions: a fast mode for users reacting
    /// within hours and a slow mode around the next day. (Retweets are
    /// much faster — 92% within the hour per the Sysomos statistic the
    /// paper cites — but *adopting a term into one's own posts* is slower;
    /// the mixture below spreads a community's first mentions over ~0–3
    /// days, which is what produces the paper's intra/adjacent/cross-level
    /// edge proportions.)
    fn default() -> Self {
        DelayModel {
            fast_fraction: 0.30,
            fast_mean: Duration::hours(2),
            slow_mean: Duration::hours(34),
        }
    }
}

impl DelayModel {
    /// Samples one reaction delay (always >= 1 second).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Duration {
        let mean = if rng.gen_bool(self.fast_fraction) {
            self.fast_mean
        } else {
            self.slow_mean
        };
        Duration(exp_sample(rng, mean.0 as f64).max(1.0) as i64)
    }
}

/// An exogenous burst of spontaneous adopters (a news event).
#[derive(Clone, Copy, Debug)]
pub struct Spike {
    /// When the event happens.
    pub time: Timestamp,
    /// How many users adopt spontaneously at the event.
    pub seeds: usize,
}

/// Keyword–community affinity: which interest clusters care about the
/// keyword, and *when* each one discovers it.
///
/// This is the ingredient that concentrates a community's first mentions
/// in time. Without it, connected users adopt at independent times and the
/// term-induced subgraph fills with cross-level edges — the paper's
/// Table 2 shows the opposite on real platforms (cross-level edges are
/// 1–3%), because a cluster that cares about a topic starts talking about
/// it in a burst.
#[derive(Clone, Debug)]
pub struct CommunityAffinity {
    /// Per-user community label.
    pub labels: Vec<u32>,
    /// Per-community footprint flag: whether the community can ever care
    /// about this keyword (via a scheduled onset or contagion).
    pub eligible: Vec<bool>,
    /// Per-community *scheduled* onset time (spontaneous discovery / news
    /// event); `None` = the community only onsets through contagion, if at
    /// all.
    pub onset: Vec<Option<Timestamp>>,
    /// Adoption-probability multiplier for exposures landing outside an
    /// affine, already-onset community (e.g. 0.1).
    pub off_affinity_factor: f64,
    /// Interest decay constant: a community's appetite for spontaneous
    /// seeds decays as `exp(−(t − onset)/decay)`. Short decays concentrate
    /// each community's first mentions into a burst of a day or two —
    /// which is why, on real platforms, edges of the term-induced subgraph
    /// overwhelmingly connect same-level or adjacent-level users (Table 2:
    /// only 1–3% cross-level).
    pub interest_decay: Duration,
    /// Onset contagion: when an exposure lands in an eligible community
    /// that has not yet onset, the probability that the exposure *ignites*
    /// the community (onset = now). Contagion chains bursts together —
    /// today's burst is seeded by followers of yesterday's adopters —
    /// which is exactly the connected, level-by-level propagation
    /// structure of the paper's Figure 6. Without it, bursts are isolated
    /// islands and the level walk cannot reach most of the subgraph.
    pub onset_contagion: f64,
    /// Mean of the exponential lag between an igniting exposure and the
    /// ignited community's onset ("the cluster hears about the topic now,
    /// picks it up in a few days") — this paces the burst chain across the
    /// window instead of burning the whole footprint in a week.
    pub ignition_lag_mean: Duration,
    /// Additional scheduled onsets `(community, time)` beyond the first —
    /// topics recur in the clusters that care about them.
    pub extra_onsets: Vec<(u32, Timestamp)>,
    /// Minimum quiet time before a community can be *re-ignited* by
    /// contagion. Re-ignited bursts are gold for the level-by-level walk:
    /// the fresh burst's members neighbor the community's older adopters,
    /// creating the upward cross-level edges that let walks seeded at the
    /// (recent) bottom climb into the historical graph.
    pub reignition_cooldown: Duration,
}

impl CommunityAffinity {
    /// Exposure multiplier for user `u` at time `t`: full strength right
    /// after the user's community onsets, decaying with the burst age
    /// (time constant `4 × interest_decay`), floored at
    /// `off_affinity_factor`; pre-onset and non-affine communities get the
    /// floor. Interest that never decayed would let late cascades re-ignite
    /// long-finished communities, smearing first mentions across months.
    fn factor(&self, onset: &[Option<Timestamp>], u: u32, t: Timestamp) -> f64 {
        let c = self.labels[u as usize] as usize;
        match onset.get(c) {
            Some(Some(onset)) if *onset <= t => {
                let age = (t.0 - onset.0) as f64;
                let tau = 4.0 * self.interest_decay.0.max(1) as f64;
                (-age / tau).exp().max(self.off_affinity_factor)
            }
            _ => self.off_affinity_factor,
        }
    }
}

/// Configuration of one keyword cascade.
#[derive(Clone, Debug)]
pub struct CascadeConfig {
    /// The keyword being propagated.
    pub keyword: KeywordId,
    /// Simulation span; no adoption or post happens outside it.
    pub window: TimeWindow,
    /// Spontaneous adopters at `window.start`.
    pub initial_seeds: usize,
    /// Probability that an exposed follower eventually adopts, for an
    /// author of typical audience size (see `attention_ref`).
    pub adoption_prob: f64,
    /// Attention-dilution reference: the effective per-follower adoption
    /// probability is `adoption_prob · attention_ref / (attention_ref +
    /// #followers(author))`. Mirrors the empirical decline of per-follower
    /// engagement with audience size, and bounds a single post's expected
    /// secondary adoptions by `adoption_prob · attention_ref` — without it
    /// the heavy-tailed follower counts make every cascade supercritical
    /// and keywords stop being selective (the paper's setting needs
    /// keyword predicates matching ~0.4% of users).
    pub attention_ref: f64,
    /// Reaction-delay mixture.
    pub delay: DelayModel,
    /// Spontaneous adopters per simulated day (keeps the term alive).
    pub background_rate_per_day: f64,
    /// Exogenous bursts.
    pub spikes: Vec<Spike>,
    /// After each keyword post, probability of posting the keyword again
    /// later (geometric repeat model).
    pub repeat_post_prob: f64,
    /// Mean gap between repeat posts by the same user.
    pub repeat_gap_mean: Duration,
    /// Optional keyword–community affinity (see [`CommunityAffinity`]).
    pub affinity: Option<CommunityAffinity>,
}

impl CascadeConfig {
    /// A reasonable default cascade for `keyword` over `window`.
    pub fn new(keyword: KeywordId, window: TimeWindow) -> Self {
        CascadeConfig {
            keyword,
            window,
            initial_seeds: 10,
            adoption_prob: 0.05,
            attention_ref: 20.0,
            delay: DelayModel::default(),
            background_rate_per_day: 2.0,
            spikes: Vec::new(),
            repeat_post_prob: 0.35,
            repeat_gap_mean: Duration::days(6),
            affinity: None,
        }
    }
}

/// A post produced by the simulation, before platform id assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PostDraft {
    /// Author.
    pub author: UserId,
    /// Publication time.
    pub time: Timestamp,
    /// Keywords mentioned (sorted, deduplicated by the platform builder).
    pub keywords: Vec<KeywordId>,
    /// Likes accrued.
    pub likes: u32,
    /// Length in characters.
    pub chars: u16,
    /// Repost flag.
    pub is_repost: bool,
}

/// Result of simulating one cascade.
#[derive(Clone, Debug)]
pub struct CascadeOutcome {
    /// The cascaded keyword.
    pub keyword: KeywordId,
    /// First qualifying-post time per user (`None` = never adopted).
    pub adoption_time: Vec<Option<Timestamp>>,
    /// All keyword posts generated.
    pub posts: Vec<PostDraft>,
}

impl CascadeOutcome {
    /// Number of users who adopted.
    pub fn adopter_count(&self) -> usize {
        self.adoption_time.iter().filter(|t| t.is_some()).count()
    }
}

/// Runs the cascade on `graph` (arcs `u -> v` mean "u follows v"; exposure
/// flows from a poster to their followers).
pub fn simulate<R: Rng>(rng: &mut R, graph: &DirectedGraph, cfg: &CascadeConfig) -> CascadeOutcome {
    let n = graph.node_count();
    let mut adoption_time: Vec<Option<Timestamp>> = vec![None; n];
    let mut posts: Vec<PostDraft> = Vec::new();
    // Min-heap of scheduled adoptions (time, user).
    let mut queue: BinaryHeap<Reverse<(Timestamp, u32)>> = BinaryHeap::new();

    // Dynamic onset state (scheduled onsets + contagion ignitions).
    let mut live_onset: Vec<Option<Timestamp>> = cfg
        .affinity
        .as_ref()
        .map(|a| a.onset.clone())
        .unwrap_or_default();
    // Member lists per community, for affinity-directed seeding.
    let members: Option<Vec<Vec<u32>>> = cfg.affinity.as_ref().map(|aff| {
        let ncomm = aff.onset.len();
        let mut m = vec![Vec::new(); ncomm];
        for (u, &c) in aff.labels.iter().enumerate() {
            if (c as usize) < ncomm {
                m[c as usize].push(u as u32);
            }
        }
        m
    });
    // Places one spontaneous seed "around" time t. With affinity, the seed
    // lands in a receptive community (if none is receptive yet, in the
    // earliest-onset one, at its onset) — spontaneous interest comes from
    // the clusters that care about the topic.
    let place_seed = |rng: &mut R, t: Timestamp| -> Option<(Timestamp, u32)> {
        let jitter = Duration(rng.gen_range(0..3_600));
        match (&cfg.affinity, &members) {
            (Some(aff), Some(members)) => {
                // Weight receptive communities by size × freshness: a
                // community mostly seeds within `interest_decay` of onset.
                let tau = aff.interest_decay.0.max(1) as f64;
                let weights: Vec<(usize, f64)> = (0..aff.onset.len())
                    .filter(|&c| !members[c].is_empty())
                    .filter_map(|c| match aff.onset[c] {
                        Some(onset) if onset <= t => {
                            let age = (t.0 - onset.0) as f64;
                            Some((c, members[c].len() as f64 * (-age / tau).exp()))
                        }
                        _ => None,
                    })
                    .collect();
                let total: f64 = weights.iter().map(|w| w.1).sum();
                // Freshness is *absolute*: the chance this moment hosts a
                // seed is the total freshness relative to one fully-fresh
                // average community. Stale moments forward their seeds to
                // the next burst — otherwise a constant background rate
                // would smear a community's first mentions across weeks.
                let ref_weight = (aff.labels.len() as f64 / aff.onset.len().max(1) as f64).max(1.0);
                let stale = total / ref_weight < rng.gen::<f64>();
                let (c, at) = if stale || total < 1e-9 {
                    // This seed belongs to the next burst instead
                    // (earliest onset at or after t).
                    (0..aff.onset.len())
                        .filter(|&c| !members[c].is_empty())
                        .filter_map(|c| aff.onset[c].map(|o| (c, o)))
                        .filter(|&(_, o)| o >= t)
                        .min_by_key(|&(_, o)| o)?
                } else {
                    let mut x = rng.gen::<f64>() * total;
                    let mut pick = weights[0].0;
                    for &(c, w) in &weights {
                        if x < w {
                            pick = c;
                            break;
                        }
                        x -= w;
                    }
                    (pick, t)
                };
                let u = members[c][rng.gen_range(0..members[c].len())];
                Some((at + jitter, u))
            }
            _ => Some((t + jitter, rng.gen_range(0..n as u32))),
        }
    };

    for _ in 0..cfg.initial_seeds {
        if let Some(seed) = place_seed(rng, cfg.window.start) {
            queue.push(Reverse(seed));
        }
    }
    // Every scheduled onset is self-seeding: a couple of community members
    // adopt right at the onset, so a scheduled burst can never be silent
    // (background seeding alone may miss a short burst window entirely).
    let mut scheduled_onsets: Vec<(usize, Timestamp)> = Vec::new();
    if let Some(aff) = &cfg.affinity {
        for (c, onset) in aff.onset.iter().enumerate() {
            if let Some(onset) = *onset {
                scheduled_onsets.push((c, onset));
            }
        }
        for &(c, at) in &aff.extra_onsets {
            scheduled_onsets.push((c as usize, at));
        }
    }
    if let Some(members) = &members {
        for &(c, onset) in &scheduled_onsets {
            if members[c].is_empty() {
                continue;
            }
            for _ in 0..2 {
                let u = members[c][rng.gen_range(0..members[c].len())];
                let at = onset + Duration(rng.gen_range(0..6 * 3_600));
                if cfg.window.contains(at) {
                    queue.push(Reverse((at, u)));
                }
            }
        }
    }
    for spike in &cfg.spikes {
        for _ in 0..spike.seeds {
            if let Some(seed) = place_seed(rng, spike.time) {
                queue.push(Reverse(seed));
            }
        }
    }
    // Background spontaneous adopters: Poisson per day.
    let days = (cfg.window.length().0 / Duration::DAY.0).max(0);
    for day in 0..days {
        let count = poisson(rng, cfg.background_rate_per_day);
        for _ in 0..count {
            let t = cfg.window.start
                + Duration::days(day)
                + Duration(rng.gen_range(0..Duration::DAY.0));
            if let Some(seed) = place_seed(rng, t) {
                queue.push(Reverse(seed));
            }
        }
    }

    // Scheduled onsets sorted by time; rolled into `live_onset` as the
    // simulation clock passes them (later wins as "last onset").
    scheduled_onsets.sort_by_key(|&(_, t)| t);
    let mut next_scheduled = 0usize;
    while let Some(Reverse((t, u))) = queue.pop() {
        while next_scheduled < scheduled_onsets.len() && scheduled_onsets[next_scheduled].1 <= t {
            let (c, at) = scheduled_onsets[next_scheduled];
            if !live_onset.is_empty() {
                live_onset[c] = Some(at);
            }
            next_scheduled += 1;
        }
        if !cfg.window.contains(t) || adoption_time[u as usize].is_some() {
            continue;
        }
        adoption_time[u as usize] = Some(t);
        // The adoption post plus geometric repeats.
        let mut post_time = t;
        let mut first = true;
        loop {
            posts.push(make_post(
                rng,
                graph,
                UserId(u),
                post_time,
                cfg.keyword,
                !first,
            ));
            if !rng.gen_bool(cfg.repeat_post_prob) {
                break;
            }
            post_time =
                post_time + Duration(exp_sample(rng, cfg.repeat_gap_mean.0 as f64) as i64 + 1);
            if !cfg.window.contains(post_time) {
                break;
            }
            first = false;
        }
        // Expose followers, with attention dilution for large audiences.
        let audience = graph.follower_count(u) as f64;
        let eff_prob = (cfg.adoption_prob * cfg.attention_ref / (cfg.attention_ref + audience))
            .clamp(0.0, 1.0);
        for &f in graph.followers(u) {
            // Onset contagion: an exposure can ignite an eligible,
            // not-yet-onset community (see [`CommunityAffinity`]). The
            // exposed follower is the "importer": they adopt (after the
            // ignition lag), guaranteeing the ignited burst has a member
            // with an edge back to the parent burst — the inter-burst
            // links the level-by-level walk travels on.
            if let Some(aff) = &cfg.affinity {
                let c = aff.labels[f as usize] as usize;
                let quiet = match live_onset.get(c).copied().flatten() {
                    None => true,
                    Some(last) => t.since(last) > aff.reignition_cooldown,
                };
                if aff.eligible.get(c).copied().unwrap_or(false)
                    && quiet
                    && rng.gen_bool(aff.onset_contagion)
                {
                    let lag =
                        Duration(exp_sample(rng, aff.ignition_lag_mean.0.max(1) as f64) as i64);
                    let onset_at = t + lag;
                    if cfg.window.contains(onset_at) {
                        live_onset[c] = Some(onset_at);
                        if adoption_time[f as usize].is_none() {
                            let when = onset_at + cfg.delay.sample(rng);
                            if cfg.window.contains(when) {
                                queue.push(Reverse((when, f)));
                            }
                        }
                    }
                }
            }
            let p = match &cfg.affinity {
                Some(aff) => eff_prob * aff.factor(&live_onset, f, t),
                None => eff_prob,
            };
            if adoption_time[f as usize].is_none() && rng.gen_bool(p.clamp(0.0, 1.0)) {
                let when = t + cfg.delay.sample(rng);
                if cfg.window.contains(when) {
                    queue.push(Reverse((when, f)));
                }
            }
        }
    }

    CascadeOutcome {
        keyword: cfg.keyword,
        adoption_time,
        posts,
    }
}

/// Guarantees the cascade has posts inside the trailing week of its window
/// so the (week-limited) search API can always seed a walk — mirroring the
/// real platforms, where a term that ever trended keeps a trickle of posts.
///
/// If no post falls in `[window.end − 1 week, window.end)`, up to three
/// existing adopters post again at random times inside that week; if the
/// cascade has no adopters at all, three fresh users adopt there.
pub fn ensure_recent_activity<R: Rng>(
    rng: &mut R,
    graph: &DirectedGraph,
    cfg: &CascadeConfig,
    outcome: &mut CascadeOutcome,
) {
    let week = TimeWindow::trailing(cfg.window.end, Duration::WEEK);
    if outcome.posts.iter().any(|p| week.contains(p.time)) {
        return;
    }
    let adopters: Vec<u32> = outcome
        .adoption_time
        .iter()
        .enumerate()
        .filter_map(|(u, t)| t.map(|_| u as u32))
        .collect();
    let span = week.length().0.max(1);
    for i in 0..3 {
        let t = week.start + Duration(rng.gen_range(0..span));
        let author = if adopters.is_empty() {
            let u = rng.gen_range(0..graph.node_count() as u32);
            if outcome.adoption_time[u as usize].is_none() {
                outcome.adoption_time[u as usize] = Some(t);
            }
            u
        } else {
            adopters[rng.gen_range(0..adopters.len())]
        };
        let repost = !adopters.is_empty() || i > 0;
        let mut post = make_post(rng, graph, UserId(author), t, cfg.keyword, repost);
        // Keep any forced first mention consistent with adoption time.
        if outcome.adoption_time[author as usize] == Some(t) {
            post.is_repost = false;
        }
        outcome.posts.push(post);
    }
}

/// Builds one keyword post; likes scale with the author's follower count.
fn make_post<R: Rng>(
    rng: &mut R,
    graph: &DirectedGraph,
    author: UserId,
    time: Timestamp,
    keyword: KeywordId,
    is_repost: bool,
) -> PostDraft {
    let followers = graph.follower_count(author.0) as f64;
    // Engagement: each follower likes with ~2% probability, plus noise.
    let lambda = followers * 0.02 + 0.2;
    let likes = poisson(rng, lambda.min(500.0)) as u32;
    let chars = rng.gen_range(20..140) as u16;
    PostDraft {
        author,
        time,
        keywords: vec![keyword],
        likes,
        chars,
        is_repost,
    }
}

/// Exponential sample with the given mean.
pub(crate) fn exp_sample<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    -mean * u.ln()
}

/// Poisson sample (Knuth's method; fine for the small λ used here,
/// normal approximation above 50).
pub(crate) fn poisson<R: Rng>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 50.0 {
        // Normal approximation.
        let z: f64 = {
            // Box–Muller.
            let (u1, u2): (f64, f64) = (rng.gen::<f64>().max(1e-12), rng.gen());
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        return (lambda + z * lambda.sqrt()).round().max(0.0) as u64;
    }
    let limit = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= limit {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{community_preferential, CommunityGraphConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn test_graph(seed: u64) -> DirectedGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cfg = CommunityGraphConfig {
            nodes: 3_000,
            communities: 15,
            ..Default::default()
        };
        community_preferential(&mut rng, &cfg).0
    }

    fn window() -> TimeWindow {
        TimeWindow::new(Timestamp::EPOCH, Timestamp::at_day(100))
    }

    #[test]
    fn adoptions_inside_window_and_consistent_with_posts() {
        let g = test_graph(1);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let cfg = CascadeConfig::new(KeywordId(0), window());
        let out = simulate(&mut rng, &g, &cfg);
        assert!(out.adopter_count() > 10, "cascade died instantly");
        for (u, t) in out.adoption_time.iter().enumerate() {
            if let Some(t) = t {
                assert!(cfg.window.contains(*t), "adoption outside window");
                // The user's earliest post is exactly the adoption time.
                let first = out
                    .posts
                    .iter()
                    .filter(|p| p.author.0 == u as u32)
                    .map(|p| p.time)
                    .min()
                    .expect("adopter has posts");
                assert_eq!(first, *t);
            }
        }
        // Non-adopters have no posts.
        for p in &out.posts {
            assert!(out.adoption_time[p.author.index()].is_some());
            assert!(cfg.window.contains(p.time));
            assert_eq!(p.keywords, vec![KeywordId(0)]);
        }
    }

    #[test]
    fn delay_mixture_spreads_over_days() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let dm = DelayModel::default();
        let n = 10_000;
        let samples: Vec<Duration> = (0..n).map(|_| dm.sample(&mut rng)).collect();
        let frac_below =
            |d: Duration| samples.iter().filter(|&&s| s <= d).count() as f64 / n as f64;
        // Fast mode: a visible same-hours reaction share.
        let hourly = frac_below(Duration::HOUR);
        assert!((0.10..0.35).contains(&hourly), "P(<1h) = {hourly}");
        // Most adoption reactions land within a couple of days.
        let two_days = frac_below(Duration::days(2));
        assert!(two_days > 0.75, "P(<2d) = {two_days}");
        // ...but a real next-day tail exists (adjacent-level edges).
        let same_day = frac_below(Duration::DAY);
        assert!(same_day < 0.95, "P(<1d) = {same_day}");
    }

    #[test]
    fn spikes_create_adoption_bursts() {
        let g = test_graph(4);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut cfg = CascadeConfig::new(KeywordId(0), window());
        cfg.initial_seeds = 0;
        cfg.background_rate_per_day = 0.0;
        cfg.spikes = vec![Spike {
            time: Timestamp::at_day(50),
            seeds: 100,
        }];
        let out = simulate(&mut rng, &g, &cfg);
        let before = out
            .adoption_time
            .iter()
            .flatten()
            .filter(|&&t| t < Timestamp::at_day(50))
            .count();
        let after = out.adopter_count() - before;
        assert_eq!(before, 0, "nothing should happen before the spike");
        assert!(after >= 100);
    }

    #[test]
    fn higher_adoption_prob_spreads_further() {
        let g = test_graph(6);
        let mut cfg_lo = CascadeConfig::new(KeywordId(0), window());
        cfg_lo.adoption_prob = 0.005;
        let mut cfg_hi = cfg_lo.clone();
        cfg_hi.adoption_prob = 0.08;
        let lo = simulate(&mut ChaCha8Rng::seed_from_u64(7), &g, &cfg_lo);
        let hi = simulate(&mut ChaCha8Rng::seed_from_u64(7), &g, &cfg_hi);
        assert!(
            hi.adopter_count() > 2 * lo.adopter_count(),
            "hi {} vs lo {}",
            hi.adopter_count(),
            lo.adopter_count()
        );
    }

    #[test]
    fn keyword_selectivity_is_small() {
        // The paper stresses that keyword predicates match a tiny fraction
        // of all users (~0.4% for privacy). Default config keeps it small.
        let g = test_graph(8);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let cfg = CascadeConfig::new(KeywordId(0), window());
        let out = simulate(&mut rng, &g, &cfg);
        let frac = out.adopter_count() as f64 / g.node_count() as f64;
        assert!(frac < 0.5, "keyword matched {frac} of all users");
    }

    #[test]
    fn poisson_mean_is_right() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        for &lambda in &[0.5, 4.0, 80.0] {
            let n = 5_000;
            let total: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda * 0.1 + 0.1,
                "λ={lambda} mean={mean}"
            );
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn exp_sample_mean_is_right() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exp_sample(&mut rng, 100.0)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 5.0, "mean {mean}");
    }
}
