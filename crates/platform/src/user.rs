//! User profiles and profile generation.
//!
//! Profiles carry the attributes the paper aggregates over or filters on:
//! display-name length (Fig. 11/12), gender (Fig. 13 — present on Google+,
//! "generally missing from Twitter profiles"), and follower/followee counts
//! (reported in the profile, as real platforms do, so that metrics like
//! AVG(#followers) need no extra connection queries).

use crate::time::Timestamp;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Self-reported gender on the profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Gender {
    /// Profile says male.
    Male,
    /// Profile says female.
    Female,
    /// Not disclosed (the common case on Twitter).
    Undisclosed,
}

/// A user profile as returned by the USER TIMELINE query (§2: "a user
/// timeline query also returns the user's profile information").
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// Display name (generated; its length is an aggregate metric).
    pub display_name: String,
    /// Gender as disclosed on the profile.
    pub gender: Gender,
    /// Coarse region bucket (0..=15), usable as a selection predicate.
    pub region: u8,
    /// Self-reported age in years, when disclosed (the paper's §2 example
    /// metric "users' age").
    pub age: Option<u8>,
    /// Account creation time.
    pub joined: Timestamp,
}

impl UserProfile {
    /// Display-name length in characters — the low-variance metric of
    /// Figures 11 and 12.
    pub fn display_name_len(&self) -> usize {
        self.display_name.chars().count()
    }
}

/// Syllable pool used to generate plausible display names with a realistic
/// length distribution (roughly 4–20 characters, mean ≈ 11).
const SYLLABLES: &[&str] = &[
    "an", "bel", "cor", "dan", "el", "fi", "gre", "ha", "in", "jo", "ka", "li", "mo", "na", "or",
    "pe", "qui", "ra", "sa", "ti", "ul", "vi", "wen", "xa", "yo", "zu",
];

/// Generates a profile for user `index`, with gender disclosed with
/// probability `gender_disclosure` (platforms differ: ~0 on Twitter, high
/// on Google+).
pub fn generate_profile<R: Rng>(
    rng: &mut R,
    gender_disclosure: f64,
    scenario_start: Timestamp,
) -> UserProfile {
    let parts = rng.gen_range(2..=5);
    let mut name = String::new();
    for i in 0..parts {
        let syl = SYLLABLES[rng.gen_range(0..SYLLABLES.len())]; // ma-lint: allow(panic-safety) reason="index sampled from gen_range(0..len), in range by construction"
        if i == 0 {
            let mut cs = syl.chars();
            if let Some(first) = cs.next() {
                name.extend(first.to_uppercase());
                name.push_str(cs.as_str());
            }
        } else if i == parts / 2 && rng.gen_bool(0.5) {
            name.push(' ');
            name.push_str(syl);
        } else {
            name.push_str(syl);
        }
    }
    let gender = if rng.gen_bool(gender_disclosure) {
        if rng.gen_bool(0.52) {
            Gender::Male
        } else {
            Gender::Female
        }
    } else {
        Gender::Undisclosed
    };
    // Age disclosure tracks gender disclosure (profile completeness);
    // ages skew young like real microblog demographics.
    let age = if rng.gen_bool(gender_disclosure) {
        let base: f64 = 16.0 + exp_like(rng) * 12.0;
        Some(base.min(90.0) as u8)
    } else {
        None
    };
    // Accounts predate the scenario by up to ~5 years.
    let joined = scenario_start - crate::time::Duration::days(rng.gen_range(0..5 * 365));
    UserProfile {
        display_name: name,
        gender,
        region: rng.gen_range(0..16),
        age,
        joined,
    }
}

/// A cheap positive skewed sample (mean ≈ 1).
fn exp_like<R: Rng>(rng: &mut R) -> f64 {
    -(rng.gen::<f64>().max(1e-9)).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn profiles_are_plausible() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..200 {
            let p = generate_profile(&mut rng, 0.5, Timestamp::EPOCH);
            let len = p.display_name_len();
            assert!(
                (3..=24).contains(&len),
                "odd name length {len}: {}",
                p.display_name
            );
            assert!(p.display_name.chars().next().unwrap().is_uppercase());
            assert!(p.region < 16);
            assert!(p.joined <= Timestamp::EPOCH);
            if let Some(age) = p.age {
                assert!((16..=90).contains(&age), "age {age}");
            }
        }
    }

    #[test]
    fn gender_disclosure_rate_respected() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 2000;
        let disclosed = (0..n)
            .filter(|_| {
                generate_profile(&mut rng, 0.8, Timestamp::EPOCH).gender != Gender::Undisclosed
            })
            .count();
        let rate = disclosed as f64 / n as f64;
        assert!((rate - 0.8).abs() < 0.05, "rate {rate}");
        let none = (0..500)
            .filter(|_| {
                generate_profile(&mut rng, 0.0, Timestamp::EPOCH).gender != Gender::Undisclosed
            })
            .count();
        assert_eq!(none, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let pa = generate_profile(&mut a, 0.3, Timestamp::EPOCH);
        let pb = generate_profile(&mut b, 0.3, Timestamp::EPOCH);
        assert_eq!(pa, pb);
    }
}
