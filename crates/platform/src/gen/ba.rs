//! Barabási–Albert preferential attachment (directed variant).
//!
//! Each arriving node follows `m` existing nodes chosen proportionally to
//! their current in-degree (+1 smoothing), producing the heavy-tailed
//! follower counts observed on real microblogs; with probability
//! `reciprocity` a followed node follows back, modelling mutual ties.

use microblog_graph::DirectedGraph;
use rand::Rng;

/// Configuration for [`barabasi_albert`].
#[derive(Clone, Copy, Debug)]
pub struct BarabasiAlbertConfig {
    /// Total number of nodes (>= 2).
    pub nodes: usize,
    /// Arcs added per arriving node (clamped to the number of existing
    /// nodes at attach time).
    pub arcs_per_node: usize,
    /// Probability that a followed node follows back.
    pub reciprocity: f64,
}

impl Default for BarabasiAlbertConfig {
    fn default() -> Self {
        BarabasiAlbertConfig {
            nodes: 1000,
            arcs_per_node: 5,
            reciprocity: 0.3,
        }
    }
}

/// Generates a directed preferential-attachment graph.
///
/// # Panics
/// Panics if `nodes < 2` or `arcs_per_node == 0`.
pub fn barabasi_albert<R: Rng>(rng: &mut R, cfg: &BarabasiAlbertConfig) -> DirectedGraph {
    assert!(cfg.nodes >= 2, "need at least two nodes");
    assert!(cfg.arcs_per_node >= 1, "need at least one arc per node");
    let mut arcs: Vec<(u32, u32)> = Vec::with_capacity(cfg.nodes * cfg.arcs_per_node);
    // Repeated-endpoint urn: picking uniformly from this list realizes
    // in-degree-proportional (+1) selection.
    let mut urn: Vec<u32> = vec![0, 1];
    arcs.push((1, 0));
    for u in 2..cfg.nodes as u32 {
        let m = cfg.arcs_per_node.min(u as usize);
        let mut chosen = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 50 * m {
            let pick = if rng.gen_bool(0.15) {
                // Uniform smoothing so newcomers keep some followers.
                rng.gen_range(0..u)
            } else {
                urn[rng.gen_range(0..urn.len())] // ma-lint: allow(panic-safety) reason="index sampled from gen_range(0..len), in range by construction"
            };
            if !chosen.contains(&pick) {
                chosen.push(pick);
            }
            guard += 1;
        }
        for &v in &chosen {
            arcs.push((u, v));
            urn.push(v);
            if rng.gen_bool(cfg.reciprocity) {
                arcs.push((v, u));
                urn.push(u);
            }
        }
        urn.push(u);
    }
    DirectedGraph::from_arcs(cfg.nodes, arcs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn produces_heavy_tail() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let cfg = BarabasiAlbertConfig {
            nodes: 3000,
            arcs_per_node: 4,
            reciprocity: 0.2,
        };
        let g = barabasi_albert(&mut rng, &cfg);
        let max_in = (0..3000u32).map(|u| g.follower_count(u)).max().unwrap();
        let mean_in = g.arc_count() as f64 / 3000.0;
        assert!(
            max_in as f64 > 10.0 * mean_in,
            "no celebrity: max {max_in} vs mean {mean_in:.1}"
        );
    }

    #[test]
    fn undirected_view_is_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = barabasi_albert(
            &mut rng,
            &BarabasiAlbertConfig {
                nodes: 500,
                arcs_per_node: 3,
                reciprocity: 0.3,
            },
        );
        let u = g.to_undirected();
        let cc = microblog_graph::components::connected_components(&u);
        assert_eq!(
            cc.component_count(),
            1,
            "BA graphs are connected by construction"
        );
    }

    #[test]
    fn reciprocity_increases_mutual_arcs() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let lo = barabasi_albert(
            &mut rng,
            &BarabasiAlbertConfig {
                nodes: 800,
                arcs_per_node: 3,
                reciprocity: 0.0,
            },
        );
        let hi = barabasi_albert(
            &mut rng,
            &BarabasiAlbertConfig {
                nodes: 800,
                arcs_per_node: 3,
                reciprocity: 0.8,
            },
        );
        let mutual = |g: &DirectedGraph| {
            (0..800u32)
                .flat_map(|u| g.followees(u).iter().map(move |&v| (u, v)))
                .filter(|&(u, v)| g.followees(v).contains(&u))
                .count()
        };
        assert!(mutual(&hi) > 3 * mutual(&lo).max(1));
    }
}
