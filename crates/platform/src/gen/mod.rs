//! Directed social-graph generators.
//!
//! The experiments need follower graphs with the structural features the
//! paper's design exploits: heavy-tailed in-degrees (celebrities), high
//! reciprocity, and — crucially — tightly-knit communities within which
//! keywords propagate quickly. [`community_preferential`] is the workhorse
//! used by the scenarios; [`erdos_renyi`], [`watts_strogatz`] and
//! [`barabasi_albert`] serve as structural baselines in tests and
//! ablations.

mod ba;
mod communities;
mod er;
mod ws;

pub use ba::{barabasi_albert, BarabasiAlbertConfig};
pub use communities::{community_preferential, CommunityGraphConfig};
pub use er::erdos_renyi;
pub use ws::watts_strogatz;
