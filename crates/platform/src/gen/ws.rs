//! Watts–Strogatz small-world graphs (mutual-follow variant).
//!
//! Used as a structural baseline with high clustering but homogeneous
//! degrees; every undirected lattice edge becomes a mutual follow.

use microblog_graph::DirectedGraph;
use rand::Rng;

/// Generates a Watts–Strogatz small-world graph: a ring lattice where each
/// node is joined to its `k` nearest neighbors on each side, with every
/// lattice edge rewired to a random endpoint with probability `beta`.
/// All edges are mutual (arcs in both directions).
///
/// # Panics
/// Panics if `n < 2 * k + 1` or `k == 0`.
pub fn watts_strogatz<R: Rng>(rng: &mut R, n: usize, k: usize, beta: f64) -> DirectedGraph {
    assert!(k >= 1, "k must be positive");
    assert!(n > 2 * k, "ring too small for k = {k}");
    let mut arcs = Vec::with_capacity(2 * n * k);
    for u in 0..n {
        for j in 1..=k {
            let mut v = (u + j) % n;
            if rng.gen_bool(beta) {
                // Rewire to a uniform non-self target.
                loop {
                    let cand = rng.gen_range(0..n);
                    if cand != u {
                        v = cand;
                        break;
                    }
                }
            }
            arcs.push((u as u32, v as u32));
            arcs.push((v as u32, u as u32));
        }
    }
    DirectedGraph::from_arcs(n, arcs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use microblog_graph::metrics::avg_clustering;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn zero_beta_is_ring_lattice() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = watts_strogatz(&mut rng, 20, 2, 0.0);
        let u = g.to_undirected();
        for node in 0..20u32 {
            assert_eq!(u.degree(node), 4, "lattice degree");
        }
        assert!(u.contains_edge(0, 1));
        assert!(u.contains_edge(0, 2));
        assert!(u.contains_edge(0, 19));
        assert!(u.contains_edge(0, 18));
        assert!(!u.contains_edge(0, 3));
    }

    #[test]
    fn rewiring_lowers_clustering() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ordered = watts_strogatz(&mut rng, 300, 4, 0.0).to_undirected();
        let rewired = watts_strogatz(&mut rng, 300, 4, 0.7).to_undirected();
        assert!(avg_clustering(&ordered) > 2.0 * avg_clustering(&rewired));
    }

    #[test]
    #[should_panic(expected = "ring too small")]
    fn rejects_tiny_ring() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let _ = watts_strogatz(&mut rng, 4, 2, 0.0);
    }
}
