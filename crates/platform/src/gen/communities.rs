// ma-lint: allow-file(panic-safety) reason="community generator indexes membership tables sized at allocation; expects guard generator-internal invariants"
//! The workhorse generator: preferential attachment with planted
//! communities.
//!
//! Produces a directed follower graph whose undirected view has (a)
//! heavy-tailed degrees, (b) strong community structure (most arcs stay
//! inside a node's community), and (c) substantial reciprocity. These are
//! the three ingredients the paper's analysis leans on: keyword cascades
//! travel fast inside communities, creating the intra-level edges the
//! level-by-level subgraph removes.

use microblog_graph::DirectedGraph;
use rand::Rng;

/// Configuration for [`community_preferential`].
#[derive(Clone, Copy, Debug)]
pub struct CommunityGraphConfig {
    /// Total number of users.
    pub nodes: usize,
    /// Number of planted communities (>= 1).
    pub communities: usize,
    /// Probability that an arc targets the follower's own community.
    pub intra_prob: f64,
    /// Probability that a followed user follows back.
    pub reciprocity: f64,
    /// Mean out-degree (followees per user).
    pub mean_out_degree: f64,
    /// Pareto tail exponent of the out-degree distribution (> 1).
    pub pareto_alpha: f64,
    /// Hard cap on out-degree.
    pub max_out_degree: usize,
    /// Probability that a new arc closes a triangle (friend-of-friend
    /// following). Triadic closure is what makes communities
    /// *triangle-dense*, so that users adopting a keyword together share
    /// many common neighbors — the Table 2 phenomenon the paper exploits.
    pub triadic_closure: f64,
}

impl Default for CommunityGraphConfig {
    fn default() -> Self {
        CommunityGraphConfig {
            nodes: 10_000,
            communities: 50,
            intra_prob: 0.7,
            reciprocity: 0.25,
            mean_out_degree: 20.0,
            pareto_alpha: 2.3,
            max_out_degree: 2_000,
            triadic_closure: 0.4,
        }
    }
}

/// Generates the graph; returns it together with each node's community
/// label (`0..cfg.communities`).
///
/// Community sizes follow a Zipf profile (community 0 largest), matching
/// the uneven interest-group sizes of real platforms.
///
/// # Panics
/// Panics if `nodes < 2`, `communities == 0`, or `pareto_alpha <= 1`.
pub fn community_preferential<R: Rng>(
    rng: &mut R,
    cfg: &CommunityGraphConfig,
) -> (DirectedGraph, Vec<u32>) {
    assert!(cfg.nodes >= 2, "need at least two nodes");
    assert!(cfg.communities >= 1, "need at least one community");
    assert!(cfg.pareto_alpha > 1.0, "pareto_alpha must exceed 1");

    // Zipf community weights.
    let weights: Vec<f64> = (0..cfg.communities)
        .map(|c| 1.0 / (c as f64 + 1.0))
        .collect();
    let total_w: f64 = weights.iter().sum();
    let mut community = Vec::with_capacity(cfg.nodes);
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); cfg.communities];
    for u in 0..cfg.nodes as u32 {
        let mut x = rng.gen::<f64>() * total_w;
        let mut c = cfg.communities - 1;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                c = i;
                break;
            }
            x -= w;
        }
        community.push(c as u32);
        members[c].push(u);
    }
    // Guarantee no empty community (steal from the largest).
    for c in 0..cfg.communities {
        if members[c].is_empty() {
            let donor = (0..cfg.communities)
                .max_by_key(|&i| members[i].len())
                .expect("nonempty");
            let node = members[donor].pop().expect("donor has members");
            members[c].push(node);
            community[node as usize] = c as u32;
        }
    }

    // Popularity urns: repeated endpoints realize preferential attachment.
    let mut global_urn: Vec<u32> = Vec::new();
    let mut comm_urn: Vec<Vec<u32>> = vec![Vec::new(); cfg.communities];
    // Pareto out-degrees with the requested mean.
    let x_m = cfg.mean_out_degree * (cfg.pareto_alpha - 1.0) / cfg.pareto_alpha;
    let mut arcs: Vec<(u32, u32)> =
        Vec::with_capacity((cfg.nodes as f64 * cfg.mean_out_degree) as usize);

    // Out-adjacency so far, for triadic closure.
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); cfg.nodes];
    for u in 0..cfg.nodes as u32 {
        let d = (x_m * rng.gen::<f64>().powf(-1.0 / cfg.pareto_alpha)).round() as usize;
        let d = d.clamp(1, cfg.max_out_degree).min(cfg.nodes - 1);
        let own = community[u as usize] as usize;
        for _ in 0..d {
            let v = triadic_target(rng, u, &out, cfg.triadic_closure).unwrap_or_else(|| {
                let intra = rng.gen_bool(cfg.intra_prob);
                pick_target(
                    rng,
                    u,
                    intra.then_some(own),
                    &members,
                    &comm_urn,
                    &global_urn,
                    cfg.nodes,
                )
            });
            arcs.push((u, v));
            out[u as usize].push(v);
            let vc = community[v as usize] as usize;
            comm_urn[vc].push(v);
            global_urn.push(v);
            if rng.gen_bool(cfg.reciprocity) {
                arcs.push((v, u));
                out[v as usize].push(u);
                comm_urn[own].push(u);
                global_urn.push(u);
            }
        }
    }
    (DirectedGraph::from_arcs(cfg.nodes, arcs), community)
}

/// With probability `closure`, picks a friend-of-friend of `u` (closing a
/// triangle); `None` when the coin or the local structure says otherwise.
fn triadic_target<R: Rng>(rng: &mut R, u: u32, out: &[Vec<u32>], closure: f64) -> Option<u32> {
    if !rng.gen_bool(closure) {
        return None;
    }
    let mine = &out[u as usize];
    if mine.is_empty() {
        return None;
    }
    let via = mine[rng.gen_range(0..mine.len())];
    let theirs = &out[via as usize];
    if theirs.is_empty() {
        return None;
    }
    let w = theirs[rng.gen_range(0..theirs.len())];
    (w != u && !mine.contains(&w)).then_some(w)
}

/// Picks a follow target: from the community pool when `comm` is given,
/// otherwise globally; preferential via urns with uniform smoothing.
fn pick_target<R: Rng>(
    rng: &mut R,
    follower: u32,
    comm: Option<usize>,
    members: &[Vec<u32>],
    comm_urn: &[Vec<u32>],
    global_urn: &[u32],
    n: usize,
) -> u32 {
    for _ in 0..32 {
        let v = match comm {
            Some(c) => {
                let urn = &comm_urn[c];
                if !urn.is_empty() && rng.gen_bool(0.75) {
                    urn[rng.gen_range(0..urn.len())]
                } else {
                    members[c][rng.gen_range(0..members[c].len())]
                }
            }
            None => {
                if !global_urn.is_empty() && rng.gen_bool(0.75) {
                    global_urn[rng.gen_range(0..global_urn.len())]
                } else {
                    rng.gen_range(0..n as u32)
                }
            }
        };
        if v != follower {
            return v;
        }
    }
    // Fallback: deterministic non-self node.
    if follower == 0 {
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microblog_graph::modularity::modularity;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_cfg() -> CommunityGraphConfig {
        CommunityGraphConfig {
            nodes: 2_000,
            communities: 10,
            intra_prob: 0.8,
            reciprocity: 0.25,
            mean_out_degree: 12.0,
            pareto_alpha: 2.3,
            max_out_degree: 300,
            triadic_closure: 0.4,
        }
    }

    #[test]
    fn planted_communities_have_high_modularity() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let (g, labels) = community_preferential(&mut rng, &small_cfg());
        let q = modularity(&g.to_undirected(), &labels);
        assert!(q > 0.3, "modularity {q} too low — communities not planted");
    }

    #[test]
    fn intra_arc_fraction_tracks_config() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let (g, labels) = community_preferential(&mut rng, &small_cfg());
        let mut intra = 0usize;
        let mut total = 0usize;
        for u in 0..g.node_count() as u32 {
            for &v in g.followees(u) {
                total += 1;
                if labels[u as usize] == labels[v as usize] {
                    intra += 1;
                }
            }
        }
        let frac = intra as f64 / total as f64;
        // Reciprocity and smoothing blur the target, but it stays high.
        assert!(frac > 0.6, "intra fraction {frac}");
    }

    #[test]
    fn degrees_are_heavy_tailed_and_capped() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let cfg = small_cfg();
        let (g, _) = community_preferential(&mut rng, &cfg);
        let max_in = (0..cfg.nodes as u32)
            .map(|u| g.follower_count(u))
            .max()
            .unwrap();
        let mean = g.arc_count() as f64 / cfg.nodes as f64;
        assert!(
            max_in as f64 > 5.0 * mean,
            "max in-degree {max_in}, mean {mean:.1}"
        );
        let max_out = (0..cfg.nodes as u32)
            .map(|u| g.followee_count(u))
            .max()
            .unwrap();
        assert!(
            max_out <= cfg.max_out_degree + 1,
            "out-degree cap violated: {max_out}"
        );
    }

    #[test]
    fn every_community_nonempty_and_labels_dense() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let cfg = CommunityGraphConfig {
            nodes: 50,
            communities: 20,
            ..small_cfg()
        };
        let (_, labels) = community_preferential(&mut rng, &cfg);
        for c in 0..20u32 {
            assert!(labels.contains(&c), "community {c} empty");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = CommunityGraphConfig {
            nodes: 300,
            ..small_cfg()
        };
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let (ga, la) = community_preferential(&mut a, &cfg);
        let (gb, lb) = community_preferential(&mut b, &cfg);
        assert_eq!(la, lb);
        assert_eq!(ga.arc_count(), gb.arc_count());
    }
}
