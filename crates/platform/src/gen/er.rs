//! Erdős–Rényi directed random graphs (G(n, m) variant).

use microblog_graph::DirectedGraph;
use rand::Rng;

/// Generates a directed graph with `n` nodes and (up to) `arcs` uniformly
/// random arcs (duplicates and self-loops are filtered by the builder, so
/// the realized arc count may be slightly lower).
///
/// # Panics
/// Panics if `n == 0` and `arcs > 0`.
pub fn erdos_renyi<R: Rng>(rng: &mut R, n: usize, arcs: usize) -> DirectedGraph {
    assert!(n > 0 || arcs == 0, "cannot place arcs in an empty graph");
    let list: Vec<(u32, u32)> = (0..arcs)
        .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
        .collect();
    DirectedGraph::from_arcs(n, list)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn arc_count_close_to_requested() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = erdos_renyi(&mut rng, 500, 3000);
        assert_eq!(g.node_count(), 500);
        // Collision losses are tiny at this density.
        assert!(
            g.arc_count() > 2900 && g.arc_count() <= 3000,
            "arcs {}",
            g.arc_count()
        );
    }

    #[test]
    fn empty_graph_ok() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = erdos_renyi(&mut rng, 0, 0);
        assert_eq!(g.node_count(), 0);
    }
}
