//! # microblog-platform
//!
//! A synthetic microblogging platform — the substrate the SIGMOD'14 paper
//! ran against live Twitter / Google+ / Tumblr. Since the 2013 platforms
//! (and their Firehose-derived ground truth) are not available, this crate
//! simulates the closest equivalent that exercises the same code paths:
//!
//! * **Social graphs** ([`gen`]): directed follower graphs with power-law
//!   in-degrees (preferential attachment), planted community structure,
//!   plus Erdős–Rényi and Watts–Strogatz baselines. Community structure
//!   matters: the paper's level-by-level design exists *because* keywords
//!   propagate inside tightly-knit communities.
//! * **Keyword cascades** ([`cascade`]): an event-driven
//!   independent-cascade simulation in which adopters expose their
//!   followers, who adopt after a two-mode delay (≈92% react within an
//!   hour — the Sysomos retweet statistic the paper cites [3] — the rest
//!   after hours or days), plus spontaneous background adoption and
//!   configurable event spikes (e.g. "boston" on Apr 15 2013).
//! * **The platform store** ([`platform`]): users, posts, per-user
//!   timelines, keyword indexes and the *exact ground truth* for any
//!   aggregate ([`truth`]) against which estimators are scored.
//! * **Fault injection** ([`fault`]): a deterministic hostile-API wrapper
//!   ([`FaultyPlatform`]) behind the [`ApiBackend`] seam, injecting
//!   transient errors, rate limits, timeouts and truncated pages per a
//!   seeded [`FaultPlan`] — the test substrate for the resilience layer.
//! * **Scenarios** ([`scenario`]): preset "Twitter 2013"-style worlds with
//!   the keyword mix of the paper's evaluation (perpetually popular,
//!   low-frequency-with-spikes, single-event, obscure).
//!
//! Everything is deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cascade;
pub mod crash;
pub mod fault;
pub mod gen;
pub mod ids;
pub mod metric;
pub mod persist;
pub mod platform;
pub mod post;
pub mod scenario;
pub mod slow;
pub mod time;
pub mod truth;
pub mod user;

pub use backend::ApiBackend;
pub use crash::{
    crash_point, CrashInjector, CrashMode, CrashPlan, CRASH_PANIC_PREFIX, CRASH_POINTS,
};
pub use fault::{ApiEndpoint, Fault, FaultCounts, FaultPlan, FaultRates, FaultyPlatform};
pub use ids::{KeywordId, PostId, UserId};
pub use metric::UserMetric;
pub use platform::{Platform, PlatformBuilder};
pub use post::Post;
pub use slow::SlowBackend;
pub use time::{Duration, TimeWindow, Timestamp};
pub use user::{Gender, UserProfile};
