//! A latency-injecting backend with a concurrent completion model.
//!
//! The paper's live experiments paid 50–100 ms of network RTT per API
//! call; the in-memory [`Platform`] answers in nanoseconds. `SlowBackend`
//! wraps a platform and stalls every fetch by a configurable RTT — but,
//! unlike a serial delay queue, each calling thread stalls
//! *independently*: ten callers in flight at once all complete ~one RTT
//! later, not ten RTTs later. That concurrency model is what makes
//! pipelining measurable — overlapped fetches genuinely overlap, and the
//! [`SlowBackend::peak_inflight`] gauge records how deep the overlap ran.
//!
//! This is bench/test infrastructure: it burns real wall-clock time by
//! design, which is why it carries explicit wall-clock lint allowances.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::backend::ApiBackend;
use crate::fault::Fault;
use crate::ids::{KeywordId, PostId, UserId};
use crate::platform::Platform;
use crate::time::TimeWindow;

/// An [`ApiBackend`] that delays every fetch by a fixed RTT while letting
/// concurrent fetches overlap, with gauges for measuring that overlap.
#[derive(Debug)]
pub struct SlowBackend {
    inner: Arc<Platform>,
    rtt: std::time::Duration,
    inflight: AtomicU64,
    peak_inflight: AtomicU64,
    calls: AtomicU64,
}

impl SlowBackend {
    /// Wraps `inner`, delaying every fetch by `rtt_ms` milliseconds.
    pub fn new(inner: Arc<Platform>, rtt_ms: u64) -> Self {
        SlowBackend {
            inner,
            rtt: std::time::Duration::from_millis(rtt_ms),
            inflight: AtomicU64::new(0),
            peak_inflight: AtomicU64::new(0),
            calls: AtomicU64::new(0),
        }
    }

    /// The configured RTT in milliseconds.
    pub fn rtt_ms(&self) -> u64 {
        self.rtt.as_millis() as u64
    }

    /// Total fetches served so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// The deepest number of fetches that were ever simultaneously
    /// waiting out their RTT — the direct measure of pipeline overlap.
    pub fn peak_inflight(&self) -> u64 {
        self.peak_inflight.load(Ordering::Relaxed)
    }

    /// Brackets one fetch: bumps the in-flight gauge, folds the new depth
    /// into the peak, sleeps out the RTT, then releases the gauge.
    fn stall(&self) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        let depth = self.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_inflight.fetch_max(depth, Ordering::Relaxed);
        std::thread::sleep(self.rtt); // ma-lint: allow(wall-clock) reason="RTT simulation is this type's purpose"
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

impl ApiBackend for SlowBackend {
    fn store(&self) -> &Platform {
        &self.inner
    }

    fn fetch_search(&self, kw: KeywordId, window: TimeWindow) -> Result<Vec<PostId>, Fault> {
        self.stall();
        self.inner.fetch_search(kw, window)
    }

    fn fetch_timeline(&self, u: UserId) -> Result<&[PostId], Fault> {
        self.stall();
        self.inner.fetch_timeline(u)
    }

    fn fetch_connections(&self, u: UserId) -> Result<(&[u32], &[u32]), Fault> {
        self.stall();
        self.inner.fetch_connections(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{twitter_2013, Scale};

    #[test]
    fn delegates_and_counts_calls() {
        let s = twitter_2013(Scale::Tiny, 9);
        let platform = Arc::new(s.platform);
        let slow = SlowBackend::new(Arc::clone(&platform), 0);
        let u = UserId(0);
        assert_eq!(slow.fetch_timeline(u).unwrap(), platform.timeline(u));
        let (fols, fees) = slow.fetch_connections(u).unwrap();
        assert_eq!(fols, platform.followers(u));
        assert_eq!(fees, platform.followees(u));
        assert_eq!(slow.calls(), 2);
        assert_eq!(slow.rtt_ms(), 0);
        assert!(slow.peak_inflight() >= 1);
    }

    #[test]
    fn concurrent_fetches_overlap() {
        let s = twitter_2013(Scale::Tiny, 9);
        let slow = SlowBackend::new(Arc::new(s.platform), 20);
        std::thread::scope(|scope| {
            for i in 0..4u32 {
                let slow = &slow;
                scope.spawn(move || {
                    let _ = slow.fetch_timeline(UserId(i));
                });
            }
        });
        assert_eq!(slow.calls(), 4);
        assert!(
            slow.peak_inflight() >= 2,
            "4 threads over a 20 ms RTT should overlap, peak={}",
            slow.peak_inflight()
        );
    }
}
