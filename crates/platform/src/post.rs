//! Posts (micro-posts / tweets) and the keyword catalog.

use crate::ids::{KeywordId, PostId, UserId};
use crate::time::Timestamp;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One micro-post.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Post {
    /// Post identifier (dense, creation-ordered after platform build).
    pub id: PostId,
    /// Author of the post.
    pub author: UserId,
    /// Publication time.
    pub time: Timestamp,
    /// Interned keywords/hashtags the post contains (sorted, deduplicated).
    pub keywords: Vec<KeywordId>,
    /// Number of likes the post accumulated — the Tumblr metric (Fig. 14).
    pub likes: u32,
    /// Post length in characters — a per-post numeric attribute.
    pub chars: u16,
    /// Whether this post is a repost/retweet of earlier content.
    pub is_repost: bool,
}

impl Post {
    /// Whether the post mentions `kw`.
    pub fn mentions(&self, kw: KeywordId) -> bool {
        self.keywords.binary_search(&kw).is_ok()
    }
}

/// Interns keyword strings to dense [`KeywordId`]s (case-insensitive).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct KeywordCatalog {
    names: Vec<String>,
    index: HashMap<String, KeywordId>,
}

impl KeywordCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name` (lowercased), returning its id.
    ///
    /// # Panics
    /// Panics after 65 536 distinct keywords.
    pub fn intern(&mut self, name: &str) -> KeywordId {
        let key = name.to_lowercase();
        if let Some(&id) = self.index.get(&key) {
            return id;
        }
        let id = KeywordId(u16::try_from(self.names.len()).expect("keyword catalog overflow")); // ma-lint: allow(panic-safety) reason="catalog construction is bounded far below u16::MAX"
        self.names.push(key.clone());
        self.index.insert(key, id);
        id
    }

    /// Looks up an already-interned keyword (case-insensitive).
    pub fn get(&self, name: &str) -> Option<KeywordId> {
        self.index.get(&name.to_lowercase()).copied()
    }

    /// The canonical (lowercased) spelling of `id`.
    pub fn name(&self, id: KeywordId) -> &str {
        &self.names[id.index()] // ma-lint: allow(panic-safety) reason="KeywordId minted by this catalog, always a valid slot"
    }

    /// Number of interned keywords.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_case_insensitive_and_stable() {
        let mut cat = KeywordCatalog::new();
        let a = cat.intern("Privacy");
        let b = cat.intern("privacy");
        let c = cat.intern("PRIVACY");
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.name(a), "privacy");
        assert_eq!(cat.get("priVACY"), Some(a));
        assert_eq!(cat.get("missing"), None);
        let d = cat.intern("New York");
        assert_ne!(a, d);
        assert_eq!(cat.len(), 2);
        assert!(!cat.is_empty());
    }

    #[test]
    fn mentions_uses_sorted_keywords() {
        let post = Post {
            id: PostId(0),
            author: UserId(0),
            time: Timestamp(0),
            keywords: vec![KeywordId(1), KeywordId(4), KeywordId(9)],
            likes: 0,
            chars: 100,
            is_repost: false,
        };
        assert!(post.mentions(KeywordId(4)));
        assert!(!post.mentions(KeywordId(5)));
    }
}
