//! `FaultPlan::parse` rejection paths: a chaos run configured from a
//! typo'd spec must die at the CLI boundary, not half-apply.

use microblog_platform::{Duration, FaultPlan};

fn err(spec: &str) -> String {
    FaultPlan::parse(spec).expect_err(&format!("`{spec}` must be rejected"))
}

#[test]
fn accepts_a_full_well_formed_spec() {
    let plan = FaultPlan::parse(
        "transient=0.05,rate_limited=0.02,timeout=0.01,truncated=0.01,\
         seed=42,retry_after=120,latency=9,max_consecutive=5",
    )
    .expect("well-formed spec parses");
    assert_eq!(plan.seed, 42);
    assert_eq!(plan.rates.transient, 0.05);
    assert_eq!(plan.rates.truncated, 0.01);
    assert_eq!(plan.retry_after, Duration(120));
    assert_eq!(plan.latency, Duration(9));
    assert_eq!(plan.max_consecutive, 5);
}

#[test]
fn accepts_empty_and_trailing_separators() {
    assert_eq!(FaultPlan::parse("").expect("empty"), FaultPlan::none());
    let plan = FaultPlan::parse("transient=0.1,,").expect("trailing commas");
    assert_eq!(plan.rates.transient, 0.1);
}

#[test]
fn rejects_entries_without_equals() {
    assert!(err("transient").contains("not key=value"));
    assert!(err("transient=0.1,oops").contains("not key=value"));
}

#[test]
fn rejects_unknown_keys() {
    assert!(err("transparent=0.1").contains("unknown fault-plan key"));
    assert!(err("transient=0.1,SEED=4").contains("unknown fault-plan key"));
}

#[test]
fn rejects_unparsable_values() {
    assert!(err("transient=lots").contains("invalid value"));
    assert!(err("seed=-1").contains("invalid value"));
    assert!(err("max_consecutive=3.5").contains("invalid value"));
    assert!(err("retry_after=soon").contains("invalid value"));
}

#[test]
fn rejects_per_rate_out_of_range() {
    // The sum check alone would accept a negative rate hidden under a
    // compensating positive one.
    assert!(err("transient=-0.5,rate_limited=0.7").contains("outside [0, 1]"));
    assert!(err("timeout=1.5").contains("outside [0, 1]"));
    assert!(err("truncated=-0.0001").contains("outside [0, 1]"));
    assert!(err("transient=NaN").contains("outside [0, 1]"));
}

#[test]
fn rejects_rate_sum_above_one() {
    let msg = err("transient=0.6,rate_limited=0.6");
    assert!(msg.contains("sum"), "{msg}");
}

#[test]
fn rejects_negative_durations() {
    assert!(err("retry_after=-30").contains("negative"));
    assert!(err("latency=-1").contains("negative"));
}

#[test]
fn rejects_duplicate_keys() {
    assert!(err("transient=0.1,transient=0.2").contains("more than once"));
    assert!(err("seed=1,seed=1").contains("more than once"));
    // Whitespace around a repeated key still counts as the same key.
    assert!(err("latency=3, latency =4").contains("more than once"));
}
