//! Property-based tests for the platform substrate.

use microblog_platform::cascade::{simulate, CascadeConfig, DelayModel};
use microblog_platform::gen::{community_preferential, erdos_renyi, CommunityGraphConfig};
use microblog_platform::time::{Duration, TimeWindow, Timestamp};
use microblog_platform::truth::{exact_avg, exact_count, exact_sum, matching_users, Condition};
use microblog_platform::user::generate_profile;
use microblog_platform::{PlatformBuilder, UserId, UserMetric};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn build_world(seed: u64, nodes: usize, adoption: f64) -> microblog_platform::Platform {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let cfg = CommunityGraphConfig {
        nodes,
        communities: (nodes / 100).max(2),
        mean_out_degree: 8.0,
        ..Default::default()
    };
    let (graph, _) = community_preferential(&mut rng, &cfg);
    let users = (0..nodes)
        .map(|_| generate_profile(&mut rng, 0.5, Timestamp::EPOCH))
        .collect();
    let now = Timestamp::at_day(60);
    let mut b = PlatformBuilder::new(graph, users, now);
    let kw = b.intern_keyword("kw");
    let window = TimeWindow::new(Timestamp::EPOCH, now);
    let mut cc = CascadeConfig::new(kw, window);
    cc.adoption_prob = adoption;
    let outcome = simulate(&mut rng, b.graph(), &cc);
    b.add_cascade(outcome);
    b.add_chatter(&mut rng, 2.0, window);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cascade_adoptions_match_platform_truth(seed in 0u64..500, adoption in 0.005f64..0.05) {
        let p = build_world(seed, 600, adoption);
        let kw = p.keywords().get("kw").unwrap();
        let cond = Condition::keyword(kw);
        let matched = matching_users(&p, &cond);
        // Every matched user's timeline contains a keyword post; every
        // unmatched user's does not.
        let set: std::collections::HashSet<_> = matched.iter().copied().collect();
        for u in 0..p.user_count() as u32 {
            let has = p
                .timeline(UserId(u))
                .iter()
                .any(|&pid| p.post(pid).mentions(kw));
            prop_assert_eq!(has, set.contains(&UserId(u)));
        }
    }

    #[test]
    fn exact_aggregates_are_consistent(seed in 0u64..500) {
        let p = build_world(seed, 500, 0.02);
        let kw = p.keywords().get("kw").unwrap();
        let cond = Condition::keyword(kw);
        let count = exact_count(&p, &cond);
        for metric in [UserMetric::FollowerCount, UserMetric::DisplayNameLength, UserMetric::KeywordPostCount] {
            let sum = exact_sum(&p, &cond, metric);
            match exact_avg(&p, &cond, metric) {
                Some(avg) => {
                    prop_assert!(count > 0.0);
                    prop_assert!((avg * count - sum).abs() < 1e-6 * (1.0 + sum.abs()));
                }
                None => prop_assert_eq!(count, 0.0),
            }
        }
    }

    #[test]
    fn windowed_counts_are_monotone(seed in 0u64..500, split in 1i64..59) {
        let p = build_world(seed, 500, 0.02);
        let kw = p.keywords().get("kw").unwrap();
        let whole = TimeWindow::new(Timestamp::EPOCH, Timestamp::at_day(60));
        let early = TimeWindow::new(Timestamp::EPOCH, Timestamp::at_day(split));
        let late = TimeWindow::new(Timestamp::at_day(split), Timestamp::at_day(60));
        let c_whole = exact_count(&p, &Condition::keyword(kw).in_window(whole));
        let c_early = exact_count(&p, &Condition::keyword(kw).in_window(early));
        let c_late = exact_count(&p, &Condition::keyword(kw).in_window(late));
        // Sub-windows can only lose matches; union can double-count users
        // active in both, hence >=.
        prop_assert!(c_early <= c_whole);
        prop_assert!(c_late <= c_whole);
        prop_assert!(c_early + c_late >= c_whole);
    }

    #[test]
    fn delay_samples_are_positive(fast_frac in 0.0f64..1.0, seed in any::<u64>()) {
        let dm = DelayModel {
            fast_fraction: fast_frac,
            fast_mean: Duration(600),
            slow_mean: Duration::hours(10),
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(dm.sample(&mut rng).0 >= 1);
        }
    }

    #[test]
    fn er_graph_respects_bounds(n in 2usize..200, arcs in 0usize..400) {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let g = erdos_renyi(&mut rng, n, arcs);
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(g.arc_count() <= arcs);
        for u in 0..n as u32 {
            prop_assert!(!g.followees(u).contains(&u), "self-loop at {u}");
        }
    }
}
