//! Criterion end-to-end benchmarks of the estimation algorithms at a fixed
//! small budget on a shared tiny world — the per-algorithm CPU cost of one
//! estimation run (API-call costs are the experiment binaries' job).

use criterion::{criterion_group, criterion_main, Criterion};
use microblog_analyzer::prelude::*;
use microblog_analyzer::{Algorithm, ViewKind};
use microblog_platform::scenario::{twitter_2013, Scale, Scenario};
use microblog_platform::Duration;

fn world() -> (Scenario, AggregateQuery, AggregateQuery) {
    let s = twitter_2013(Scale::Tiny, 77);
    let kw = s.keyword("privacy").unwrap();
    let avg = AggregateQuery::avg(UserMetric::FollowerCount, kw).in_window(s.window);
    let count = AggregateQuery::count(kw).in_window(s.window);
    (s, avg, count)
}

fn bench_algorithms(c: &mut Criterion) {
    let (s, avg, count) = world();
    let analyzer = MicroblogAnalyzer::new(&s.platform, ApiProfile::twitter());
    let budget = 4_000;
    let day = Some(Duration::DAY);
    let mut group = c.benchmark_group("estimate_4k_budget");
    group.sample_size(10);
    group.bench_function("ma_tarw_avg", |b| {
        b.iter(|| analyzer.estimate(&avg, budget, Algorithm::MaTarw { interval: day }, 1))
    });
    group.bench_function("ma_srw_avg", |b| {
        b.iter(|| analyzer.estimate(&avg, budget, Algorithm::MaSrw { interval: day }, 1))
    });
    group.bench_function("srw_term_avg", |b| {
        b.iter(|| analyzer.estimate(&avg, budget, Algorithm::SrwTermInduced, 1))
    });
    group.bench_function("srw_full_avg", |b| {
        b.iter(|| analyzer.estimate(&avg, budget, Algorithm::SrwFullGraph, 1))
    });
    group.bench_function("mr_count", |b| {
        b.iter(|| {
            analyzer.estimate(
                &count,
                budget,
                Algorithm::MarkRecapture {
                    view: ViewKind::level(Duration::DAY),
                },
                1,
            )
        })
    });
    group.bench_function("tarw_auto_interval", |b| {
        b.iter(|| analyzer.estimate(&avg, budget, Algorithm::MaTarw { interval: None }, 1))
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
