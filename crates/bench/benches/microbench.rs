//! Criterion micro-benchmarks of the building blocks: graph construction,
//! walks, conductance, cascade simulation, level assignment and the
//! collision counter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use microblog_graph::conductance::sweep_conductance;
use microblog_graph::csr::CsrGraph;
use microblog_graph::sizing::CollisionCounter;
use microblog_graph::walk::simple_random_walk;
use microblog_platform::cascade::{simulate, CascadeConfig};
use microblog_platform::gen::{community_preferential, CommunityGraphConfig};
use microblog_platform::scenario::{twitter_2013, Scale};
use microblog_platform::{KeywordId, TimeWindow, Timestamp, UserId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn bench_graph_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_construction");
    for &n in &[1_000usize, 10_000] {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let edges: Vec<(u32, u32)> = (0..n * 10)
            .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
            .collect();
        group.bench_with_input(BenchmarkId::new("csr_from_edges", n), &edges, |b, edges| {
            b.iter(|| CsrGraph::from_edges(n, edges.iter().copied()))
        });
        let cfg = CommunityGraphConfig {
            nodes: n,
            communities: n / 100,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("community_gen", n), &cfg, |b, cfg| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(2);
                community_preferential(&mut rng, cfg)
            })
        });
    }
    group.finish();
}

fn bench_walks(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let cfg = CommunityGraphConfig {
        nodes: 20_000,
        communities: 100,
        ..Default::default()
    };
    let (g, _) = community_preferential(&mut rng, &cfg);
    let und = g.to_undirected();
    c.bench_function("srw_10k_steps", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            simple_random_walk(&mut &und, &mut rng, 0, 10_000).unwrap()
        })
    });
    c.bench_function("collision_counter_10k", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            let mut cc = CollisionCounter::new();
            for _ in 0..10_000 {
                cc.push(rng.gen_range(0..50_000u32), 8);
            }
            cc.estimate()
        })
    });
}

fn bench_conductance(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let g = ma_bench::ablations::stylized_level_graph(&mut rng, 2_000, 10, 3, 2);
    c.bench_function("sweep_conductance_2k", |b| {
        b.iter(|| sweep_conductance(&g, 100))
    });
}

fn bench_cascade(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let cfg = CommunityGraphConfig {
        nodes: 10_000,
        communities: 50,
        ..Default::default()
    };
    let (g, _) = community_preferential(&mut rng, &cfg);
    let window = TimeWindow::new(Timestamp::EPOCH, Timestamp::at_day(303));
    c.bench_function("cascade_10k_users", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(8);
            simulate(&mut rng, &g, &CascadeConfig::new(KeywordId(0), window))
        })
    });
}

fn bench_level_assignment(c: &mut Criterion) {
    let s = twitter_2013(Scale::Tiny, 9);
    let kw = s.keyword("new york").unwrap();
    c.bench_function("first_mention_scan_2k_users", |b| {
        b.iter(|| {
            (0..s.platform.user_count() as u32)
                .filter(|&u| s.platform.first_mention(UserId(u), kw, s.window).is_some())
                .count()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_graph_construction, bench_walks, bench_conductance,
              bench_cascade, bench_level_assignment
}
criterion_main!(benches);
