//! Plain-text rendering of experiment tables and figure series.

use crate::sweep::{ErrorCurve, ERROR_GRID};

/// Prints an aligned table: `headers` then `rows` (each row one `Vec` of
/// already-formatted cells).
///
/// # Panics
/// Panics if any row's length differs from the header's.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row width mismatch");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    println!("\n== {title} ==");
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Prints a figure as "query cost to reach relative error ε" rows, one
/// column per curve — the tabular equivalent of the paper's line plots.
pub fn print_cost_vs_error_figure(title: &str, curves: &[ErrorCurve]) {
    let mut headers: Vec<&str> = vec!["rel. error"];
    for c in curves {
        headers.push(&c.label);
    }
    let rows: Vec<Vec<String>> = ERROR_GRID
        .iter()
        .map(|&eps| {
            let mut row = vec![format!("{:.0}%", eps * 100.0)];
            for c in curves {
                row.push(match c.cost_at_error(eps) {
                    Some(cost) => format!("{cost:.0}"),
                    None => "—".to_string(),
                });
            }
            row
        })
        .collect();
    print_table(title, &headers, &rows);
}

/// Prints raw `(x, y)` series (e.g. convergence traces, frequency curves).
pub fn print_series(title: &str, x_label: &str, series: &[(&str, Vec<(f64, f64)>)]) {
    println!("\n== {title} ==");
    for (name, points) in series {
        println!("-- {name} ({x_label}, value):");
        for (x, y) in points {
            println!("   {x:>12.1}  {y:>14.3}");
        }
    }
}

/// Formats an optional cost.
pub fn fmt_cost(c: Option<f64>) -> String {
    c.map_or("—".into(), |v| format!("{v:.0}"))
}

/// Percentage improvement of `better` over `worse` costs (positive when
/// `better` is cheaper); `None` when either side is unknown.
pub fn improvement_pct(better: Option<f64>, worse: Option<f64>) -> Option<f64> {
    match (better, worse) {
        (Some(b), Some(w)) if w > 0.0 => Some(100.0 * (w - b) / w),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepPoint;

    #[test]
    fn improvement_math() {
        assert_eq!(improvement_pct(Some(50.0), Some(100.0)), Some(50.0));
        assert_eq!(improvement_pct(Some(100.0), Some(100.0)), Some(0.0));
        assert_eq!(improvement_pct(None, Some(10.0)), None);
        assert_eq!(improvement_pct(Some(10.0), None), None);
        // A regression shows as negative improvement.
        assert_eq!(improvement_pct(Some(150.0), Some(100.0)), Some(-50.0));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        print_table("t", &["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn figure_renders_without_panic() {
        let c = ErrorCurve {
            label: "X".into(),
            points: vec![SweepPoint {
                budget: 100,
                mean_cost: 90.0,
                mean_rel_err: 0.03,
                successes: 1,
                trials: 1,
            }],
        };
        print_cost_vs_error_figure("fig", &[c]);
        print_series("s", "x", &[("a", vec![(1.0, 2.0)])]);
        assert_eq!(fmt_cost(None), "—");
        assert_eq!(fmt_cost(Some(12.4)), "12");
    }
}
