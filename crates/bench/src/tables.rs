//! Table 2 and Table 3 of the paper.

use crate::report::{improvement_pct, print_table};
use crate::sweep::{error_curve, SweepConfig};
use crate::world;
use microblog_analyzer::prelude::*;
use microblog_analyzer::{Algorithm, ViewKind};
use microblog_platform::Duration;

/// Table 2: term-induced / level-by-level subgraph statistics for the
/// paper's keyword list (recall of the largest connected component,
/// average common neighbors of intra- vs inter-level edge endpoints, and
/// the intra / cross edge percentages) at `T` = 1 day.
pub fn table2() {
    let s = world::twitter_world();
    let keywords = [
        "fiscalcliff",
        "new york",
        "super bowl",
        "obamacare",
        "tunisia",
        "simvastatin",
        "oprah winfrey",
    ];
    let mut rows = Vec::new();
    for kw in keywords {
        let id = s.keyword(kw).expect("scenario keyword");
        let sub = crate::stats::term_subgraph(&s.platform, id, s.window, Duration::DAY);
        let st = sub.stats(id);
        rows.push(vec![
            kw.to_string(),
            format!("{}", st.nodes),
            format!("{:.0}%", st.recall * 100.0),
            format!(
                "{:.1}, {:.1}",
                st.common_neighbors_intra, st.common_neighbors_inter
            ),
            format!(
                "{:.0}%, {:.0}%",
                st.intra_fraction * 100.0,
                st.cross_fraction * 100.0
            ),
        ]);
    }
    print_table(
        "Table 2: term-induced & level-by-level subgraph statistics (T = 1 day)",
        &[
            "keyword",
            "nodes",
            "recall",
            "avg #common nbrs (intra, inter)",
            "% intra & cross-level",
        ],
        &rows,
    );
    println!(
        "\n(expected shape: high recall; intra endpoints share more neighbors than inter;\n \
         intra a substantial minority of edges, cross-level a few percent)"
    );
}

/// Table 3: average percentage query-cost improvement of MA-TARW over
/// MA-SRW (AVG and COUNT) and over M&R (COUNT) at the target error.
///
/// `MA_TARGET` overrides the 5% relative-error target (e.g. `MA_TARGET=0.1`
/// halves the runtime on small machines).
pub fn table3() {
    let s = world::twitter_world();
    let target: f64 = std::env::var("MA_TARGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05);
    let keywords = [
        "boston",
        "oprah winfrey",
        "simvastatin",
        "$wmt",
        "lipitor",
        "tunisia",
        "tahrir",
    ];
    let cfg = SweepConfig {
        trials: world::trials_from_env(),
        seed: world::seed_from_env(),
        stop_below_error: target * 0.8,
        ..Default::default()
    };
    let api = ApiProfile::twitter();
    let day = Some(Duration::DAY);
    let mut rows = Vec::new();
    for kw in keywords {
        let id = s.keyword(kw).expect("scenario keyword");
        let avg = AggregateQuery::avg(UserMetric::FollowerCount, id).in_window(s.window);
        let count = AggregateQuery::count(id).in_window(s.window);

        let tarw_avg = error_curve(
            &s.platform,
            &api,
            &avg,
            Algorithm::MaTarw { interval: day },
            "t",
            &cfg,
        );
        let srw_avg = error_curve(
            &s.platform,
            &api,
            &avg,
            Algorithm::MaSrw { interval: day },
            "s",
            &cfg,
        );
        let tarw_cnt = error_curve(
            &s.platform,
            &api,
            &count,
            Algorithm::MaTarw { interval: day },
            "t",
            &cfg,
        );
        let srw_cnt = error_curve(
            &s.platform,
            &api,
            &count,
            Algorithm::MaSrw { interval: day },
            "s",
            &cfg,
        );
        let mr_cnt = error_curve(
            &s.platform,
            &api,
            &count,
            Algorithm::MarkRecapture {
                view: ViewKind::level(Duration::DAY),
            },
            "m",
            &cfg,
        );

        // Compare at the requested target; when one side never reaches it
        // (coverage floors on small synthetic worlds), fall back to the
        // tightest ε both sides achieve and annotate it.
        let compare = |a: &crate::sweep::ErrorCurve, b: &crate::sweep::ErrorCurve| {
            let mut eps = vec![target];
            eps.extend(
                crate::sweep::ERROR_GRID
                    .iter()
                    .copied()
                    .filter(|&e| e > target),
            );
            for e in eps {
                if let (Some(ca), Some(cb)) = (a.cost_at_error(e), b.cost_at_error(e)) {
                    if let Some(imp) = improvement_pct(Some(ca), Some(cb)) {
                        if imp.is_finite() {
                            let mark = if e > target {
                                format!(" @{:.0}%", e * 100.0)
                            } else {
                                String::new()
                            };
                            return format!("{imp:.0}{mark}");
                        }
                    }
                }
            }
            "—".to_string()
        };
        rows.push(vec![
            kw.to_string(),
            compare(&tarw_avg, &srw_avg),
            compare(&tarw_cnt, &srw_cnt),
            compare(&tarw_cnt, &mr_cnt),
        ]);
    }
    print_table(
        &format!(
            "Table 3: % query-cost improvement of MA-TARW at {:.0}% relative error",
            target * 100.0
        ),
        &[
            "keyword",
            "vs MA-SRW (AVG)",
            "vs MA-SRW (COUNT)",
            "vs M&R (COUNT)",
        ],
        &rows,
    );
    println!("\n(paper band: 24–55% over MA-SRW, 53–78% over M&R)");
}
