//! Exact visit probabilities for the level-by-level walk.
//!
//! On a materialized term subgraph (omniscient view) the recursions of
//! §5.2 — Eq. (6) — can be solved *exactly* by dynamic programming over
//! levels, because the level order makes the dependency graph acyclic:
//!
//! * `p̄(u) = [u ∈ seeds]/s + Σ_{v∈∆(u)} p̄(v)/|∇(v)|` (process levels
//!   bottom-up),
//! * `p̂(u) = p̄(u)` at roots, else `Σ_{v∈∇(u)} p̂(v)/|∆(v)|` (top-down).
//!
//! These exact values validate the analyzer's `ESTIMATE-p` (whose draws
//! must be unbiased for them) and the structural identities
//! `Σ_roots p̄ = 1`, `Σ_sinks p̂ = 1`.

use crate::stats::TermSubgraph;
use microblog_platform::UserId;
use std::collections::HashSet;

/// Exact per-node visit probabilities, indexed like `TermSubgraph::users`.
#[derive(Clone, Debug)]
pub struct ExactVisitProbabilities {
    /// Up-phase probability `p̄(u)`.
    pub p_up: Vec<f64>,
    /// Down-phase probability `p̂(u)`.
    pub p_down: Vec<f64>,
}

/// Per-node inter-level neighborhood split (`∇`, `∆`) inside the subgraph.
fn level_splits(sub: &TermSubgraph) -> (Vec<Vec<u32>>, Vec<Vec<u32>>) {
    let n = sub.graph.node_count();
    let mut above = vec![Vec::new(); n];
    let mut below = vec![Vec::new(); n];
    for (u, v) in sub.graph.edges() {
        let (lu, lv) = (sub.levels[u as usize], sub.levels[v as usize]);
        match lu.cmp(&lv) {
            std::cmp::Ordering::Less => {
                below[u as usize].push(v);
                above[v as usize].push(u);
            }
            std::cmp::Ordering::Greater => {
                above[u as usize].push(v);
                below[v as usize].push(u);
            }
            std::cmp::Ordering::Equal => {} // intra-level: not in the view
        }
    }
    (above, below)
}

/// Solves the Eq. (6) recursions exactly for the walk seeded at `seeds`
/// (original user ids; non-members are ignored).
pub fn exact_visit_probabilities(sub: &TermSubgraph, seeds: &[UserId]) -> ExactVisitProbabilities {
    let n = sub.graph.node_count();
    let (above, below) = level_splits(sub);
    let member_seed: HashSet<usize> = {
        let index: std::collections::HashMap<UserId, usize> =
            sub.users.iter().enumerate().map(|(i, &u)| (u, i)).collect();
        seeds.iter().filter_map(|u| index.get(u).copied()).collect()
    };
    let s = seeds.len().max(1) as f64;

    // Node order by level, descending (bottom of Figure 6 first).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&u| std::cmp::Reverse(sub.levels[u]));

    let mut p_up = vec![0.0f64; n];
    for &u in &order {
        let mut p = if member_seed.contains(&u) {
            1.0 / s
        } else {
            0.0
        };
        for &v in &below[u] {
            p += p_up[v as usize] / above[v as usize].len().max(1) as f64;
        }
        p_up[u] = p;
    }

    let mut p_down = vec![0.0f64; n];
    for &u in order.iter().rev() {
        if above[u].is_empty() {
            p_down[u] = p_up[u];
        } else {
            p_down[u] = above[u]
                .iter()
                .map(|&v| p_down[v as usize] / below[v as usize].len().max(1) as f64)
                .sum();
        }
    }
    ExactVisitProbabilities { p_up, p_down }
}

impl ExactVisitProbabilities {
    /// Σ over roots of `p̄` — must be 1 when every seed is a member
    /// (each walk instance ends at exactly one root).
    pub fn root_mass(&self, sub: &TermSubgraph) -> f64 {
        let (above, _) = level_splits(sub);
        (0..sub.graph.node_count())
            .filter(|&u| above[u].is_empty())
            .map(|u| self.p_up[u])
            .sum()
    }

    /// Σ over sinks of `p̂` — must equal the root mass (each down phase
    /// ends at exactly one sink).
    pub fn sink_mass(&self, sub: &TermSubgraph) -> f64 {
        let (_, below) = level_splits(sub);
        (0..sub.graph.node_count())
            .filter(|&u| below[u].is_empty())
            .map(|u| self.p_down[u])
            .sum()
    }
}

/// The `estimate_p_check` experiment: mean of many `ESTIMATE-p` draws vs
/// the exact probability, for a sample of subgraph nodes.
pub fn estimate_p_check() {
    use crate::report::print_table;
    use crate::world;
    use microblog_analyzer::query::AggregateQuery;
    use microblog_analyzer::seeds::fetch_seeds;
    use microblog_analyzer::view::{QueryGraph, ViewKind};
    use microblog_analyzer::walker::tarw::ProbabilityEstimator;
    use microblog_api::{ApiProfile, CachingClient, MicroblogClient};
    use microblog_platform::{Duration, UserMetric};
    use rand::SeedableRng;

    let s = world::twitter_world();
    let kw = s.keyword("privacy").expect("keyword");
    let sub = crate::stats::term_subgraph(&s.platform, kw, s.window, Duration::DAY);
    let query = AggregateQuery::avg(UserMetric::FollowerCount, kw).in_window(s.window);

    let mut client = CachingClient::new(MicroblogClient::new(&s.platform, ApiProfile::twitter()));
    let seeds = fetch_seeds(&mut client, &query).expect("seeds");
    let exact = exact_visit_probabilities(&sub, &seeds);
    println!(
        "subgraph: {} nodes; root mass {:.6}, sink mass {:.6} (both should be 1)",
        sub.graph.node_count(),
        exact.root_mass(&sub),
        exact.sink_mass(&sub)
    );

    let mut graph = QueryGraph::new(&mut client, &query, ViewKind::level(Duration::DAY));
    let mut prob = ProbabilityEstimator::new(&seeds, false);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(world::seed_from_env());
    let draws = 400;
    let mut rows = Vec::new();
    // Sample nodes across the probability range.
    let mut picks: Vec<usize> = (0..sub.graph.node_count()).collect();
    picks.sort_by(|&a, &b| exact.p_up[b].partial_cmp(&exact.p_up[a]).unwrap());
    let stride = (picks.len() / 8).max(1);
    for &i in picks.iter().step_by(stride).take(8) {
        let u = sub.users[i];
        let mut total = 0.0;
        for _ in 0..draws {
            total += prob.draw_up(&mut graph, &mut rng, u).expect("draw");
        }
        let mean = total / draws as f64;
        let p = exact.p_up[i];
        rows.push(vec![
            format!("{u}"),
            format!("{p:.5}"),
            format!("{mean:.5}"),
            if p > 0.0 {
                format!("{:+.1}%", 100.0 * (mean - p) / p)
            } else {
                "—".into()
            },
        ]);
    }
    print_table(
        &format!("ESTIMATE-p vs exact p̄ ({} draws per node)", draws),
        &["user", "exact p̄", "mean of draws", "rel. dev"],
        &rows,
    );
    println!("\n(unbiasedness: deviations should shrink as draws grow; a few % at 400 draws)");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::term_subgraph;
    use microblog_platform::scenario::{twitter_2013, Scale};
    use microblog_platform::{Duration, TimeWindow};

    fn subgraph_and_seeds() -> (TermSubgraph, Vec<UserId>) {
        let s = twitter_2013(Scale::Tiny, 7);
        let kw = s.keyword("new york").unwrap();
        let sub = term_subgraph(&s.platform, kw, s.window, Duration::DAY);
        // Seeds: authors of last-week posts (the search-API view).
        let week = TimeWindow::trailing(s.platform.now(), Duration::WEEK);
        let mut seeds: Vec<UserId> = s
            .platform
            .search_posts(kw, week)
            .iter()
            .map(|&p| s.platform.post(p).author)
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        (sub, seeds)
    }

    #[test]
    fn probability_masses_are_conserved() {
        let (sub, seeds) = subgraph_and_seeds();
        assert!(!seeds.is_empty());
        let exact = exact_visit_probabilities(&sub, &seeds);
        // Each instance reaches exactly one root; every seed is a member
        // (it posted inside the window), so root mass is exactly 1.
        let root_mass = exact.root_mass(&sub);
        assert!((root_mass - 1.0).abs() < 1e-9, "root mass {root_mass}");
        let sink_mass = exact.sink_mass(&sub);
        assert!((sink_mass - 1.0).abs() < 1e-9, "sink mass {sink_mass}");
        // Probabilities are valid.
        for (&pu, &pd) in exact.p_up.iter().zip(&exact.p_down) {
            assert!((0.0..=1.0 + 1e-9).contains(&pu));
            assert!((0.0..=1.0 + 1e-9).contains(&pd));
        }
        // Seeds themselves have p_up >= 1/s.
        let s = seeds.len() as f64;
        for (i, u) in sub.users.iter().enumerate() {
            if seeds.contains(u) {
                assert!(exact.p_up[i] >= 1.0 / s - 1e-12);
            }
        }
    }

    #[test]
    fn estimate_p_draws_are_unbiased_against_exact() {
        use microblog_analyzer::query::AggregateQuery;
        use microblog_analyzer::seeds::fetch_seeds;
        use microblog_analyzer::view::{QueryGraph, ViewKind};
        use microblog_analyzer::walker::tarw::ProbabilityEstimator;
        use microblog_api::{ApiProfile, CachingClient, MicroblogClient};
        use microblog_platform::UserMetric;
        use rand::SeedableRng;

        let s = twitter_2013(Scale::Tiny, 7);
        let kw = s.keyword("new york").unwrap();
        let sub = term_subgraph(&s.platform, kw, s.window, Duration::DAY);
        let query = AggregateQuery::avg(UserMetric::FollowerCount, kw).in_window(s.window);
        let mut client =
            CachingClient::new(MicroblogClient::new(&s.platform, ApiProfile::twitter()));
        let seeds = fetch_seeds(&mut client, &query).unwrap();
        let exact = exact_visit_probabilities(&sub, &seeds);
        let mut graph = QueryGraph::new(&mut client, &query, ViewKind::level(Duration::DAY));
        let mut prob = ProbabilityEstimator::new(&seeds, false);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);

        // Pick the three highest-probability nodes (stable targets).
        let mut order: Vec<usize> = (0..sub.graph.node_count()).collect();
        order.sort_by(|&a, &b| exact.p_up[b].partial_cmp(&exact.p_up[a]).unwrap());
        let draws = 800;
        for &i in order.iter().take(3) {
            let u = sub.users[i];
            let mean: f64 = (0..draws)
                .map(|_| prob.draw_up(&mut graph, &mut rng, u).unwrap())
                .sum::<f64>()
                / draws as f64;
            let p = exact.p_up[i];
            assert!(
                (mean - p).abs() < (0.2 * p).max(0.02),
                "node {u}: exact {p:.4}, mean of {draws} draws {mean:.4}"
            );
        }
    }

    #[test]
    fn chain_probabilities_are_all_one_with_single_seed() {
        // A 4-node path with one seed at the bottom: every p is 1.
        use microblog_graph::csr::CsrGraph;
        let sub = TermSubgraph {
            graph: CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]),
            users: (0..4).map(UserId).collect(),
            levels: vec![0, 1, 2, 3],
        };
        let exact = exact_visit_probabilities(&sub, &[UserId(3)]);
        for i in 0..4 {
            assert!(
                (exact.p_up[i] - 1.0).abs() < 1e-12,
                "p_up[{i}] = {}",
                exact.p_up[i]
            );
            assert!((exact.p_down[i] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn diamond_splits_probability() {
        // Levels: 0 (root r) — 1 (a, b) — 2 (sink s, the only seed).
        //   r—a, r—b, a—s, b—s.
        use microblog_graph::csr::CsrGraph;
        let sub = TermSubgraph {
            graph: CsrGraph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]),
            users: (0..4).map(UserId).collect(),
            levels: vec![0, 1, 1, 2],
        };
        let exact = exact_visit_probabilities(&sub, &[UserId(3)]);
        // Up: seed s always visited; a and b each with prob 1/2; root 1.
        assert!((exact.p_up[3] - 1.0).abs() < 1e-12);
        assert!((exact.p_up[1] - 0.5).abs() < 1e-12);
        assert!((exact.p_up[2] - 0.5).abs() < 1e-12);
        assert!((exact.p_up[0] - 1.0).abs() < 1e-12);
        // Down from the root mirrors it.
        assert!((exact.p_down[0] - 1.0).abs() < 1e-12);
        assert!((exact.p_down[1] - 0.5).abs() < 1e-12);
        assert!((exact.p_down[3] - 1.0).abs() < 1e-12);
    }
}
