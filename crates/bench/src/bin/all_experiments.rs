//! Runs every table and figure in sequence (hours at medium scale; set
//! MA_SCALE=tiny or small for a quick pass).
fn main() {
    let t0 = std::time::Instant::now();
    ma_bench::tables::table2();
    ma_bench::figures::fig07();
    ma_bench::ablations::ablation_conductance();
    ma_bench::figures::burnin();
    ma_bench::figures::fig02();
    ma_bench::figures::fig03();
    ma_bench::figures::fig04();
    ma_bench::figures::fig05();
    ma_bench::figures::fig08();
    ma_bench::figures::fig09();
    ma_bench::figures::fig10();
    ma_bench::figures::fig11();
    ma_bench::figures::fig12();
    ma_bench::figures::fig13();
    ma_bench::figures::fig14();
    ma_bench::tables::table3();
    ma_bench::ablations::ablation_root_cache();
    ma_bench::exactp::estimate_p_check();
    eprintln!("\nall experiments done in {:.0?}", t0.elapsed());
}
