//! Regenerates Figure 02 of the paper. See DESIGN.md's experiment index.
fn main() {
    ma_bench::figures::fig02();
}
