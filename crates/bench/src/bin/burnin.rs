//! §4.1 burn-in measurement across graph designs.
fn main() {
    ma_bench::figures::burnin();
}
