//! §5.2 root-probability-cache ablation for MA-TARW.
fn main() {
    ma_bench::ablations::ablation_root_cache();
}
