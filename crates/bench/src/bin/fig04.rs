//! Regenerates Figure 04 of the paper. See DESIGN.md's experiment index.
fn main() {
    ma_bench::figures::fig04();
}
