//! Regenerates Table 3 of the paper (MA-TARW improvement percentages).
fn main() {
    ma_bench::tables::table3();
}
