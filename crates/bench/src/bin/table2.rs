//! Regenerates Table 2 of the paper (subgraph statistics).
fn main() {
    ma_bench::tables::table2();
}
