//! `ma-bench` — the repo's reproducible perf harness.
//!
//! `ma-bench perf` drives the service with a fixed seeded workload
//! (mixed concurrent queries against a shared world, cold and warm
//! cache, coalescing on and off) plus a direct walker step-loop
//! measurement, a recovery section — checkpoint-cadence step-rate
//! overhead (off/1k/10k) and cold journal replay of 100 in-flight
//! jobs — and a fetch-pipeline matrix (simulated RTT ∈ {1, 50, 100} ms
//! × pipeline off/on, cold QPS each way), and writes the numbers to
//! `BENCH_10.json` at the repo root. That file is the perf trajectory
//! later PRs append to, so the schema is stable and `ma-bench check
//! FILE` verifies it — CI fails on schema drift, never on absolute
//! numbers (which depend on hardware).
//!
//! The workload is deterministic (fixed world seed, fixed job seeds);
//! only the wall-clock rates and the coalescing race outcomes vary
//! run-to-run. `--smoke` shrinks everything for CI.

use microblog_analyzer::prelude::*;
use microblog_analyzer::walker::srw::{self, SrwConfig};
use microblog_analyzer::{CheckpointCtl, CheckpointSink, WalkerCheckpoint};
use microblog_api::{CachingClient, InflightPolicy, MicroblogClient, QueryBudget};
use microblog_platform::scenario::{twitter_2013, Scale, Scenario};
use microblog_platform::{
    ApiBackend, Duration, Fault, KeywordId, Platform, PostId, TimeWindow, UserId,
};
use microblog_service::{
    JobSpec, Journal, JournalRecord, Service, ServiceConfig, TelemetryClock, TelemetryMode,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// World seed shared by every `perf` invocation, so runs are comparable.
const WORLD_SEED: u64 = 2014;

/// Simulated network round-trip per platform fetch in the service
/// scenarios. The in-memory store answers in microseconds — no real
/// microblog API does — so without a realistic in-flight window,
/// concurrent misses would never overlap and coalescing (or its
/// absence) would be invisible. 1ms keeps the full run under a few
/// seconds while dwarfing scheduler jitter.
const SIMULATED_RTT: std::time::Duration = std::time::Duration::from_millis(1);

/// [`ApiBackend`] wrapper stalling every fetch by a fixed round-trip
/// time. The stall is a wall-clock sleep — the bench crate is exempt
/// from the wall-clock lint, and the charged/logical accounting never
/// sees it. Only the fetch itself is slow; cache hits stay instant.
/// Concurrent fetches stall independently (one sleeping thread each),
/// so a pipeline that keeps N fetches in flight completes them in ~one
/// RTT — the completion model the fetch scheduler is built against.
#[derive(Debug)]
struct SlowBackend {
    inner: Arc<Platform>,
    rtt: std::time::Duration,
}

impl ApiBackend for SlowBackend {
    fn store(&self) -> &Platform {
        &self.inner
    }

    fn fetch_search(&self, kw: KeywordId, window: TimeWindow) -> Result<Vec<PostId>, Fault> {
        std::thread::sleep(self.rtt);
        self.inner.fetch_search(kw, window)
    }

    fn fetch_timeline(&self, u: UserId) -> Result<&[PostId], Fault> {
        std::thread::sleep(self.rtt);
        self.inner.fetch_timeline(u)
    }

    fn fetch_connections(&self, u: UserId) -> Result<(&[u32], &[u32]), Fault> {
        std::thread::sleep(self.rtt);
        self.inner.fetch_connections(u)
    }
}

/// Current BENCH_10.json schema version. v4 added the fetch-pipeline
/// matrix (RTT × pipeline cold QPS, inflight-depth/announce-batch
/// columns, identity booleans); v3 added the queue/exec
/// latency-percentile columns.
const SCHEMA_VERSION: u64 = 4;

/// The simulated RTTs the pipeline matrix sweeps, in milliseconds.
const PIPELINE_RTTS_MS: [u64; 3] = [1, 50, 100];

/// Keys every BENCH_10.json must carry, with their JSON kind. `check`
/// fails on a missing key, a kind mismatch, or a stale
/// `schema_version` — that is the schema gate.
const SCHEMA: &[(&str, &str)] = &[
    ("schema_version", "integer"),
    ("smoke", "bool"),
    ("world_scale", "string"),
    ("world_seed", "integer"),
    ("workers", "integer"),
    ("jobs", "integer"),
    ("budget_per_job", "integer"),
    ("simulated_rtt_ms", "integer"),
    ("queries_per_sec_cold", "number"),
    ("queries_per_sec_warm", "number"),
    ("walker_steps_measured", "integer"),
    ("walker_steps_per_sec", "number"),
    ("charged_calls", "integer"),
    ("actual_calls", "integer"),
    ("baseline_actual_calls", "integer"),
    ("actual_call_reduction", "number"),
    ("coalesce_leads", "integer"),
    ("coalesce_waits", "integer"),
    ("coalesce_aborts", "integer"),
    ("coalesced_miss_ratio", "number"),
    ("peak_inflight_dedup", "integer"),
    // Latency section (schema v3): per-stage percentiles over the cold
    // coalesced run, read from the service's log2 histograms. Values are
    // inclusive bucket upper bounds in microseconds (logical telemetry).
    ("queue_wait_us_p50", "integer"),
    ("queue_wait_us_p95", "integer"),
    ("queue_wait_us_p99", "integer"),
    ("exec_us_p50", "integer"),
    ("exec_us_p95", "integer"),
    ("exec_us_p99", "integer"),
    // Recovery section: checkpoint-cadence step-rate overhead and
    // cold-recovery (journal replay + resumed-job drain) timings.
    ("recovery_walker_steps", "integer"),
    ("recovery_steps_per_sec_no_checkpoint", "number"),
    ("recovery_steps_per_sec_every_1k", "number"),
    ("recovery_steps_per_sec_every_10k", "number"),
    ("recovery_checkpoint_overhead_1k", "number"),
    ("recovery_checkpoint_overhead_10k", "number"),
    ("recovery_cold_jobs", "integer"),
    ("recovery_cold_start_secs", "number"),
    ("recovery_cold_drain_secs", "number"),
    ("recovery_cold_resumed_jobs", "integer"),
    // Pipeline section (schema v4): cold QPS for an MA-SRW workload at
    // each simulated RTT with the fetch pipeline off vs on, plus the
    // pipeline shape and the off/on identity checks (charged totals and
    // estimate bits must never differ — pipelining is latency-only).
    ("pipeline_jobs", "integer"),
    ("pipeline_budget_per_job", "integer"),
    ("pipeline_chains", "integer"),
    ("pipeline_inflight_depth", "integer"),
    ("pipeline_step_cap", "integer"),
    ("pipeline_announce_batch", "integer"),
    ("pipeline_qps_cold_rtt1_off", "number"),
    ("pipeline_qps_cold_rtt1_on", "number"),
    ("pipeline_speedup_rtt1", "number"),
    ("pipeline_qps_cold_rtt50_off", "number"),
    ("pipeline_qps_cold_rtt50_on", "number"),
    ("pipeline_speedup_rtt50", "number"),
    ("pipeline_qps_cold_rtt100_off", "number"),
    ("pipeline_qps_cold_rtt100_on", "number"),
    ("pipeline_speedup_rtt100", "number"),
    ("pipeline_charged_identical", "bool"),
    ("pipeline_estimates_identical", "bool"),
];

struct PerfParams {
    smoke: bool,
    workers: usize,
    /// Same-seed replicas per keyword — the stampede half of the mix.
    replicas: usize,
    /// Distinct-seed jobs per keyword — the overlapping-but-not-identical half.
    varied: usize,
    budget: u64,
    walker_steps: usize,
    walker_trials: usize,
    /// Pipeline-matrix shape: concurrent MA-SRW jobs per cell (one
    /// worker each), interleaved chains per job, and the per-job budget.
    pipeline_jobs: usize,
    pipeline_chains: usize,
    pipeline_budget: u64,
    /// Outstanding-prefetch depth for the matrix cells. A round announces
    /// roughly `chains x avg-degree` candidate timelines; the depth must
    /// cover most of that batch or the batch resolves in `batch/depth`
    /// serial waves and the speedup caps out well below the chain count.
    pipeline_inflight: InflightPolicy,
    /// Per-chain step cap for the matrix jobs. Must clear burn-in with
    /// room for thinned samples; keeping it tight bounds the CPU-only
    /// tail of free steps over the memoized neighborhood so wall time
    /// stays dominated by fetch latency.
    pipeline_step_cap: usize,
}

impl PerfParams {
    fn new(smoke: bool) -> Self {
        if smoke {
            PerfParams {
                smoke,
                workers: 4,
                replicas: 3,
                varied: 1,
                // TARW's time-bucket seeding needs ~2,250 calls on the
                // tiny world before its first sample; anything lower
                // fails the workload's 'boston' jobs with NoSamples.
                budget: 2_500,
                walker_steps: 20_000,
                walker_trials: 1,
                pipeline_jobs: 2,
                pipeline_chains: 32,
                pipeline_budget: 1_500,
                pipeline_inflight: InflightPolicy::Fixed(256),
                pipeline_step_cap: 200,
            }
        } else {
            PerfParams {
                smoke,
                workers: 8,
                replicas: 4,
                varied: 4,
                budget: 4_000,
                walker_steps: 150_000,
                walker_trials: 3,
                pipeline_jobs: 4,
                pipeline_chains: 32,
                pipeline_budget: 1_500,
                pipeline_inflight: InflightPolicy::Fixed(256),
                pipeline_step_cap: 200,
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("perf") => perf(&args[1..]),
        Some("check") => check(&args[1..]),
        _ => {
            eprintln!("usage: ma-bench perf [--smoke] [--out PATH] | ma-bench check PATH");
            2
        }
    };
    std::process::exit(code);
}

fn perf(args: &[String]) -> i32 {
    let mut smoke = false;
    let mut out = String::from("BENCH_10.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(path) => out = path.clone(),
                None => {
                    eprintln!("--out needs a path");
                    return 2;
                }
            },
            other => {
                eprintln!("unknown flag '{other}'");
                return 2;
            }
        }
    }
    let params = PerfParams::new(smoke);
    let scenario = twitter_2013(Scale::Tiny, WORLD_SEED);
    eprintln!(
        "[perf] world: {} users, {} posts (seed {WORLD_SEED})",
        scenario.platform.user_count(),
        scenario.platform.post_count()
    );
    let json = run_perf(&params, &scenario);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        return 1;
    }
    eprintln!("[perf] wrote {out}");
    0
}

/// The seeded job mix: per keyword, `replicas` jobs sharing one seed
/// (identical trajectories racing on identical keys — the stampede) and
/// `varied` jobs with distinct seeds (overlapping hot nodes). Keywords
/// alternate algorithms so the queues mix walk shapes.
fn workload(scenario: &Scenario, params: &PerfParams) -> Vec<JobSpec> {
    let day = Some(Duration::DAY);
    let keywords = ["privacy", "new york", "boston"];
    let algorithms = [
        Algorithm::MaSrw { interval: day },
        Algorithm::SrwFullGraph,
        Algorithm::MaTarw { interval: day },
    ];
    let mut specs = Vec::new();
    for (k, name) in keywords.iter().enumerate() {
        let kw = match scenario.keyword(name) {
            Some(kw) => kw,
            None => continue,
        };
        let query = AggregateQuery::avg(UserMetric::FollowerCount, kw).in_window(scenario.window);
        let algorithm = algorithms[k % algorithms.len()];
        for r in 0..params.replicas {
            let _ = r;
            specs.push(JobSpec::new(query.clone(), algorithm, params.budget, 1));
        }
        for v in 0..params.varied {
            specs.push(JobSpec::new(
                query.clone(),
                algorithm,
                params.budget,
                2 + v as u64,
            ));
        }
    }
    specs
}

struct ScenarioResult {
    elapsed_secs: f64,
    snapshot: microblog_service::MetricsSnapshot,
}

/// Submits the whole workload at once against a fresh service (cold
/// cache) and joins every job. With `coalesce` off this is the
/// no-coalescing baseline the reduction is measured against.
fn run_cold(scenario: &Scenario, params: &PerfParams, coalesce: bool) -> (Service, ScenarioResult) {
    let platform = Arc::new(scenario.platform.clone());
    let service = Service::new(
        Arc::clone(&platform),
        ApiProfile::twitter(),
        ServiceConfig {
            workers: params.workers,
            coalesce,
            backend: Some(Arc::new(SlowBackend {
                inner: platform,
                rtt: SIMULATED_RTT,
            })),
            ..ServiceConfig::default()
        },
    );
    let specs = workload(scenario, params);
    let start = Instant::now();
    let handles: Vec<_> = specs
        .into_iter()
        .map(|spec| service.submit(spec).expect("unlimited quota admits"))
        .collect();
    for handle in &handles {
        handle
            .join()
            .into_result()
            .expect("fault-free workload estimates");
    }
    let elapsed_secs = start.elapsed().as_secs_f64();
    let snapshot = service.metrics_snapshot();
    (
        service,
        ScenarioResult {
            elapsed_secs,
            snapshot,
        },
    )
}

/// Re-runs the same workload on the already-warm service.
fn run_warm(service: &Service, scenario: &Scenario, params: &PerfParams) -> f64 {
    let specs = workload(scenario, params);
    let start = Instant::now();
    let handles: Vec<_> = specs
        .into_iter()
        .map(|spec| service.submit(spec).expect("unlimited quota admits"))
        .collect();
    for handle in &handles {
        handle
            .join()
            .into_result()
            .expect("fault-free workload estimates");
    }
    start.elapsed().as_secs_f64()
}

/// Times the SRW step loop directly: unlimited budget, hard step cap, so
/// the walk performs exactly `steps` transitions and the rate isolates
/// per-step cost (neighbor lookup + sampling), not budget accounting.
fn walker_steps_per_sec(scenario: &Scenario, steps: usize, trials: usize) -> f64 {
    let kw = scenario.keyword("privacy").expect("world has 'privacy'");
    let query = AggregateQuery::avg(UserMetric::FollowerCount, kw).in_window(scenario.window);
    let mut best = 0.0f64;
    for trial in 0..trials.max(1) {
        let mut client = CachingClient::new(MicroblogClient::with_budget(
            &scenario.platform,
            ApiProfile::twitter(),
            QueryBudget::unlimited(),
        ));
        let mut rng = ChaCha8Rng::seed_from_u64(7 + trial as u64);
        let mut cfg = SrwConfig::new(ViewKind::level(Duration::DAY));
        cfg.max_steps = steps;
        let start = Instant::now();
        let est = srw::estimate(&mut client, &query, &cfg, &mut rng);
        let rate = steps as f64 / start.elapsed().as_secs_f64();
        assert!(est.is_ok(), "walker measurement run failed: {est:?}");
        best = best.max(rate);
    }
    best
}

/// A fresh scratch directory under the system temp dir; any leftover
/// from an earlier run is removed first.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ma-bench-recovery-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch directory creates");
    dir
}

/// [`CheckpointSink`] journaling every checkpoint — the same durable
/// path the service's workers pay, fsync batching included.
struct JournalSink {
    journal: Journal,
}

impl CheckpointSink for JournalSink {
    fn record(&self, cp: &WalkerCheckpoint) {
        self.journal
            .append(&JournalRecord::Checkpoint {
                job: 0,
                checkpoint: Box::new(cp.clone()),
            })
            .expect("scratch journal appends");
    }
}

/// [`CheckpointSink`] keeping only the first checkpoint it sees.
struct CaptureFirst(Mutex<Option<WalkerCheckpoint>>);

impl CheckpointSink for CaptureFirst {
    fn record(&self, cp: &WalkerCheckpoint) {
        let mut slot = self.0.lock().expect("capture lock");
        if slot.is_none() {
            *slot = Some(cp.clone());
        }
    }
}

/// The walker step loop of [`walker_steps_per_sec`], with checkpoints
/// flowing into a real journal every `every` safe points (`0` disables
/// checkpointing entirely — the baseline the overhead is measured
/// against).
fn walker_rate_at_cadence(scenario: &Scenario, steps: usize, trials: usize, every: u64) -> f64 {
    let kw = scenario.keyword("privacy").expect("world has 'privacy'");
    let query = AggregateQuery::avg(UserMetric::FollowerCount, kw).in_window(scenario.window);
    let dir = scratch_dir(&format!("cadence-{every}"));
    let clock = Arc::new(TelemetryClock::new(TelemetryMode::Logical));
    let (journal, _) = Journal::open(&dir, clock).expect("scratch journal opens");
    let sink = JournalSink { journal };
    let mut best = 0.0f64;
    for trial in 0..trials.max(1) {
        let mut client = CachingClient::new(MicroblogClient::with_budget(
            &scenario.platform,
            ApiProfile::twitter(),
            QueryBudget::unlimited(),
        ));
        let mut rng = ChaCha8Rng::seed_from_u64(7 + trial as u64);
        let mut cfg = SrwConfig::new(ViewKind::level(Duration::DAY));
        cfg.max_steps = steps;
        let mut ctl = if every > 0 {
            CheckpointCtl::new(every, &sink)
        } else {
            CheckpointCtl::disabled()
        };
        ctl.set_job("srw", 7 + trial as u64);
        let start = Instant::now();
        let est = srw::estimate_recoverable(&mut client, &query, &cfg, &mut rng, &mut ctl, None);
        let rate = steps as f64 / start.elapsed().as_secs_f64();
        assert!(est.is_ok(), "cadence measurement run failed: {est:?}");
        best = best.max(rate);
    }
    let _ = std::fs::remove_dir_all(&dir);
    best
}

struct ColdRecovery {
    jobs: usize,
    start_secs: f64,
    drain_secs: f64,
    resumed: usize,
}

/// Synthesizes the journal a crashed process would leave — `jobs`
/// admitted, reserved, mid-walk-checkpointed jobs, none settled — and
/// times a cold [`Service::start`] over it (replay + requeue) plus the
/// drain of every resumed job to completion.
fn cold_recovery(scenario: &Scenario, params: &PerfParams, jobs: usize) -> ColdRecovery {
    let kw = scenario.keyword("privacy").expect("world has 'privacy'");
    let query = AggregateQuery::avg(UserMetric::FollowerCount, kw).in_window(scenario.window);
    let algorithm = Algorithm::MaSrw {
        interval: Some(Duration::DAY),
    };
    // Capture one genuine mid-walk checkpoint by replaying exactly the
    // run the service would execute for this spec (seed 1, limited
    // budget, level-day view).
    let capture = CaptureFirst(Mutex::new(None));
    let mut client = CachingClient::new(MicroblogClient::with_budget(
        &scenario.platform,
        ApiProfile::twitter(),
        QueryBudget::limited(params.budget),
    ));
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let cfg = SrwConfig::new(ViewKind::level(Duration::DAY));
    let mut ctl = CheckpointCtl::new(100, &capture);
    ctl.set_job(algorithm.name(), 1);
    let est = srw::estimate_recoverable(&mut client, &query, &cfg, &mut rng, &mut ctl, None);
    assert!(est.is_ok(), "checkpoint capture run failed: {est:?}");
    let checkpoint = capture
        .0
        .into_inner()
        .expect("capture lock")
        .expect("walk reached the checkpoint cadence");

    let spec = JobSpec::new(query, algorithm, params.budget, 1);
    let dir = scratch_dir("cold");
    {
        let clock = Arc::new(TelemetryClock::new(TelemetryMode::Logical));
        let (journal, _) = Journal::open(&dir, clock).expect("scratch journal opens");
        for job in 0..jobs as u64 {
            journal
                .append(&JournalRecord::Admit {
                    job,
                    spec: spec.clone(),
                })
                .expect("append");
            journal
                .append(&JournalRecord::Reserve {
                    job,
                    amount: params.budget,
                })
                .expect("append");
            journal
                .append(&JournalRecord::Checkpoint {
                    job,
                    checkpoint: Box::new(checkpoint.clone()),
                })
                .expect("append");
        }
        journal.sync().expect("sync");
    }

    let start = Instant::now();
    let service = Service::start(
        Arc::new(scenario.platform.clone()),
        ApiProfile::twitter(),
        ServiceConfig {
            workers: params.workers,
            journal: Some(dir.clone()),
            ..ServiceConfig::default()
        },
    )
    .expect("recovery journal opens");
    let start_secs = start.elapsed().as_secs_f64();
    let resumed = service.recovery().map_or(0, |r| r.resumed_jobs) as usize;
    let drain = Instant::now();
    for handle in service.recovered_jobs() {
        handle
            .join()
            .into_result()
            .expect("recovered job completes");
    }
    let drain_secs = drain.elapsed().as_secs_f64();
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    ColdRecovery {
        jobs,
        start_secs,
        drain_secs,
        resumed,
    }
}

/// One pipeline-matrix cell: cold QPS plus the identity evidence.
struct PipelineCell {
    qps: f64,
    /// Total calls charged across the cell's jobs.
    charged: u64,
    /// Estimate bits per job, in submission order.
    estimate_bits: Vec<u64>,
}

/// Runs the matrix workload — `pipeline_jobs` concurrent MA-SRW jobs,
/// each interleaving `pipeline_chains` chains — against a cold service
/// whose backend stalls every fetch by `rtt_ms`, with the fetch
/// pipeline off or on. Everything except the `pipeline` flag is held
/// fixed, so the off/on cells must agree bit-for-bit on charges and
/// estimates.
fn run_pipeline_cell(
    scenario: &Scenario,
    params: &PerfParams,
    rtt_ms: u64,
    pipeline: bool,
) -> PipelineCell {
    let platform = Arc::new(scenario.platform.clone());
    let service = Service::new(
        Arc::clone(&platform),
        ApiProfile::twitter(),
        ServiceConfig {
            workers: params.pipeline_jobs,
            pipeline,
            chains: params.pipeline_chains,
            inflight: params.pipeline_inflight,
            // Each matrix job pays full cold coverage (no cross-job
            // coalescing) and stops soon after burn-in: the cell then
            // measures fetch latency structure, not the CPU-bound
            // free-spin over an already-memoized neighborhood.
            coalesce: false,
            step_cap: Some(params.pipeline_step_cap),
            backend: Some(Arc::new(SlowBackend {
                inner: platform,
                rtt: std::time::Duration::from_millis(rtt_ms),
            })),
            ..ServiceConfig::default()
        },
    );
    let kw = scenario.keyword("privacy").expect("world has 'privacy'");
    let query = AggregateQuery::avg(UserMetric::FollowerCount, kw).in_window(scenario.window);
    let algorithm = Algorithm::MaSrw {
        interval: Some(Duration::DAY),
    };
    let specs: Vec<JobSpec> = (0..params.pipeline_jobs as u64)
        .map(|j| JobSpec::new(query.clone(), algorithm, params.pipeline_budget, 1 + j))
        .collect();
    let jobs = specs.len();
    let start = Instant::now();
    let handles: Vec<_> = specs
        .into_iter()
        .map(|spec| service.submit(spec).expect("unlimited quota admits"))
        .collect();
    let outputs: Vec<_> = handles
        .iter()
        .map(|h| {
            h.join()
                .into_result()
                .expect("pipeline matrix job estimates")
        })
        .collect();
    let elapsed = start.elapsed().as_secs_f64();
    if pipeline {
        let s = service.sched_stats();
        eprintln!(
            "[perf]     sched: announced {} prefetched {} hits {} waits {} claimed {} stranded {} peak {}",
            s.announced, s.prefetched, s.hits, s.waits, s.claimed, s.stranded, s.peak_inflight
        );
    }
    let (lh, sh, miss, actual): (u64, u64, u64, u64) = outputs.iter().fold((0, 0, 0, 0), |a, o| {
        (
            a.0 + o.cache.local_hits,
            a.1 + o.cache.shared_hits,
            a.2 + o.cache.misses,
            a.3 + o.cache.actual_calls,
        )
    });
    eprintln!(
        "[perf]     cache({}): local {} shared {} misses {} actual_calls {}",
        if pipeline { "on" } else { "off" },
        lh,
        sh,
        miss,
        actual
    );
    service.shutdown();
    PipelineCell {
        qps: jobs as f64 / elapsed,
        charged: outputs.iter().map(|o| o.charged).sum(),
        estimate_bits: outputs.iter().map(|o| o.estimate.value.to_bits()).collect(),
    }
}

fn run_perf(params: &PerfParams, scenario: &Scenario) -> String {
    eprintln!("[perf] cold run, coalescing off (baseline)...");
    let (_, baseline) = run_cold(scenario, params, false);
    eprintln!(
        "[perf]   baseline: {} actual calls in {:.2}s",
        baseline.snapshot.actual_calls, baseline.elapsed_secs
    );
    eprintln!("[perf] cold run, coalescing on...");
    let (service, cold) = run_cold(scenario, params, true);
    eprintln!(
        "[perf]   coalesced: {} actual calls in {:.2}s ({} waits, peak {})",
        cold.snapshot.actual_calls,
        cold.elapsed_secs,
        cold.snapshot.coalesce_waits,
        cold.snapshot.coalesce_peak_inflight
    );
    eprintln!("[perf] warm run...");
    let warm_secs = run_warm(&service, scenario, params);
    eprintln!("[perf] walker step loop ({} steps)...", params.walker_steps);
    let steps_rate = walker_steps_per_sec(scenario, params.walker_steps, params.walker_trials);
    eprintln!("[perf]   {steps_rate:.0} steps/sec");
    eprintln!("[perf] checkpoint cadence sweep (off, 1k, 10k)...");
    let rate_off = walker_rate_at_cadence(scenario, params.walker_steps, params.walker_trials, 0);
    let rate_1k =
        walker_rate_at_cadence(scenario, params.walker_steps, params.walker_trials, 1_000);
    let rate_10k =
        walker_rate_at_cadence(scenario, params.walker_steps, params.walker_trials, 10_000);
    let overhead = |rate: f64| {
        if rate_off > 0.0 {
            1.0 - rate / rate_off
        } else {
            0.0
        }
    };
    eprintln!(
        "[perf]   off {:.0}/s, 1k {:.0}/s ({:+.2}%), 10k {:.0}/s ({:+.2}%)",
        rate_off,
        rate_1k,
        100.0 * overhead(rate_1k),
        rate_10k,
        100.0 * overhead(rate_10k),
    );
    let cold_jobs = if params.smoke { 20 } else { 100 };
    eprintln!("[perf] cold recovery of {cold_jobs} in-flight jobs...");
    let recovered = cold_recovery(scenario, params, cold_jobs);
    eprintln!(
        "[perf]   replay+requeue {:.3}s, drain {:.2}s ({} resumed)",
        recovered.start_secs, recovered.drain_secs, recovered.resumed
    );
    eprintln!(
        "[perf] pipeline matrix ({} jobs x {} chains, RTT {:?} ms)...",
        params.pipeline_jobs, params.pipeline_chains, PIPELINE_RTTS_MS
    );
    let mut matrix = Vec::new();
    for rtt in PIPELINE_RTTS_MS {
        let off = run_pipeline_cell(scenario, params, rtt, false);
        let on = run_pipeline_cell(scenario, params, rtt, true);
        eprintln!(
            "[perf]   rtt {rtt}ms: off {:.3} qps, on {:.3} qps ({:.1}x)",
            off.qps,
            on.qps,
            on.qps / off.qps
        );
        matrix.push((rtt, off, on));
    }
    let charged_identical = matrix.iter().all(|(_, off, on)| off.charged == on.charged);
    let estimates_identical = matrix
        .iter()
        .all(|(_, off, on)| off.estimate_bits == on.estimate_bits);

    let jobs = workload(scenario, params).len();
    let snap = &cold.snapshot;
    let reduction = if baseline.snapshot.actual_calls > 0 {
        1.0 - snap.actual_calls as f64 / baseline.snapshot.actual_calls as f64
    } else {
        0.0
    };
    let misses = snap.coalesce_leads + snap.coalesce_waits;
    let miss_ratio = if misses > 0 {
        snap.coalesce_waits as f64 / misses as f64
    } else {
        0.0
    };
    let mut out = String::from("{\n");
    let mut first = true;
    let mut put = |key: &str, value: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!("  \"{key}\": {value}"));
    };
    put("schema_version", SCHEMA_VERSION.to_string());
    put("smoke", params.smoke.to_string());
    put("world_scale", "\"tiny\"".into());
    put("world_seed", WORLD_SEED.to_string());
    put("workers", params.workers.to_string());
    put("jobs", jobs.to_string());
    put("budget_per_job", params.budget.to_string());
    put("simulated_rtt_ms", SIMULATED_RTT.as_millis().to_string());
    put(
        "queries_per_sec_cold",
        format!("{:.3}", jobs as f64 / cold.elapsed_secs),
    );
    put(
        "queries_per_sec_warm",
        format!("{:.3}", jobs as f64 / warm_secs),
    );
    put("walker_steps_measured", params.walker_steps.to_string());
    put("walker_steps_per_sec", format!("{steps_rate:.1}"));
    put("charged_calls", snap.charged_calls.to_string());
    put("actual_calls", snap.actual_calls.to_string());
    put(
        "baseline_actual_calls",
        baseline.snapshot.actual_calls.to_string(),
    );
    put("actual_call_reduction", format!("{reduction:.4}"));
    put("coalesce_leads", snap.coalesce_leads.to_string());
    put("coalesce_waits", snap.coalesce_waits.to_string());
    put("coalesce_aborts", snap.coalesce_aborts.to_string());
    put("coalesced_miss_ratio", format!("{miss_ratio:.4}"));
    put(
        "peak_inflight_dedup",
        snap.coalesce_peak_inflight.to_string(),
    );
    let pct = microblog_obs::window::percentile;
    put(
        "queue_wait_us_p50",
        pct(&snap.queue_wait_hist, 0.50).to_string(),
    );
    put(
        "queue_wait_us_p95",
        pct(&snap.queue_wait_hist, 0.95).to_string(),
    );
    put(
        "queue_wait_us_p99",
        pct(&snap.queue_wait_hist, 0.99).to_string(),
    );
    put("exec_us_p50", pct(&snap.exec_hist, 0.50).to_string());
    put("exec_us_p95", pct(&snap.exec_hist, 0.95).to_string());
    put("exec_us_p99", pct(&snap.exec_hist, 0.99).to_string());
    put("recovery_walker_steps", params.walker_steps.to_string());
    put(
        "recovery_steps_per_sec_no_checkpoint",
        format!("{rate_off:.1}"),
    );
    put("recovery_steps_per_sec_every_1k", format!("{rate_1k:.1}"));
    put("recovery_steps_per_sec_every_10k", format!("{rate_10k:.1}"));
    put(
        "recovery_checkpoint_overhead_1k",
        format!("{:.4}", overhead(rate_1k)),
    );
    put(
        "recovery_checkpoint_overhead_10k",
        format!("{:.4}", overhead(rate_10k)),
    );
    put("recovery_cold_jobs", recovered.jobs.to_string());
    put(
        "recovery_cold_start_secs",
        format!("{:.4}", recovered.start_secs),
    );
    put(
        "recovery_cold_drain_secs",
        format!("{:.4}", recovered.drain_secs),
    );
    put("recovery_cold_resumed_jobs", recovered.resumed.to_string());
    put("pipeline_jobs", params.pipeline_jobs.to_string());
    put(
        "pipeline_budget_per_job",
        params.pipeline_budget.to_string(),
    );
    put("pipeline_chains", params.pipeline_chains.to_string());
    put(
        "pipeline_inflight_depth",
        params.pipeline_inflight.depth().to_string(),
    );
    put("pipeline_step_cap", params.pipeline_step_cap.to_string());
    // Per round each chain announces its connections fetch plus (for the
    // level-by-level view) its timeline fetch — the announce batch the
    // prefetcher threads drain concurrently.
    put(
        "pipeline_announce_batch",
        (2 * params.pipeline_chains).to_string(),
    );
    for (rtt, off, on) in &matrix {
        put(
            &format!("pipeline_qps_cold_rtt{rtt}_off"),
            format!("{:.3}", off.qps),
        );
        put(
            &format!("pipeline_qps_cold_rtt{rtt}_on"),
            format!("{:.3}", on.qps),
        );
        put(
            &format!("pipeline_speedup_rtt{rtt}"),
            format!("{:.2}", on.qps / off.qps),
        );
    }
    put("pipeline_charged_identical", charged_identical.to_string());
    put(
        "pipeline_estimates_identical",
        estimates_identical.to_string(),
    );
    out.push_str("\n}\n");
    out
}

/// Validates a BENCH_5.json against [`SCHEMA`]: every key present, every
/// kind right. Absolute numbers are deliberately not checked.
fn check(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: ma-bench check PATH");
        return 2;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 1;
        }
    };
    let value = match serde_json::parse_value_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{path}: not valid JSON: {e:?}");
            return 1;
        }
    };
    let Some(entries) = value.as_map() else {
        eprintln!("{path}: top level must be an object");
        return 1;
    };
    let mut problems = Vec::new();
    for &(key, kind) in SCHEMA {
        let field = serde::value::field(entries, key);
        let actual = field.kind();
        let matches = match kind {
            // Integers widen to "number" slots but not the reverse.
            "number" => actual == "number" || actual == "integer",
            other => actual == other,
        };
        if !matches {
            problems.push(format!("  {key}: expected {kind}, found {actual}"));
        }
    }
    let version = serde::value::field(entries, "schema_version").as_u64();
    if version != Some(SCHEMA_VERSION) {
        problems.push(format!(
            "  schema_version: expected {SCHEMA_VERSION}, found {version:?}"
        ));
    }
    if problems.is_empty() {
        eprintln!("{path}: schema ok ({} keys)", SCHEMA.len());
        0
    } else {
        eprintln!("{path}: schema drift:\n{}", problems.join("\n"));
        1
    }
}
