//! Theorem 4.1 / Corollary 4.1 conductance ablation.
fn main() {
    ma_bench::ablations::ablation_conductance();
}
