//! Validation experiment: `ESTIMATE-p` (Algorithm 2) draws versus the
//! exactly computed visit probabilities of Eq. (6).
//!
//! For a handful of nodes of the `privacy` level-by-level subgraph, takes
//! many independent draws from the analyzer's probability estimator and
//! compares their mean against the exact dynamic-programming solution —
//! the unbiasedness claim at the heart of §5.2.
fn main() {
    ma_bench::exactp::estimate_p_check();
}
