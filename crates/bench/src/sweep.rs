//! Budget sweeps: cost-vs-relative-error curves.
//!
//! The paper's figures plot "query cost needed to reach relative error ε"
//! for ε ∈ {5%, …, 25%}. We reproduce that by running each algorithm at a
//! geometric grid of budgets, measuring the mean relative error across
//! trials at each budget (trials run in parallel), and then inverting the
//! curve: the cost at ε is the smallest swept budget whose mean error is
//! ≤ ε (linearly interpolated between grid points).

use microblog_analyzer::{AggregateQuery, Algorithm, MicroblogAnalyzer};
use microblog_api::ApiProfile;
use microblog_platform::Platform;
use serde::Serialize;

/// The paper's relative-error grid.
pub const ERROR_GRID: [f64; 5] = [0.05, 0.10, 0.15, 0.20, 0.25];

/// One swept budget.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct SweepPoint {
    /// Budget given to the estimator.
    pub budget: u64,
    /// Mean API calls actually spent.
    pub mean_cost: f64,
    /// Mean relative error across successful trials.
    pub mean_rel_err: f64,
    /// Trials that produced an estimate (others hit NoSamples).
    pub successes: usize,
    /// Total trials.
    pub trials: usize,
}

/// A full cost-vs-error curve for one (query, algorithm) pair.
#[derive(Clone, Debug, Serialize)]
pub struct ErrorCurve {
    /// Display label.
    pub label: String,
    /// Points in increasing-budget order.
    pub points: Vec<SweepPoint>,
}

/// Sweep configuration.
#[derive(Clone, Copy, Debug)]
pub struct SweepConfig {
    /// Smallest budget tried.
    pub min_budget: u64,
    /// Hard budget ceiling.
    pub max_budget: u64,
    /// Geometric growth factor between grid points.
    pub growth: f64,
    /// Trials per budget.
    pub trials: usize,
    /// Stop growing once the mean error drops below this.
    pub stop_below_error: f64,
    /// Base RNG seed; trial `i` at any budget uses `seed + i`.
    pub seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            min_budget: 500,
            max_budget: 2_000_000,
            growth: 1.8,
            trials: 5,
            stop_below_error: 0.04,
            seed: 7,
        }
    }
}

/// Runs one trial; returns `(relative error, cost)` when the estimator
/// produced a value.
fn one_trial(
    platform: &Platform,
    api: &ApiProfile,
    query: &AggregateQuery,
    algorithm: Algorithm,
    truth: f64,
    budget: u64,
    seed: u64,
) -> Option<(f64, u64)> {
    let analyzer = MicroblogAnalyzer::new(platform, api.clone());
    let est = analyzer.estimate(query, budget, algorithm, seed).ok()?;
    Some((est.relative_error(truth), est.cost))
}

/// Measures one budget with parallel trials.
#[allow(clippy::too_many_arguments)]
pub fn measure_budget(
    platform: &Platform,
    api: &ApiProfile,
    query: &AggregateQuery,
    algorithm: Algorithm,
    truth: f64,
    budget: u64,
    trials: usize,
    seed: u64,
) -> SweepPoint {
    let results: Vec<Option<(f64, u64)>> = if trials <= 1 {
        vec![one_trial(
            platform, api, query, algorithm, truth, budget, seed,
        )]
    } else {
        let mut results = vec![None; trials];
        std::thread::scope(|scope| {
            for (i, slot) in results.iter_mut().enumerate() {
                scope.spawn(move || {
                    *slot = one_trial(
                        platform,
                        api,
                        query,
                        algorithm,
                        truth,
                        budget,
                        seed + i as u64,
                    );
                });
            }
        });
        results
    };
    let ok: Vec<(f64, u64)> = results.into_iter().flatten().collect();
    let successes = ok.len();
    let (mean_rel_err, mean_cost) = if successes == 0 {
        (f64::INFINITY, budget as f64)
    } else {
        (
            ok.iter().map(|r| r.0).sum::<f64>() / successes as f64,
            ok.iter().map(|r| r.1 as f64).sum::<f64>() / successes as f64,
        )
    };
    SweepPoint {
        budget,
        mean_cost,
        mean_rel_err,
        successes,
        trials,
    }
}

/// Sweeps budgets geometrically until the error target (or the ceiling) is
/// reached.
pub fn error_curve(
    platform: &Platform,
    api: &ApiProfile,
    query: &AggregateQuery,
    algorithm: Algorithm,
    label: impl Into<String>,
    config: &SweepConfig,
) -> ErrorCurve {
    let truth = query
        .ground_truth(platform)
        .expect("sweeps need a defined ground truth");
    let mut points = Vec::new();
    let mut budget = config.min_budget.max(1);
    loop {
        let point = measure_budget(
            platform,
            api,
            query,
            algorithm,
            truth,
            budget,
            config.trials,
            config.seed,
        );
        let err = point.mean_rel_err;
        points.push(point);
        if err <= config.stop_below_error || budget >= config.max_budget {
            break;
        }
        // Plateau detection: once the estimators stop spending (their
        // view is fully explored and cached), larger budgets change
        // nothing — stop sweeping.
        if points.len() >= 3 {
            let last = &points[points.len() - 1];
            let prev = &points[points.len() - 2];
            let spent_flat =
                (last.mean_cost - prev.mean_cost).abs() <= 0.01 * prev.mean_cost.max(1.0);
            let err_flat = !last.mean_rel_err.is_finite()
                || !prev.mean_rel_err.is_finite()
                || (last.mean_rel_err - prev.mean_rel_err).abs() <= 0.005;
            if spent_flat && err_flat {
                break;
            }
        }
        budget = ((budget as f64 * config.growth) as u64)
            .min(config.max_budget)
            .max(budget + 1);
    }
    ErrorCurve {
        label: label.into(),
        points,
    }
}

impl ErrorCurve {
    /// The (interpolated) query cost needed to reach mean relative error
    /// `target`; `None` when the curve never gets there.
    ///
    /// The curve is first made monotone (running minimum of error over
    /// increasing cost) to smooth trial noise.
    pub fn cost_at_error(&self, target: f64) -> Option<f64> {
        let mut best_err = f64::INFINITY;
        let mut cleaned: Vec<(f64, f64)> = Vec::new(); // (cost, err)
        for p in &self.points {
            if !p.mean_rel_err.is_finite() {
                continue; // all trials failed at this budget
            }
            best_err = best_err.min(p.mean_rel_err);
            cleaned.push((p.mean_cost, best_err));
        }
        let mut prev: Option<(f64, f64)> = None;
        for (cost, err) in cleaned {
            if err <= target {
                return Some(match prev {
                    Some((c0, e0)) if e0 - err > 1e-12 => {
                        // Linear interpolation in (error, cost).
                        c0 + (e0 - target) / (e0 - err) * (cost - c0)
                    }
                    _ => cost,
                });
            }
            prev = Some((cost, err));
        }
        None
    }

    /// The costs at the paper's ε grid.
    pub fn costs_on_grid(&self) -> Vec<(f64, Option<f64>)> {
        ERROR_GRID
            .iter()
            .map(|&e| (e, self.cost_at_error(e)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(points: &[(u64, f64)]) -> ErrorCurve {
        ErrorCurve {
            label: "test".into(),
            points: points
                .iter()
                .map(|&(budget, err)| SweepPoint {
                    budget,
                    mean_cost: budget as f64,
                    mean_rel_err: err,
                    successes: 1,
                    trials: 1,
                })
                .collect(),
        }
    }

    #[test]
    fn cost_interpolates_between_points() {
        let c = curve(&[(100, 0.30), (200, 0.10)]);
        // target 0.20 is halfway between the two errors.
        assert!((c.cost_at_error(0.20).unwrap() - 150.0).abs() < 1e-9);
        assert_eq!(c.cost_at_error(0.30).unwrap(), 100.0);
        assert!((c.cost_at_error(0.10).unwrap() - 200.0).abs() < 1e-9);
        assert_eq!(c.cost_at_error(0.05), None);
    }

    #[test]
    fn non_monotone_noise_is_smoothed() {
        let c = curve(&[(100, 0.12), (200, 0.25), (400, 0.06)]);
        // The 0.12 at cost 100 already satisfies 0.15.
        assert_eq!(c.cost_at_error(0.15).unwrap(), 100.0);
        // 0.10 needs the running minimum to fall below it: between 200
        // (min err 0.12) and 400 (0.06).
        let at10 = c.cost_at_error(0.10).unwrap();
        assert!(at10 > 200.0 && at10 < 400.0, "{at10}");
    }

    #[test]
    fn grid_covers_paper_targets() {
        let c = curve(&[(100, 0.02)]);
        let grid = c.costs_on_grid();
        assert_eq!(grid.len(), 5);
        assert!(grid.iter().all(|(_, cost)| cost.is_some()));
    }
}
