//! One function per figure of the paper's evaluation. Each builds (or
//! receives) a world, runs the relevant algorithms, and prints the series
//! in tabular form. The binaries in `src/bin/` are one-line wrappers.

use crate::report::{print_cost_vs_error_figure, print_series, print_table};
use crate::sweep::{error_curve, ErrorCurve, SweepConfig};
use crate::world;
use microblog_analyzer::prelude::*;
use microblog_analyzer::{Algorithm, ViewKind};
use microblog_api::{CachingClient, MicroblogClient};
use microblog_platform::metric::ProfilePredicate;
use microblog_platform::scenario::Scenario;
use microblog_platform::{Duration, Platform};

fn sweep_config() -> SweepConfig {
    SweepConfig {
        trials: world::trials_from_env(),
        seed: world::seed_from_env(),
        ..Default::default()
    }
}

/// The "1 day" default segmentation used when a figure fixes `T`.
const DAY: Option<Duration> = Some(Duration::DAY);

fn avg_followers(s: &Scenario, kw: &str) -> AggregateQuery {
    AggregateQuery::avg(UserMetric::FollowerCount, s.keyword(kw).expect("keyword"))
        .in_window(s.window)
}

fn count_users(s: &Scenario, kw: &str) -> AggregateQuery {
    AggregateQuery::count(s.keyword(kw).expect("keyword")).in_window(s.window)
}

/// Figure 2: query cost vs relative error for AVG(#followers) of users who
/// posted `privacy` — SRW over the social graph, the term-induced subgraph
/// and the level-by-level subgraph.
pub fn fig02() {
    let s = world::twitter_world();
    let q = avg_followers(&s, "privacy");
    let cfg = sweep_config();
    let api = ApiProfile::twitter();
    let curves = vec![
        error_curve(
            &s.platform,
            &api,
            &q,
            Algorithm::SrwFullGraph,
            "Social Graph",
            &cfg,
        ),
        error_curve(
            &s.platform,
            &api,
            &q,
            Algorithm::SrwTermInduced,
            "Term Induced",
            &cfg,
        ),
        error_curve(
            &s.platform,
            &api,
            &q,
            Algorithm::MaSrw { interval: DAY },
            "Level By Level",
            &cfg,
        ),
    ];
    print_cost_vs_error_figure(
        "Figure 2: AVG(followers), users who posted 'privacy'",
        &curves,
    );
    expect_ordering(&curves);
}

/// Figure 3: same comparison for COUNT of users who posted `privacy`.
pub fn fig03() {
    let s = world::twitter_world();
    let q = count_users(&s, "privacy");
    let cfg = sweep_config();
    let api = ApiProfile::twitter();
    let curves = vec![
        error_curve(
            &s.platform,
            &api,
            &q,
            Algorithm::SrwFullGraph,
            "Social Graph",
            &cfg,
        ),
        error_curve(
            &s.platform,
            &api,
            &q,
            Algorithm::SrwTermInduced,
            "Term Induced",
            &cfg,
        ),
        error_curve(
            &s.platform,
            &api,
            &q,
            Algorithm::MaSrw { interval: DAY },
            "Level By Level",
            &cfg,
        ),
    ];
    print_cost_vs_error_figure("Figure 3: COUNT, users who posted 'privacy'", &curves);
    expect_ordering(&curves);
}

/// Prints whether the paper's expected cost ordering (first curve worst,
/// last best at 10% error) holds.
fn expect_ordering(curves: &[ErrorCurve]) {
    let costs: Vec<Option<f64>> = curves.iter().map(|c| c.cost_at_error(0.10)).collect();
    let ordered = costs.windows(2).all(|w| match (w[0], w[1]) {
        (Some(a), Some(b)) => a >= b,
        (None, Some(_)) => true, // failing entirely is "worse"
        _ => false,
    });
    println!(
        "\n[check] cost ordering at 10% error ({}) : {}",
        curves
            .iter()
            .map(|c| c.label.as_str())
            .collect::<Vec<_>>()
            .join(" >= "),
        if ordered { "HOLDS" } else { "VIOLATED" }
    );
}

/// Figure 4: query cost (to reach the target error) as a function of the
/// fraction of intra-level edges removed, for three keywords.
pub fn fig04() {
    let s = world::twitter_world();
    let cfg = sweep_config();
    let api = ApiProfile::twitter();
    let fractions = [0.0, 0.25, 0.5, 0.75, 1.0];
    let mut rows = Vec::new();
    for kw in ["privacy", "boston", "new york"] {
        let q = avg_followers(&s, kw);
        let mut row = vec![kw.to_string()];
        for &removed in &fractions {
            let view = ViewKind::LevelByLevel {
                interval: Duration::DAY,
                keep_intra: 1.0 - removed,
            };
            let curve = error_curve(&s.platform, &api, &q, Algorithm::SrwView { view }, kw, &cfg);
            row.push(crate::report::fmt_cost(curve.cost_at_error(0.10)));
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("keyword".to_string())
        .chain(
            fractions
                .iter()
                .map(|f| format!("remove {:.0}%", f * 100.0)),
        )
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(
        "Figure 4: query cost (to 10% error) vs fraction of intra-level edges removed",
        &headers_ref,
        &rows,
    );
}

/// Figure 5: query cost per candidate interval `T`, with candidates
/// ordered by their pilot-estimated Eq. (3) conductance (the paper's
/// check that the theoretical ordering predicts the empirical one).
pub fn fig05() {
    let s = world::twitter_world();
    let cfg = sweep_config();
    let api = ApiProfile::twitter();
    for kw in ["privacy", "boston", "new york"] {
        let q = avg_followers(&s, kw);
        // Pilot-score all candidates (cheap, unlimited budget here).
        let mut client = CachingClient::new(MicroblogClient::new(&s.platform, api.clone()));
        let seeds = microblog_analyzer::seeds::fetch_seeds(&mut client, &q).expect("seeds");
        let mut rng =
            <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(world::seed_from_env());
        let scores = microblog_analyzer::interval::score_intervals(
            &mut client,
            &q,
            &seeds,
            &microblog_analyzer::interval::candidate_intervals(),
            15,
            &mut rng,
        )
        .expect("interval scores");
        let mut rows = Vec::new();
        for sc in &scores {
            let curve = error_curve(
                &s.platform,
                &api,
                &q,
                Algorithm::MaSrw {
                    interval: Some(sc.interval),
                },
                kw,
                &cfg,
            );
            rows.push(vec![
                sc.interval.label(),
                format!("{:.3e}", sc.conductance),
                crate::report::fmt_cost(curve.cost_at_error(0.10)),
            ]);
        }
        print_table(
            &format!("Figure 5 [{kw}]: interval T (best conductance first) vs query cost"),
            &["T", "est. conductance", "cost @ 10% err"],
            &rows,
        );
    }
}

/// Figure 7: keyword post frequency per month (the ground-truth workload
/// characterization).
pub fn fig07() {
    let s = world::twitter_world();
    let mut series = Vec::new();
    for kw in ["privacy", "boston", "new york"] {
        let id = s.keyword(kw).expect("keyword");
        let mut points = Vec::new();
        for month in 0..10 {
            let w = microblog_platform::TimeWindow::new(
                microblog_platform::Timestamp::at_day(month * 30),
                microblog_platform::Timestamp::at_day((month + 1) * 30),
            );
            points.push((
                month as f64 + 1.0,
                s.platform.search_posts(id, w).len() as f64,
            ));
        }
        series.push((kw, points));
    }
    let series_ref: Vec<(&str, Vec<(f64, f64)>)> = series;
    print_series(
        "Figure 7: keyword post frequency by month (Jan=1..Oct=10)",
        "month",
        &series_ref,
    );
}

/// Generic "MA-SRW vs MA-TARW on two keywords" figure body.
fn srw_vs_tarw(
    title: &str,
    platform: &Platform,
    api: &ApiProfile,
    queries: &[(&str, AggregateQuery)],
) {
    let cfg = sweep_config();
    let mut curves = Vec::new();
    for (kw, q) in queries {
        curves.push(error_curve(
            platform,
            api,
            q,
            Algorithm::MaSrw { interval: DAY },
            format!("{kw} (MA-SRW)"),
            &cfg,
        ));
        curves.push(error_curve(
            platform,
            api,
            q,
            Algorithm::MaTarw { interval: DAY },
            format!("{kw} (MA-TARW)"),
            &cfg,
        ));
    }
    print_cost_vs_error_figure(title, &curves);
    for pair in curves.chunks(2) {
        let srw10 = pair[0].cost_at_error(0.10);
        let tarw10 = pair[1].cost_at_error(0.10);
        match crate::report::improvement_pct(tarw10, srw10) {
            Some(imp) if imp.is_finite() => println!(
                "[check] {} improves on {} by {:.0}% at 10% error",
                pair[1].label, pair[0].label, imp
            ),
            _ => println!(
                "[check] {} vs {}: one side never reached 10% error",
                pair[1].label, pair[0].label
            ),
        }
    }
}

/// Figure 8: Twitter, AVG(#followers), `privacy` and `new york`.
pub fn fig08() {
    let s = world::twitter_world();
    let queries = vec![
        ("privacy", avg_followers(&s, "privacy")),
        ("new york", avg_followers(&s, "new york")),
    ];
    srw_vs_tarw(
        "Figure 8: Twitter AVG(followers) — MA-SRW vs MA-TARW",
        &s.platform,
        &ApiProfile::twitter(),
        &queries,
    );
}

/// Figure 9: convergence trace — the running estimate of AVG(#followers)
/// for `privacy` as the query budget grows.
pub fn fig09() {
    let s = world::twitter_world();
    let q = avg_followers(&s, "privacy");
    let analyzer = MicroblogAnalyzer::new(&s.platform, ApiProfile::twitter());
    let truth = analyzer.ground_truth(&q).expect("truth");
    let budgets: Vec<u64> = (1..=10).map(|k| k * 1_500).collect();
    let mut series = Vec::new();
    for (algo, name) in [
        (Algorithm::MaSrw { interval: DAY }, "MA-SRW"),
        (Algorithm::MaTarw { interval: DAY }, "MA-TARW"),
    ] {
        let mut points = Vec::new();
        for &b in &budgets {
            match analyzer.estimate(&q, b, algo, world::seed_from_env()) {
                Ok(e) => points.push((e.cost as f64, e.value)),
                Err(_) => points.push((b as f64, f64::NAN)),
            }
        }
        series.push((name, points));
    }
    series.push((
        "ground truth",
        budgets.iter().map(|&b| (b as f64, truth)).collect(),
    ));
    print_series(
        "Figure 9: estimated AVG(followers) vs query cost ('privacy')",
        "cost",
        &series,
    );
}

/// Figure 10: Twitter COUNT of users who posted `privacy` — MA-SRW vs
/// MA-TARW vs M&R (M&R run on the level-by-level subgraph, per §6.2).
pub fn fig10() {
    let s = world::twitter_world();
    let q = count_users(&s, "privacy");
    let cfg = sweep_config();
    let api = ApiProfile::twitter();
    let curves = vec![
        error_curve(
            &s.platform,
            &api,
            &q,
            Algorithm::MaSrw { interval: DAY },
            "MA-SRW",
            &cfg,
        ),
        error_curve(
            &s.platform,
            &api,
            &q,
            Algorithm::MaTarw { interval: DAY },
            "MA-TARW",
            &cfg,
        ),
        error_curve(
            &s.platform,
            &api,
            &q,
            Algorithm::MarkRecapture {
                view: ViewKind::level(Duration::DAY),
            },
            "M&R",
            &cfg,
        ),
    ];
    print_cost_vs_error_figure("Figure 10: Twitter COUNT(users posting 'privacy')", &curves);
}

/// Figure 11: Twitter AVG(display-name length) for `privacy`/`new york` —
/// the low-variance metric.
pub fn fig11() {
    let s = world::twitter_world();
    let mk = |kw: &str| {
        AggregateQuery::avg(UserMetric::DisplayNameLength, s.keyword(kw).expect("kw"))
            .in_window(s.window)
    };
    let queries = vec![("privacy", mk("privacy")), ("new york", mk("new york"))];
    srw_vs_tarw(
        "Figure 11: Twitter AVG(display-name length) — MA-SRW vs MA-TARW",
        &s.platform,
        &ApiProfile::twitter(),
        &queries,
    );
}

/// Figure 12: the display-name-length experiment on Google+ (20-result
/// pages make absolute costs much higher).
pub fn fig12() {
    let s = world::google_plus_world();
    let mk = |kw: &str| {
        AggregateQuery::avg(UserMetric::DisplayNameLength, s.keyword(kw).expect("kw"))
            .in_window(s.window)
    };
    let queries = vec![("privacy", mk("privacy")), ("new york", mk("new york"))];
    srw_vs_tarw(
        "Figure 12: Google+ AVG(display-name length) — MA-SRW vs MA-TARW",
        &s.platform,
        &ApiProfile::google_plus(),
        &queries,
    );
}

/// Figure 13: Google+ COUNT of *male* users who posted `privacy`
/// (profile-predicate condition) — MA-SRW vs MA-TARW vs M&R.
pub fn fig13() {
    let s = world::google_plus_world();
    let q = count_users(&s, "privacy").with_predicate(ProfilePredicate::GenderIs(Gender::Male));
    let cfg = sweep_config();
    let api = ApiProfile::google_plus();
    let curves = vec![
        error_curve(
            &s.platform,
            &api,
            &q,
            Algorithm::MaSrw { interval: DAY },
            "MA-SRW",
            &cfg,
        ),
        error_curve(
            &s.platform,
            &api,
            &q,
            Algorithm::MaTarw { interval: DAY },
            "MA-TARW",
            &cfg,
        ),
        error_curve(
            &s.platform,
            &api,
            &q,
            Algorithm::MarkRecapture {
                view: ViewKind::level(Duration::DAY),
            },
            "M&R",
            &cfg,
        ),
    ];
    print_cost_vs_error_figure(
        "Figure 13: Google+ COUNT(male users posting 'privacy')",
        &curves,
    );
}

/// Figure 14: Tumblr AVG(likes per post containing `privacy`).
pub fn fig14() {
    let s = world::tumblr_world();
    let kw = s.keyword("privacy").expect("kw");
    let q = AggregateQuery::post_avg(
        UserMetric::KeywordPostLikes,
        UserMetric::KeywordPostCount,
        kw,
    )
    .in_window(s.window);
    let mk_ny = || {
        AggregateQuery::post_avg(
            UserMetric::KeywordPostLikes,
            UserMetric::KeywordPostCount,
            s.keyword("new york").expect("kw"),
        )
        .in_window(s.window)
    };
    let queries = vec![("privacy", q), ("new york", mk_ny())];
    srw_vs_tarw(
        "Figure 14: Tumblr AVG(likes on keyword posts) — MA-SRW vs MA-TARW",
        &s.platform,
        &ApiProfile::tumblr(),
        &queries,
    );
}

/// §4.1 burn-in comparison: the Geweke burn-in (Z ≤ 0.1) of simple random
/// walks over the social graph, the term-induced subgraph and the
/// level-by-level subgraph. The paper reports ≈700 transitions for the
/// full Twitter graph and ≈610 for the `privacy` term-induced subgraph,
/// with the level-by-level graph converging much faster.
pub fn burnin() {
    let s = world::twitter_world();
    let mut rows = Vec::new();
    for kw in ["privacy", "boston", "new york"] {
        let q = avg_followers(&s, kw);
        let mut row = vec![kw.to_string()];
        for (view, _name) in [
            (ViewKind::FullGraph, "social"),
            (ViewKind::TermInduced, "term-induced"),
            (ViewKind::level(Duration::DAY), "level-by-level"),
        ] {
            let mut client =
                CachingClient::new(MicroblogClient::new(&s.platform, ApiProfile::twitter()));
            let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(
                world::seed_from_env(),
            );
            let cell = match microblog_analyzer::walker::burnin::measure_burn_in(
                &mut client,
                &q,
                view,
                4_000,
                microblog_analyzer::walker::burnin::PAPER_GEWEKE_THRESHOLD,
                &mut rng,
            ) {
                Ok(m) => match m.burn_in {
                    Some(b) => format!("{b}"),
                    None => format!("> {}", m.chain_length),
                },
                Err(e) => format!("({e})"),
            };
            row.push(cell);
        }
        rows.push(row);
    }
    print_table(
        "Burn-in (§4.1): Geweke |Z| <= 0.1 burn-in of SRW chains, AVG(followers)",
        &["keyword", "social graph", "term induced", "level-by-level"],
        &rows,
    );
    println!("\n(paper: ~700 on the full graph, ~610 on the 'privacy' term-induced\n subgraph; the level-by-level subgraph should converge fastest)");
}
