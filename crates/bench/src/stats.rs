//! Omniscient subgraph statistics for Table 2 and the §4 structure claims.
//!
//! These are *world characterizations*, computed from the simulator's full
//! view (exactly as the paper computed Table 2 from its Firehose-derived
//! ground truth): the term-induced subgraph's recall (largest connected
//! component fraction), the edge taxonomy (intra / adjacent / cross-level
//! percentages at a given interval `T`), and the average common-neighbor
//! counts contrasting intra-level with other edges.

use microblog_graph::components::connected_components;
use microblog_graph::csr::CsrGraph;
use microblog_graph::metrics::avg_common_neighbors;
use microblog_platform::truth::{matching_users, Condition};
use microblog_platform::{Duration, KeywordId, Platform, TimeWindow, UserId};

/// Statistics of one keyword's term-induced subgraph.
#[derive(Clone, Debug)]
pub struct TermSubgraphStats {
    /// The keyword.
    pub keyword: KeywordId,
    /// Number of matching users (subgraph nodes).
    pub nodes: usize,
    /// Number of edges among matching users.
    pub edges: usize,
    /// Fraction of nodes inside the largest connected component — the
    /// paper's "recall" column.
    pub recall: f64,
    /// Average common neighbors over intra-level edge endpoints.
    pub common_neighbors_intra: f64,
    /// Average common neighbors over inter-level edge endpoints.
    pub common_neighbors_inter: f64,
    /// Fraction of edges that are intra-level.
    pub intra_fraction: f64,
    /// Fraction of edges that are adjacent-level.
    pub adjacent_fraction: f64,
    /// Fraction of edges that are cross-level (non-adjacent).
    pub cross_fraction: f64,
}

/// The materialized term-induced subgraph plus level labels.
pub struct TermSubgraph {
    /// Induced undirected graph over matching users (renumbered).
    pub graph: CsrGraph,
    /// Original user ids per subgraph node.
    pub users: Vec<UserId>,
    /// Level index per subgraph node.
    pub levels: Vec<i64>,
}

/// Builds the term-induced subgraph for `keyword` over `window`, with
/// levels assigned at interval `t`.
pub fn term_subgraph(
    platform: &Platform,
    keyword: KeywordId,
    window: TimeWindow,
    t: Duration,
) -> TermSubgraph {
    let cond = Condition::keyword(keyword).in_window(window);
    let members = matching_users(platform, &cond);
    let undirected = platform.graph().to_undirected();
    let mut keep = vec![false; platform.user_count()];
    for &u in &members {
        keep[u.index()] = true;
    }
    let (graph, back) = undirected.induced_subgraph(&keep);
    let users: Vec<UserId> = back.iter().map(|&u| UserId(u)).collect();
    let levels = users
        .iter()
        .map(|&u| {
            let first = platform
                .first_mention(u, keyword, window)
                .expect("member has a first mention");
            (first.0 - window.start.0).div_euclid(t.0)
        })
        .collect();
    TermSubgraph {
        graph,
        users,
        levels,
    }
}

/// A list of `(u, v)` edges, as returned by [`TermSubgraph::edge_taxonomy`].
pub type EdgeList = Vec<(u32, u32)>;

impl TermSubgraph {
    /// Splits edges into `(intra, adjacent, cross)` by level difference.
    pub fn edge_taxonomy(&self) -> (EdgeList, EdgeList, EdgeList) {
        let mut intra = Vec::new();
        let mut adjacent = Vec::new();
        let mut cross = Vec::new();
        for (u, v) in self.graph.edges() {
            let dl = (self.levels[u as usize] - self.levels[v as usize]).abs();
            match dl {
                0 => intra.push((u, v)),
                1 => adjacent.push((u, v)),
                _ => cross.push((u, v)),
            }
        }
        (intra, adjacent, cross)
    }

    /// Computes the Table 2 row.
    pub fn stats(&self, keyword: KeywordId) -> TermSubgraphStats {
        let nodes = self.graph.node_count();
        let edges = self.graph.edge_count();
        let recall = if nodes == 0 {
            0.0
        } else {
            connected_components(&self.graph)
                .largest()
                .map_or(0.0, |(_, size)| size as f64 / nodes as f64)
        };
        let (intra, adjacent, cross) = self.edge_taxonomy();
        let total = edges.max(1) as f64;
        let inter: Vec<(u32, u32)> = adjacent.iter().chain(cross.iter()).copied().collect();
        TermSubgraphStats {
            keyword,
            nodes,
            edges,
            recall,
            common_neighbors_intra: avg_common_neighbors(&self.graph, &intra),
            common_neighbors_inter: avg_common_neighbors(&self.graph, &inter),
            intra_fraction: intra.len() as f64 / total,
            adjacent_fraction: adjacent.len() as f64 / total,
            cross_fraction: cross.len() as f64 / total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microblog_platform::scenario::{twitter_2013, Scale};

    #[test]
    fn table2_shape_holds_on_tiny_world() {
        let s = twitter_2013(Scale::Tiny, 2);
        let mut intra_total = 0.0;
        let mut inter_total = 0.0;
        for kw in ["new york", "boston", "obamacare"] {
            let id = s.keyword(kw).unwrap();
            let sub = term_subgraph(&s.platform, id, s.window, Duration::DAY);
            assert!(
                sub.graph.node_count() > 20,
                "{kw} subgraph too small to test"
            );
            let st = sub.stats(id);
            // The paper's Table 2 headline claims, qualitatively:
            // recall is high...
            assert!(st.recall > 0.5, "{kw}: recall {}", st.recall);
            // ...intra-level edges are a substantial minority...
            assert!(
                st.intra_fraction > 0.02 && st.intra_fraction < 0.9,
                "{kw}: {}",
                st.intra_fraction
            );
            // ...and taxonomy fractions partition the edge set.
            let total = st.intra_fraction + st.adjacent_fraction + st.cross_fraction;
            assert!(
                (total - 1.0).abs() < 1e-9,
                "{kw}: taxonomy fractions sum to {total}"
            );
            intra_total += st.common_neighbors_intra;
            inter_total += st.common_neighbors_inter;
        }
        // Intra-level endpoints share more neighbors than inter-level ones
        // (the tight-community phenomenon). Individual keywords are noisy
        // at tiny scale, so assert the aggregate ordering.
        assert!(
            intra_total > inter_total,
            "aggregate intra {intra_total} <= inter {inter_total}"
        );
    }

    #[test]
    fn levels_match_first_mentions() {
        let s = twitter_2013(Scale::Tiny, 3);
        let kw = s.keyword("privacy").unwrap();
        let sub = term_subgraph(&s.platform, kw, s.window, Duration::DAY);
        for (i, &u) in sub.users.iter().enumerate() {
            let first = s.platform.first_mention(u, kw, s.window).unwrap();
            assert_eq!(sub.levels[i], first.0.div_euclid(Duration::DAY.0));
        }
    }
}
