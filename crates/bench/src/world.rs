//! Shared experiment worlds.
//!
//! All experiment binaries run against the same synthetic "Twitter 2013"
//! world (plus Google+/Tumblr variants) so results are comparable across
//! figures. Scale and seed come from the environment:
//!
//! * `MA_SCALE` — `tiny` | `small` | `medium` (default) | `large`
//! * `MA_SEED`  — u64 world seed (default 2014)
//! * `MA_TRIALS` — trials per sweep point (default 5)

use microblog_platform::scenario::{google_plus_2013, tumblr_2013, twitter_2013, Scale, Scenario};

/// Reads the experiment scale from `MA_SCALE`.
pub fn scale_from_env() -> Scale {
    match std::env::var("MA_SCALE")
        .unwrap_or_default()
        .to_lowercase()
        .as_str()
    {
        "tiny" => Scale::Tiny,
        "small" => Scale::Small,
        "large" => Scale::Large,
        "medium" | "" => Scale::Medium,
        other => {
            eprintln!("unknown MA_SCALE '{other}', using medium");
            Scale::Medium
        }
    }
}

/// Reads the world seed from `MA_SEED`.
pub fn seed_from_env() -> u64 {
    std::env::var("MA_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2014)
}

/// Reads the per-point trial count from `MA_TRIALS`.
pub fn trials_from_env() -> usize {
    std::env::var("MA_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5)
}

/// The Twitter world at the configured scale/seed.
pub fn twitter_world() -> Scenario {
    let s = twitter_2013(scale_from_env(), seed_from_env());
    announce("twitter", &s);
    s
}

/// The Google+ world at the configured scale/seed.
pub fn google_plus_world() -> Scenario {
    let s = google_plus_2013(scale_from_env(), seed_from_env());
    announce("google+", &s);
    s
}

/// The Tumblr world at the configured scale/seed.
pub fn tumblr_world() -> Scenario {
    let s = tumblr_2013(scale_from_env(), seed_from_env());
    announce("tumblr", &s);
    s
}

fn announce(name: &str, s: &Scenario) {
    eprintln!(
        "[world] {name}: {} users, {} posts (MA_SCALE={:?}, MA_SEED={})",
        s.platform.user_count(),
        s.platform.post_count(),
        scale_from_env(),
        seed_from_env()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_defaults() {
        // Don't mutate the environment (tests run in parallel); just check
        // the defaults hold when variables are absent.
        if std::env::var("MA_SCALE").is_err() {
            assert_eq!(scale_from_env(), Scale::Medium);
        }
        if std::env::var("MA_SEED").is_err() {
            assert_eq!(seed_from_env(), 2014);
        }
        if std::env::var("MA_TRIALS").is_err() {
            assert_eq!(trials_from_env(), 5);
        }
    }
}
