//! # ma-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§4 and §6) against the synthetic platform. Each
//! table/figure has a dedicated binary (`cargo run -p ma-bench --release
//! --bin fig08`, etc. — see DESIGN.md's experiment index), all built on:
//!
//! * [`world`] — shared scenario construction (size/seed configurable via
//!   the `MA_SCALE` / `MA_SEED` environment variables);
//! * [`sweep`] — budget sweeps producing cost-vs-relative-error curves,
//!   with trials parallelized across threads;
//! * [`stats`] — omniscient subgraph statistics (recall, edge taxonomy,
//!   common-neighbor counts) for Table 2 and the graph-structure claims;
//! * [`report`] — plain-text table and series rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod exactp;
pub mod figures;
pub mod report;
pub mod stats;
pub mod sweep;
pub mod tables;
pub mod world;
