//! Ablations for the design choices DESIGN.md calls out: the Theorem 4.1
//! conductance theory, and MA-TARW's root-probability cache.

use crate::report::print_table;
use crate::world;
use microblog_analyzer::prelude::*;
use microblog_analyzer::walker::tarw::{estimate as tarw_estimate, PMode, TarwConfig};
use microblog_api::{CachingClient, MicroblogClient, QueryBudget};
use microblog_graph::conductance::{
    conductance_level, conductance_with_intra, optimal_inter_degree, sweep_conductance, LevelModel,
};
use microblog_graph::csr::CsrGraph;
use microblog_platform::Duration;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Builds the stylized level-by-level graph of Theorem 4.1: `h` levels of
/// `n/h` nodes, each node with `d` random next-level neighbors and `k`
/// random intra-level neighbors.
pub fn stylized_level_graph<R: Rng>(
    rng: &mut R,
    n: usize,
    h: usize,
    d: usize,
    k: usize,
) -> CsrGraph {
    assert!(
        h >= 2 && n.is_multiple_of(h),
        "n must split evenly into h levels"
    );
    let per = n / h;
    let mut edges = Vec::new();
    let node = |level: usize, i: usize| (level * per + i) as u32;
    for level in 0..h {
        for i in 0..per {
            if level + 1 < h {
                for _ in 0..d.min(per) {
                    edges.push((node(level, i), node(level + 1, rng.gen_range(0..per))));
                }
            }
            for _ in 0..k {
                let j = rng.gen_range(0..per);
                if j != i {
                    edges.push((node(level, i), node(level, j)));
                }
            }
        }
    }
    CsrGraph::from_edges(n, edges)
}

/// Conductance ablation: measured (sweep-cut) conductance of stylized
/// graphs with and without intra-level edges, against the Eq. (2)/(3)
/// closed forms, plus Corollary 4.1's optimal degree checkpoints.
pub fn ablation_conductance() {
    let mut rng = ChaCha8Rng::seed_from_u64(world::seed_from_env());
    let mut rows = Vec::new();
    for &(n, h, d, k) in &[
        (600usize, 6usize, 3usize, 0usize),
        (600, 6, 3, 3),
        (600, 6, 3, 9),
        (1000, 10, 4, 0),
        (1000, 10, 4, 6),
    ] {
        let g = stylized_level_graph(&mut rng, n, h, d, k);
        let measured = sweep_conductance(&g, 300).unwrap_or(f64::NAN);
        let closed = if k == 0 {
            conductance_level(n as f64, h as f64, d as f64)
        } else {
            conductance_with_intra(&LevelModel::new(n as f64, h as f64, d as f64, k as f64))
        };
        rows.push(vec![
            format!("n={n} h={h} d={d} k={k}"),
            format!("{measured:.4}"),
            format!("{closed:.5}"),
        ]);
    }
    print_table(
        "Ablation (Thm 4.1): measured sweep-cut conductance vs closed form",
        &["stylized graph", "measured φ", "closed-form φ"],
        &rows,
    );
    println!("\n(expected: within each (n,h,d) family, measured φ falls as k grows — the\n paper's claim that intra-level edges hurt mixing; closed forms are only\n order-of-magnitude guides, per the paper's own 'simple model' caveat)");

    let mut rows = Vec::new();
    for &h in &[10.0, 25.0, 50.0, 100.0, 1000.0] {
        rows.push(vec![
            format!("{h}"),
            format!("{:.3}", optimal_inter_degree(h)),
        ]);
    }
    print_table(
        "Corollary 4.1: optimal adjacent-level degree d*(h) → 2",
        &["h", "d*"],
        &rows,
    );
}

/// Probability-estimation ablation: MA-TARW with exact memoized `p(u)`
/// (this repo's default — the §5.2 cache generalized to every node) versus
/// the paper's sampled Algorithm 2 with and without per-node caching.
pub fn ablation_root_cache() {
    let s = world::twitter_world();
    let kw = s.keyword("privacy").expect("kw");
    let q = AggregateQuery::count(kw).in_window(s.window);
    let truth = q.ground_truth(&s.platform).expect("truth");
    let mut rows = Vec::new();
    let variants: [(&str, PMode); 3] = [
        ("exact memoized (default)", PMode::Exact),
        (
            "sampled + node cache",
            PMode::Sampled {
                draws: 4,
                cache: true,
            },
        ),
        (
            "sampled, uncached",
            PMode::Sampled {
                draws: 4,
                cache: false,
            },
        ),
    ];
    for (name, p_mode) in variants {
        let budget = QueryBudget::limited(200_000);
        let mut client = CachingClient::new(MicroblogClient::with_budget(
            &s.platform,
            ApiProfile::twitter(),
            budget,
        ));
        let mut rng = ChaCha8Rng::seed_from_u64(world::seed_from_env());
        let cfg = TarwConfig {
            interval: Some(Duration::DAY),
            p_mode,
            max_instances: 60,
            ..Default::default()
        };
        match tarw_estimate(&mut client, &q, &cfg, &mut rng) {
            Ok(e) => rows.push(vec![
                name.into(),
                format!("{}", e.cost),
                format!("{:.1}%", 100.0 * e.relative_error(truth)),
                format!("{}", e.instances),
            ]),
            Err(err) => rows.push(vec![
                name.into(),
                format!("({err})"),
                "—".into(),
                "—".into(),
            ]),
        }
    }
    print_table(
        "Ablation (§5.2 generalized): MA-TARW p(u) estimation mode (60 instances)",
        &["variant", "API calls", "rel. error", "instances"],
        &rows,
    );
    println!(
        "
(expected: exact-memoized reaches far lower error — sampled p(u) has
 heavy-tailed 1/p noise when the search API returns few seeds)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stylized_graph_has_expected_structure() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = stylized_level_graph(&mut rng, 100, 5, 2, 1);
        assert_eq!(g.node_count(), 100);
        // Every edge is intra-level or adjacent-level by construction.
        for (u, v) in g.edges() {
            let (lu, lv) = (u / 20, v / 20);
            assert!(
                (lu as i64 - lv as i64).abs() <= 1,
                "edge {u}-{v} spans levels {lu}-{lv}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "split evenly")]
    fn stylized_graph_validates_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let _ = stylized_level_graph(&mut rng, 101, 5, 2, 1);
    }
}
