//! Rule `lock-order`: the global lock-acquisition graph must be acyclic.
//!
//! Per file, every `Mutex`/`RwLock`-typed field is a node. Inside each
//! function body the rule replays acquisitions (`.lock()`, `.read()`,
//! `.write()`) against a scope stack: a guard bound with `let` is held to
//! the end of its enclosing block, an inline guard to the end of its
//! statement. Acquiring B while A is held adds the edge A → B; a cycle in
//! the union of all edges (including the self-loop A → A, a re-entrant
//! acquisition) is a deadlock waiting for the right interleaving.
//!
//! Suppressing the *edge site* (`// ma-lint: allow(lock-order) …`)
//! removes that edge from the graph, which is how a provably-ordered
//! pair (e.g. shard locks taken in index order) is waived.

use crate::config::Config;
use crate::context::{FileCtx, Finding};
use std::collections::{BTreeMap, BTreeSet};

/// One observed "acquired `to` while holding `from`" event.
#[derive(Clone, Debug)]
pub struct LockEdge {
    /// The lock field already held.
    pub from: String,
    /// The lock field acquired under it.
    pub to: String,
    /// Where the second acquisition happened.
    pub file: String,
    /// 1-based line of the second acquisition.
    pub line: u32,
    /// The enclosing function's name, for the report.
    pub in_fn: String,
}

/// Extracts this file's lock fields and acquisition edges. Edges whose
/// acquisition line carries a `lock-order` suppression are dropped here,
/// so an annotated site cannot contribute to a cycle.
pub fn extract(ctx: &FileCtx, cfg: &Config) -> Vec<LockEdge> {
    if !Config::matches(ctx.path, &cfg.lock_order_paths) {
        return Vec::new();
    }
    let fields = lock_fields(ctx);
    if fields.is_empty() {
        return Vec::new();
    }
    let toks = &ctx.tokens;
    let mut edges = Vec::new();
    for f in &ctx.fns {
        if ctx.is_test_code(f.fn_idx) {
            continue;
        }
        let fn_name = toks
            .get(f.fn_idx + 1)
            .and_then(|t| t.ident())
            .unwrap_or("?")
            .to_string();
        // (field, acquisition_depth, held_to_block_end)
        let mut live: Vec<(String, i32, bool)> = Vec::new();
        let mut depth = 0i32;
        let mut i = f.body_open;
        while i <= f.body_close {
            let t = &toks[i];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                live.retain(|(_, d, _)| *d <= depth);
            } else if t.is_punct(';') {
                // Statement end: inline guards drop.
                live.retain(|(_, d, held)| *held && *d <= depth);
            } else if let Some(m) = t.ident() {
                let acquiring = (m == "lock" || m == "read" || m == "write")
                    && i >= 1
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
                if acquiring {
                    if let Some(field) = i
                        .checked_sub(2)
                        .and_then(|r| toks[r].ident())
                        .filter(|f| fields.contains(*f))
                    {
                        for (held, _, _) in &live {
                            edges.push(LockEdge {
                                from: held.clone(),
                                to: field.to_string(),
                                file: ctx.path.to_string(),
                                line: t.line,
                                in_fn: fn_name.clone(),
                            });
                        }
                        let held = statement_binds(toks, i, f.body_open);
                        live.push((field.to_string(), depth, held));
                    }
                }
            }
            i += 1;
        }
    }
    edges
        .into_iter()
        .filter(|e| !ctx.suppressed("lock-order", e.line))
        .collect()
}

/// Whether the statement containing token `i` starts with `let` (the
/// guard is bound and lives to the end of its block). Shared with
/// `lock-across-call`, which replays the same guard lifetimes.
pub(crate) fn statement_binds(toks: &[crate::lexer::Token], i: usize, floor: usize) -> bool {
    // A chained call on the guard (`x.lock().recv()`) makes it a
    // temporary: the statement binds the *chain's* result, not the
    // guard, which drops at the statement's end. `i` is the lock method
    // ident, `i + 1` its `(`; the empty-args case (`i + 2` is `)`) is
    // the only shape these acquisition methods take.
    if toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
        && toks.get(i + 3).is_some_and(|t| t.is_punct('.'))
    {
        return false;
    }
    let mut j = i;
    while j > floor {
        j -= 1;
        let t = &toks[j];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return toks.get(j + 1).is_some_and(|t| t.is_ident("let"));
        }
    }
    false
}

/// Field names declared with a `Mutex<…>`/`RwLock<…>` type, unwrapping
/// wrappers like `Arc<Mutex<…>>`. Shared with `lock-across-call`.
pub(crate) fn lock_fields(ctx: &FileCtx) -> BTreeSet<String> {
    let toks = &ctx.tokens;
    let mut out = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("Mutex") || t.is_ident("RwLock")) {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|t| t.is_punct('<')) {
            continue;
        }
        // Walk back over wrapper generics (`Arc <`, `Box <`, paths) to
        // the `name :` that introduces the field or binding.
        let mut j = i;
        while let Some(prev) = j.checked_sub(1) {
            match () {
                _ if toks[prev].is_punct('<') && prev >= 1 && toks[prev - 1].ident().is_some() => {
                    j = prev - 1;
                }
                _ if toks[prev].is_punct(':') && prev >= 1 && toks[prev - 1].is_punct(':') => {
                    // Path separator `foo::Mutex` — hop over the segment.
                    if prev >= 2 && toks[prev - 2].ident().is_some() {
                        j = prev - 2;
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        if let Some(prev) = j.checked_sub(1) {
            if toks[prev].is_punct(':') && !(prev >= 1 && toks[prev - 1].is_punct(':')) {
                if let Some(name) = prev.checked_sub(1).and_then(|k| toks[k].ident()) {
                    out.insert(name.to_string());
                }
            }
        }
    }
    out
}

/// Finds cycles in the union of all files' edges and reports each once.
pub fn check_cycles(edges: &[LockEdge], out: &mut Vec<Finding>) {
    let mut graph: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        graph.entry(&e.from).or_default().insert(&e.to);
    }
    // Self-loops are immediate re-entrancy hazards.
    let mut reported: BTreeSet<String> = BTreeSet::new();
    for e in edges {
        if e.from == e.to && reported.insert(format!("self:{}", e.from)) {
            out.push(Finding {
                rule: "lock-order",
                file: e.file.clone(),
                line: e.line,
                message: format!(
                    "`{}` re-acquired in `{}` while already held — deadlock with a \
                     non-reentrant mutex",
                    e.from, e.in_fn
                ),
            });
        }
    }
    // Longer cycles: DFS with a path stack over the field-name graph.
    let nodes: Vec<&str> = graph.keys().copied().collect();
    for &start in &nodes {
        let mut stack = vec![(start, 0usize)];
        let mut path = vec![start];
        let mut on_path: BTreeSet<&str> = [start].into();
        while let Some((node, child_idx)) = stack.last_mut() {
            let succs: Vec<&str> = graph
                .get(*node)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            if *child_idx >= succs.len() {
                on_path.remove(*node);
                path.pop();
                stack.pop();
                continue;
            }
            let next = succs[*child_idx];
            *child_idx += 1;
            if next == start && path.len() > 1 {
                // A cycle through `start`; canonicalize to report once.
                let mut cyc: Vec<&str> = path.clone();
                cyc.sort_unstable();
                let key = format!("cycle:{}", cyc.join("→"));
                if reported.insert(key) {
                    let witness = edges
                        .iter()
                        .find(|e| e.from == *path.last().expect("path non-empty") && e.to == start);
                    let (file, line) = witness
                        .map(|e| (e.file.clone(), e.line))
                        .unwrap_or_else(|| ("<workspace>".to_string(), 0));
                    out.push(Finding {
                        rule: "lock-order",
                        file,
                        line,
                        message: format!(
                            "lock-order cycle: {} → {} — opposite acquisition orders \
                             can deadlock",
                            path.join(" → "),
                            start
                        ),
                    });
                }
                continue;
            }
            if !on_path.contains(next) {
                on_path.insert(next);
                path.push(next);
                stack.push((next, 0));
            }
        }
    }
}
