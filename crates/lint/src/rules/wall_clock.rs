//! Rule `wall-clock`: real time is forbidden outside approved modules.
//!
//! Estimates must be bit-identical across isolated, cached and
//! fault-injected runs, which is only provable when every time source is
//! the simulated clock (`microblog_platform::{Timestamp, Duration}`) or
//! a deterministic logical clock. `Instant::now`, `SystemTime` and
//! `thread::sleep` smuggle wall time in; benchmarks (which time real
//! hardware) are the approved exception.

use crate::config::Config;
use crate::context::{FileCtx, Finding};

/// Scans for `Instant::now`, `SystemTime` usage and `thread::sleep` /
/// imported `sleep` calls.
pub fn check(ctx: &FileCtx, cfg: &Config, out: &mut Vec<Finding>) {
    if Config::matches(ctx.path, &cfg.wall_clock_allowed) {
        return;
    }
    let toks = &ctx.tokens;
    let mut sleep_imported = false;
    for (i, t) in toks.iter().enumerate() {
        // `use std::thread::sleep;` makes bare `sleep(...)` calls wall
        // time too.
        if t.is_ident("use")
            && toks[i..]
                .iter()
                .take_while(|t| !t.is_punct(';'))
                .any(|t| t.is_ident("thread"))
            && toks[i..]
                .iter()
                .take_while(|t| !t.is_punct(';'))
                .any(|t| t.is_ident("sleep"))
        {
            sleep_imported = true;
        }
        let at = |k: usize| toks.get(i + k);
        if t.is_ident("Instant")
            && at(1).is_some_and(|t| t.is_punct(':'))
            && at(2).is_some_and(|t| t.is_punct(':'))
            && at(3).is_some_and(|t| t.is_ident("now"))
        {
            ctx.emit(
                out,
                "wall-clock",
                t.line,
                "`Instant::now()` reads wall time; use the simulated clock or a \
                 deterministic telemetry clock (crates/obs/src/clock.rs)"
                    .to_string(),
            );
        }
        if t.is_ident("SystemTime")
            && at(1).is_some_and(|t| t.is_punct(':'))
            && at(2).is_some_and(|t| t.is_punct(':'))
        {
            ctx.emit(
                out,
                "wall-clock",
                t.line,
                "`SystemTime` reads wall time; all scenario time flows from the \
                 simulated epoch"
                    .to_string(),
            );
        }
        if t.is_ident("thread")
            && at(1).is_some_and(|t| t.is_punct(':'))
            && at(2).is_some_and(|t| t.is_punct(':'))
            && at(3).is_some_and(|t| t.is_ident("sleep"))
        {
            ctx.emit(
                out,
                "wall-clock",
                t.line,
                "`thread::sleep` stalls on wall time; backoff and pacing advance \
                 the simulated clock instead"
                    .to_string(),
            );
        }
        if sleep_imported
            && t.is_ident("sleep")
            && at(1).is_some_and(|t| t.is_punct('('))
            && !toks
                .get(i.wrapping_sub(1))
                .is_some_and(|p| p.is_punct('.') || p.is_punct(':'))
        {
            ctx.emit(
                out,
                "wall-clock",
                t.line,
                "imported `sleep(…)` stalls on wall time".to_string(),
            );
        }
    }
}
