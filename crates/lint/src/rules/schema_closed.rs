//! Rule `schema-closed`: the trace vocabulary stays closed.
//!
//! `ma-verify` rejects any trace frame whose category/name pair is not
//! registered in `microblog_obs::schema` — so an event recorded under an
//! unregistered name compiles fine, runs fine, and then fails the CI
//! replay gate the first time it appears in a trace. This rule moves
//! that failure to lint time: every `emit` / `span_start` / `span_end`
//! call site in the instrumented crates whose category variant and name
//! are both literals must name a pair the schema tables publish.
//!
//! Two-phase like `checkpoint-coverage`: phase 1 harvests, per file, the
//! vocabulary tables (from the schema file's `event_names` /
//! `span_names` match arms) and the tracer call sites; phase 2
//! cross-references them over the assembled workspace. Call sites that
//! pass the category or name through a variable are skipped — the
//! runtime gate still covers those.

use crate::config::Config;
use crate::context::{matching_brace, FileCtx, Finding};
use crate::symbols::FileSymbols;
use std::collections::BTreeSet;

/// Whether a call site records a point event or a span boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SchemaKind {
    /// `emit(…)` — validated against `event_names`.
    Event,
    /// `span_start(…)` / `span_end(…)` — validated against `span_names`.
    Span,
}

/// One tracer call site with a literal `Category::X` and name.
#[derive(Clone, Debug)]
pub struct SchemaUse {
    /// Event or span position.
    pub kind: SchemaKind,
    /// The category variant ident (`Stats`, `Walk`, …).
    pub category: String,
    /// The event/span name literal.
    pub name: String,
    /// 1-based line of the call.
    pub line: u32,
}

/// Per-file facts for the workspace phase.
#[derive(Clone, Debug, Default)]
pub struct SchemaFacts {
    /// `(kind, category variant, name)` triples harvested from
    /// `event_names` / `span_names` table bodies (empty in files that
    /// define neither).
    pub vocab: Vec<(SchemaKind, String, String)>,
    /// Tracer call sites carrying literal category + name, in non-test
    /// code.
    pub uses: Vec<SchemaUse>,
}

/// Phase 1: harvests vocabulary tables and tracer call sites from one
/// file's token stream.
pub fn harvest(ctx: &FileCtx) -> SchemaFacts {
    let toks = &ctx.tokens;
    let mut facts = SchemaFacts::default();
    let mut i = 0usize;
    while i < toks.len() {
        // Vocabulary tables: `fn event_names(…) … { match category { Category::Walk => &["step", …], … } }`.
        if toks[i].is_ident("fn") {
            let kind = match toks.get(i + 1).and_then(|t| t.ident()) {
                Some("event_names") => Some(SchemaKind::Event),
                Some("span_names") => Some(SchemaKind::Span),
                _ => None,
            };
            if let Some(kind) = kind {
                let open = (i + 2..toks.len()).find(|&j| toks[j].is_punct('{'));
                if let Some(open) = open {
                    let close = matching_brace(toks, open).unwrap_or(toks.len());
                    let mut cat: Option<String> = None;
                    let mut j = open;
                    while j < close {
                        if let Some(found) = category_variant(toks, j) {
                            cat = Some(found);
                            j += 4;
                            continue;
                        }
                        if let (Some(name), Some(cat)) = (toks[j].literal_str(), &cat) {
                            facts.vocab.push((kind, cat.clone(), name.to_string()));
                        }
                        j += 1;
                    }
                    i = close;
                    continue;
                }
            }
        }
        // Call sites: `emit(Category::X, "name", …)` and the span pair.
        let kind = match toks[i].ident() {
            Some("emit") => Some(SchemaKind::Event),
            Some("span_start") | Some("span_end") => Some(SchemaKind::Span),
            _ => None,
        };
        if let Some(kind) = kind {
            let call = toks.get(i + 1).is_some_and(|t| t.is_punct('(')) && !ctx.is_test_code(i);
            let category = if call {
                category_variant(toks, i + 2)
            } else {
                None
            };
            let name = if toks.get(i + 6).is_some_and(|t| t.is_punct(',')) {
                toks.get(i + 7).and_then(|t| t.literal_str())
            } else {
                None
            };
            if let (Some(category), Some(name)) = (category, name) {
                facts.uses.push(SchemaUse {
                    kind,
                    category,
                    name: name.to_string(),
                    line: toks[i].line,
                });
            }
        }
        i += 1;
    }
    facts
}

/// Matches `Category :: <Variant>` starting at token `at`, returning the
/// variant ident.
fn category_variant(toks: &[crate::lexer::Token], at: usize) -> Option<String> {
    if toks.get(at)?.is_ident("Category")
        && toks.get(at + 1)?.is_punct(':')
        && toks.get(at + 2)?.is_punct(':')
    {
        toks.get(at + 3)?.ident().map(str::to_string)
    } else {
        None
    }
}

/// Phase 2: checks every harvested call site against the assembled
/// vocabulary. When no file in `schema_vocab_files` contributed a
/// vocabulary (single-file analyses outside the schema), the rule stays
/// silent rather than flagging everything.
pub fn check(files: &[FileSymbols], cfg: &Config, out: &mut Vec<Finding>) {
    let mut events: BTreeSet<(&str, &str)> = BTreeSet::new();
    let mut spans: BTreeSet<(&str, &str)> = BTreeSet::new();
    for fs in files {
        if !Config::matches(&fs.file, &cfg.schema_vocab_files) {
            continue;
        }
        for (kind, cat, name) in &fs.schema.vocab {
            match kind {
                SchemaKind::Event => events.insert((cat, name)),
                SchemaKind::Span => spans.insert((cat, name)),
            };
        }
    }
    if events.is_empty() && spans.is_empty() {
        return;
    }
    for fs in files {
        if !Config::matches(&fs.file, &cfg.schema_use_paths) {
            continue;
        }
        for u in &fs.schema.uses {
            let (table, which) = match u.kind {
                SchemaKind::Event => (&events, "event_names"),
                SchemaKind::Span => (&spans, "span_names"),
            };
            if table.contains(&(u.category.as_str(), u.name.as_str())) {
                continue;
            }
            if fs.suppressed("schema-closed", u.line) {
                continue;
            }
            out.push(Finding {
                rule: "schema-closed",
                file: fs.file.clone(),
                line: u.line,
                message: format!(
                    "`Category::{}` / \"{}\" is not in the `{which}` vocabulary of \
                     microblog_obs::schema — register it there, or every trace \
                     carrying it fails ma-verify's vocab check",
                    u.category, u.name
                ),
            });
        }
    }
}
