//! Rule `panic-safety`: library code must not have casual panic paths.
//!
//! The service catches estimator panics (and forfeits the job's whole
//! quota reservation when it does), so every `unwrap()` in a library
//! crate is a latent availability and accounting bug. Flagged in
//! non-test library code: `.unwrap()`, `.expect(…)`, `panic!(…)` and
//! bracket indexing (`xs[i]`) that should be `.get(i)` unless the bound
//! is an invariant — in which case the site carries an
//! `// ma-lint: allow(panic-safety) reason="…"` annotation saying so.

use crate::config::Config;
use crate::context::{FileCtx, Finding};
use crate::lexer::TokenKind;

/// Identifier-like tokens that legitimately precede `[` without it being
/// an indexing expression (`let [a, b] = …`, `in [1, 2]`, …).
const NON_INDEX_KEYWORDS: [&str; 12] = [
    "let", "in", "return", "match", "if", "else", "mut", "ref", "as", "move", "box", "break",
];

/// Scans library code of the configured crates for panic paths.
pub fn check(ctx: &FileCtx, cfg: &Config, out: &mut Vec<Finding>) {
    if !Config::matches(ctx.path, &cfg.panic_safety_paths) || !ctx.role.is_library() {
        return;
    }
    let toks = &ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.is_test_code(i) {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| &toks[p]);
        let at = |k: usize| toks.get(i + k);
        if t.is_ident("unwrap")
            && prev.is_some_and(|p| p.is_punct('.'))
            && at(1).is_some_and(|t| t.is_punct('('))
        {
            ctx.emit(
                out,
                "panic-safety",
                t.line,
                "`.unwrap()` in library code; return a typed error or justify the \
                 invariant with an `expect` + allow annotation"
                    .to_string(),
            );
        }
        if t.is_ident("expect")
            && prev.is_some_and(|p| p.is_punct('.'))
            && at(1).is_some_and(|t| t.is_punct('('))
        {
            ctx.emit(
                out,
                "panic-safety",
                t.line,
                "`.expect(…)` in library code; either return a typed error or \
                 annotate the documented invariant"
                    .to_string(),
            );
        }
        if (t.is_ident("panic")
            || t.is_ident("unreachable")
            || t.is_ident("todo")
            || t.is_ident("unimplemented"))
            && at(1).is_some_and(|t| t.is_punct('!'))
            && at(2).is_some_and(|t| t.is_punct('(') || t.is_punct('[') || t.is_punct('{'))
        {
            ctx.emit(
                out,
                "panic-safety",
                t.line,
                format!(
                    "`{}!` in library code aborts the walk; surface a typed error",
                    { t.ident().unwrap_or("panic") }
                ),
            );
        }
        if t.is_punct('[') {
            if let Some(p) = prev {
                let indexing = match &p.kind {
                    TokenKind::Ident(name) => !NON_INDEX_KEYWORDS.contains(&name.as_str()),
                    TokenKind::Punct(c) => *c == ')' || *c == ']',
                    _ => false,
                };
                // `xs[..]` (full-range slicing) cannot panic; skip it.
                let full_range = at(1).is_some_and(|t| t.is_punct('.'))
                    && at(2).is_some_and(|t| t.is_punct('.'))
                    && at(3).is_some_and(|t| t.is_punct(']'));
                if indexing && !full_range {
                    ctx.emit(
                        out,
                        "panic-safety",
                        t.line,
                        "bracket indexing can panic on out-of-range; prefer `.get(…)` \
                         or annotate the bound invariant"
                            .to_string(),
                    );
                }
            }
        }
    }
}
