//! Rule `rng-confinement`: randomness lives only in the sampler seams.
//!
//! Reproducibility is the repo's load-bearing guarantee: the same seed
//! must yield bit-identical estimates, traces and checkpoints across
//! isolated, cached, fault-injected and resumed runs. Every RNG
//! construction or draw outside the sanctioned seams (the walker family,
//! the checkpoint RNG capture, interval-selection pilots, the analyzer's
//! seed→stream construction, the resilient client's SplitMix64 jitter)
//! is a place where nondeterminism can leak into an estimate — or where
//! a resumed run can silently diverge because the extra draw isn't part
//! of the checkpointed stream position.
//!
//! Two tiers:
//! * **unseedable constructors** (`thread_rng`, `from_entropy`) are
//!   banned everywhere in scope, sanctioned seams included — there is no
//!   seed to reproduce;
//! * **seeded constructors and draw methods** are banned outside
//!   `rng_allowed_paths`.

use crate::config::Config;
use crate::context::{FileCtx, Finding};
use crate::symbols::{RNG_CONSTRUCTORS, RNG_DRAWS};

/// Constructors with no reproducible seed: banned even in sampler code.
const UNSEEDABLE: [&str; 2] = ["thread_rng", "from_entropy"];

/// Scans for RNG constructions/draws outside the sampler seams.
pub fn check(ctx: &FileCtx, cfg: &Config, out: &mut Vec<Finding>) {
    if !Config::matches(ctx.path, &cfg.rng_scope_paths) || !ctx.role.is_library() {
        return;
    }
    let allowed = Config::matches(ctx.path, &cfg.rng_allowed_paths);
    let toks = &ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.is_test_code(i) {
            continue;
        }
        let Some(m) = t.ident() else {
            continue;
        };
        if !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        // A definition (`fn gen_range(`) is not a use.
        if i >= 1 && toks[i - 1].is_ident("fn") {
            continue;
        }
        let method_pos = i >= 1 && toks[i - 1].is_punct('.');
        let construct = RNG_CONSTRUCTORS.contains(&m);
        let draw = method_pos && RNG_DRAWS.contains(&m);
        if !construct && !draw {
            continue;
        }
        if UNSEEDABLE.contains(&m) {
            ctx.emit(
                out,
                "rng-confinement",
                t.line,
                format!(
                    "`{m}(…)` has no seed to reproduce — every RNG in this workspace \
                     must be constructed from the run seed (ChaCha8/SplitMix64 streams)"
                ),
            );
        } else if !allowed {
            let what = if construct {
                "constructs an RNG"
            } else {
                "draws from an RNG"
            };
            ctx.emit(
                out,
                "rng-confinement",
                t.line,
                format!(
                    "`{m}(…)` {what} outside the sampler seams; randomness here can \
                     diverge from the checkpointed stream position and break seeded \
                     reproducibility — confine RNG use to the walker/checkpoint/\
                     analyzer seams or thread draws through a sampler"
                ),
            );
        }
    }
}
