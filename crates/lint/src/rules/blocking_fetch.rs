//! Rule `blocking-fetch-in-chain`: walker chain code never blocks on a
//! bare client fetch.
//!
//! Walkers run as interleaved chains on one worker thread; a direct
//! `.search(…)` / `.user_timeline(…)` / `.connections(…)` call inside
//! chain code parks the whole round on a single RTT, defeating the fetch
//! pipeline. Per-node traffic belongs behind `QueryGraph` (whose lookups
//! resolve from pipeline-claimed results) with upcoming targets
//! announced via `announce_connections`/`announce_timelines`; seed
//! bootstrap goes through `fetch_seeds`. Both seams live outside
//! `walker/`, so inside it the bare fetch surface is banned outright.

use crate::config::Config;
use crate::context::{FileCtx, Finding};

/// The blocking fetch surface of the client stack (`MicroblogClient` /
/// `CachingClient` share these method names).
const BLOCKING_FETCHES: [&str; 3] = ["search", "user_timeline", "connections"];

/// Scans walker chain code for bare blocking fetch calls.
pub fn check(ctx: &FileCtx, cfg: &Config, out: &mut Vec<Finding>) {
    if !Config::matches(ctx.path, &cfg.blocking_fetch_paths) || !ctx.role.is_library() {
        return;
    }
    let toks = &ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.is_test_code(i) {
            continue;
        }
        let Some(m) = t.ident() else {
            continue;
        };
        // Method call position: `recv.method(` — a definition
        // (`fn connections(`) or a path call doesn't match.
        let is_call =
            i >= 1 && toks[i - 1].is_punct('.') && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
        if is_call && BLOCKING_FETCHES.contains(&m) {
            ctx.emit(
                out,
                "blocking-fetch-in-chain",
                t.line,
                format!(
                    "blocking `.{m}(…)` in walker chain code stalls every \
                     interleaved chain for a full RTT; fetch per-node data \
                     through QueryGraph and announce upcoming targets so an \
                     attached pipeline can overlap the latency"
                ),
            );
        }
    }
}
