//! Rule `checkpoint-coverage`: sampler state must checkpoint completely.
//!
//! Crash recovery (DESIGN.md §12) resumes a walker from its serialized
//! `SamplerState`, and resume is proven bit-identical *given that the
//! checkpoint captures the whole state*. The compiler enforces literal
//! exhaustiveness — adding a field to `SrwState` breaks every
//! `SrwState { … }` construction — **unless** someone weakens that seam.
//! This rule guards the two ways the seam weakens silently:
//!
//! * a guarded state struct (name ending in `State`, plus
//!   `WalkerCheckpoint`) missing `Serialize`/`Deserialize` derives, or a
//!   field carrying a `serde`-`skip` attribute: the field exists in
//!   memory but vanishes from every checkpoint, so a resumed run starts
//!   from a silently defaulted value;
//! * a `..` rest in a guarded struct's literal or pattern inside
//!   `crates/core`: `SrwState { node, ..Default::default() }` compiles
//!   fine after a new field is added — with the new field silently
//!   defaulted at the capture or resume site. Field-exhaustive literals
//!   keep the compiler in the loop.
//!
//! Component structs nested inside states (`RngState`, `AccumState`,
//! `ClientState`, …) match the `State` suffix too and get the same
//! guarantees; the `SamplerState` *enum* itself is covered by serde's
//! derive on its variants' payloads.

use crate::config::Config;
use crate::context::Finding;
use crate::symbols::FileSymbols;
use std::collections::BTreeSet;

/// Whether a struct name is part of the checkpoint state surface.
fn guarded_name(name: &str) -> bool {
    name == "WalkerCheckpoint" || (name.ends_with("State") && name.len() > "State".len())
}

/// Runs the check over all files (workspace phase: definitions come from
/// `checkpoint_state_files`, uses from anywhere under
/// `checkpoint_use_paths`).
pub fn check(files: &[FileSymbols], cfg: &Config, out: &mut Vec<Finding>) {
    let mut guarded: BTreeSet<&str> = BTreeSet::new();
    for fs in files {
        if !Config::matches(&fs.file, &cfg.checkpoint_state_files) {
            continue;
        }
        for d in &fs.structs {
            if !guarded_name(&d.name) {
                continue;
            }
            guarded.insert(&d.name);
            let has = |want: &str| d.attr_idents.iter().any(|a| a == want);
            if (!has("Serialize") || !has("Deserialize"))
                && !fs.suppressed("checkpoint-coverage", d.line)
            {
                out.push(Finding {
                    rule: "checkpoint-coverage",
                    file: fs.file.clone(),
                    line: d.line,
                    message: format!(
                        "checkpoint state struct `{}` must derive Serialize and \
                         Deserialize — un-serialized sampler state cannot survive a \
                         crash, so resume would silently diverge",
                        d.name
                    ),
                });
            }
            for &l in &d.skip_attr_lines {
                if !fs.suppressed("checkpoint-coverage", l) {
                    out.push(Finding {
                        rule: "checkpoint-coverage",
                        file: fs.file.clone(),
                        line: l,
                        message: format!(
                            "field attribute skips serialization inside `{}` — the field \
                             exists in memory but not in checkpoints, so a resumed run \
                             starts from a default and drifts",
                            d.name
                        ),
                    });
                }
            }
        }
    }
    if guarded.is_empty() {
        return;
    }
    for fs in files {
        if !Config::matches(&fs.file, &cfg.checkpoint_use_paths) || !fs.role.is_library() {
            continue;
        }
        for u in &fs.struct_uses {
            if u.in_test || !u.has_rest || !guarded.contains(u.name.as_str()) {
                continue;
            }
            if !fs.suppressed("checkpoint-coverage", u.line) {
                out.push(Finding {
                    rule: "checkpoint-coverage",
                    file: fs.file.clone(),
                    line: u.line,
                    message: format!(
                        "`{} {{ …, .. }}` uses a rest pattern/functional update on a \
                         checkpoint state struct — when a field is added, this site \
                         silently defaults it instead of failing to compile; list every \
                         field so checkpoint coverage stays compiler-enforced",
                        u.name
                    ),
                });
            }
        }
    }
}
