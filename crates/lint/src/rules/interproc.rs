//! Workspace-phase interprocedural checks: the `charging`,
//! `lock-across-call` and `fs-write` rules re-grounded on the call graph.
//!
//! The token-level halves of these rules (in their own modules) catch
//! *direct* violations — a raw `.timeline(…)`, an `fs::write` — but the
//! invariants are reachability properties: a raw fetch hidden two helper
//! calls deep bypasses charging just as thoroughly. This module
//! propagates the per-function effect facts transitively and flags the
//! *call sites* whose callees reach the effect, printing the witness
//! chain so the hop path is auditable.
//!
//! Sealing: a fact chain terminates at exempt files (`charging_exempt`,
//! `fs_write_exempt`) and at functions whose direct evidence line
//! carries an inline suppression — annotating the source of a sanctioned
//! raw access silences its entire caller cone, which is the intended
//! granularity (justify the access once, where it happens).

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::context::Finding;
use crate::symbols::{FileSymbols, FnSym, FACT_FETCH, FACT_FSWRITE, RAW_METHODS};
use std::collections::BTreeMap;

/// Runs the three interprocedural checks over the assembled graph.
pub fn check(files: &[FileSymbols], graph: &CallGraph, cfg: &Config, out: &mut Vec<Finding>) {
    let by_file: BTreeMap<&str, &FileSymbols> =
        files.iter().map(|f| (f.file.as_str(), f)).collect();
    // A direct fact whose evidence line is suppressed for `rule` is a
    // sanctioned seam: seal it so it neither fires nor propagates.
    let src_suppressed = |f: &FnSym, fact: usize, rule: &str| -> bool {
        let Some(line) = f.fact_line[fact] else {
            return false;
        };
        by_file
            .get(f.file.as_str())
            .is_some_and(|fs| fs.suppressed(rule, line))
    };
    // Uncharged-fetch reachability: sealed at the metered client.
    let uncharged = graph.propagate(FACT_FETCH, |f| {
        Config::matches(&f.file, &cfg.charging_exempt) || src_suppressed(f, FACT_FETCH, "charging")
    });
    // Any-fetch reachability (for lock-across-call, charging is beside
    // the point: even a charged fetch behind the metered client stalls
    // whoever contends for a guard held across it). Chains still stop at
    // suppressed sources so an annotated oracle doesn't taint callers.
    let any_fetch = graph.propagate(FACT_FETCH, |f| {
        src_suppressed(f, FACT_FETCH, "charging")
            || src_suppressed(f, FACT_FETCH, "lock-across-call")
    });
    // Fs-mutation reachability: sealed at the journal.
    let fs_mut = graph.propagate(FACT_FSWRITE, |f| {
        Config::matches(&f.file, &cfg.fs_write_exempt)
            || src_suppressed(f, FACT_FSWRITE, "fs-write")
    });

    let mut found: Vec<Finding> = Vec::new();
    for (id, f) in graph.fns.iter().enumerate() {
        if f.is_test || !f.library {
            continue;
        }
        let Some(fs) = by_file.get(f.file.as_str()) else {
            continue;
        };
        let charging_scope = Config::matches(&f.file, &cfg.charging_paths)
            && !Config::matches(&f.file, &cfg.charging_exempt);
        let lock_scope = Config::matches(&f.file, &cfg.lock_across_call_paths);
        let fs_scope = Config::matches(&f.file, &cfg.fs_write_paths)
            && !Config::matches(&f.file, &cfg.fs_write_exempt);
        if !charging_scope && !lock_scope && !fs_scope {
            continue;
        }
        for (ci, c) in f.calls.iter().enumerate() {
            if c.in_test {
                continue;
            }
            // Direct raw calls are the token rules' findings; here we
            // only report *indirect* reachability, so skip the raw names
            // to avoid double-reporting the same line.
            let raw_name = RAW_METHODS.contains(&c.name.as_str());
            for &callee in graph.callees_at(id, ci) {
                if callee == id {
                    continue;
                }
                if charging_scope && !raw_name {
                    if let Some(r) = &uncharged[callee] {
                        if !fs.suppressed("charging", c.line) {
                            found.push(Finding {
                                rule: "charging",
                                file: f.file.clone(),
                                line: c.line,
                                message: format!(
                                    "`{}(…)` reaches a raw backend fetch {} hop(s) away \
                                     ({} → {}) without passing the metered client; charge \
                                     the fetch or route through CachingClient",
                                    c.name,
                                    r.hops + 1,
                                    graph.display(id),
                                    graph.chain(&uncharged, callee),
                                ),
                            });
                        }
                    }
                }
                if lock_scope && !c.guards.is_empty() && !raw_name {
                    if let Some(r) = &any_fetch[callee] {
                        if !fs.suppressed("lock-across-call", c.line) {
                            found.push(Finding {
                                rule: "lock-across-call",
                                file: f.file.clone(),
                                line: c.line,
                                message: format!(
                                    "`{}(…)` called while holding guard(s) `{}` reaches a \
                                     backend fetch {} hop(s) away ({} → {}) — a stalled \
                                     fetch blocks every thread contending for the lock; \
                                     drop the guard before calling",
                                    c.name,
                                    c.guards.join("`, `"),
                                    r.hops + 1,
                                    graph.display(id),
                                    graph.chain(&any_fetch, callee),
                                ),
                            });
                        }
                    }
                }
                if fs_scope {
                    if let Some(r) = &fs_mut[callee] {
                        if !fs.suppressed("fs-write", c.line) {
                            found.push(Finding {
                                rule: "fs-write",
                                file: f.file.clone(),
                                line: c.line,
                                message: format!(
                                    "`{}(…)` reaches a filesystem mutation {} hop(s) away \
                                     ({} → {}) outside the journal; that creates durable \
                                     state recovery cannot replay — persist through \
                                     crates/service/src/journal.rs",
                                    c.name,
                                    r.hops + 1,
                                    graph.display(id),
                                    graph.chain(&fs_mut, callee),
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
    // One call site can resolve to several candidate callees that all
    // reach the same effect; keep one finding per (rule, file, line).
    found.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    found.dedup_by(|a, b| a.rule == b.rule && a.file == b.file && a.line == b.line);
    out.append(&mut found);
}
