//! The rule catalog. Each rule is a pure function over a [`FileCtx`];
//! `lock_order` additionally feeds a global graph checked once per run.
//!
//! [`FileCtx`]: crate::context::FileCtx

pub mod charging;
pub mod determinism;
pub mod fs_write;
pub mod hygiene;
pub mod lock_across_call;
pub mod lock_order;
pub mod panic_safety;
pub mod wall_clock;
