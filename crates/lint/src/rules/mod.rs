//! The rule catalog. Most rules are pure functions over a [`FileCtx`];
//! `lock_order` feeds a global graph checked once per run, and
//! `interproc`/`checkpoint_coverage` run in the workspace phase over the
//! assembled call graph and symbol tables.
//!
//! [`FileCtx`]: crate::context::FileCtx

pub mod blocking_fetch;
pub mod charging;
pub mod checkpoint_coverage;
pub mod determinism;
pub mod fs_write;
pub mod hygiene;
pub mod interproc;
pub mod lock_across_call;
pub mod lock_order;
pub mod panic_safety;
pub mod rng_confinement;
pub mod schema_closed;
pub mod wall_clock;
