//! Rule `determinism`: no hash-order iteration on estimator paths.
//!
//! `HashMap`/`HashSet` iteration order is randomized per process, so any
//! estimator arithmetic that folds over it (summing corrections, picking
//! "the first" seed, draining a frontier) silently breaks bit-for-bit
//! reproducibility — the exact failure mode PAPERS.md's Katzir-style
//! estimators die from. On the configured estimator/walker paths this
//! rule flags iteration over identifiers it saw declared as hash
//! collections in the same file; point lookups (`get`/`insert`/
//! `contains`) stay free. Switch to `BTreeMap`, sort before folding, or
//! annotate why ordering cannot feed arithmetic.

use crate::config::Config;
use crate::context::{FileCtx, Finding};
use std::collections::BTreeSet;

/// Methods whose results depend on hash iteration order.
const ORDER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Scans estimator-path files for hash-order iteration.
pub fn check(ctx: &FileCtx, cfg: &Config, out: &mut Vec<Finding>) {
    if !Config::matches(ctx.path, &cfg.determinism_paths) {
        return;
    }
    let names = hash_typed_names(ctx);
    if names.is_empty() {
        return;
    }
    let toks = &ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.is_test_code(i) {
            continue;
        }
        // `name.iter()` / `self.name.drain(…)` — receiver's last segment
        // is a known hash collection.
        if let Some(m) = t.ident().filter(|m| ORDER_METHODS.contains(m)) {
            let recv = i
                .checked_sub(2)
                .and_then(|r| toks[r].ident())
                .filter(|_| toks[i - 1].is_punct('.'));
            if let Some(name) = recv {
                if names.contains(name) && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                    ctx.emit(
                        out,
                        "determinism",
                        t.line,
                        format!(
                            "`{name}.{m}(…)` iterates a hash collection in estimator code; \
                             hash order is nondeterministic"
                        ),
                    );
                }
            }
        }
        // `for x in [&mut] [self.]name {` — direct loop over the collection.
        if t.is_ident("for") {
            let mut j = i + 1;
            let mut last_ident: Option<&str> = None;
            let mut saw_call = false;
            while let Some(tok) = toks.get(j) {
                if tok.is_punct('{') {
                    break;
                }
                if tok.is_punct('(') {
                    saw_call = true;
                }
                if tok.is_punct(';') {
                    // Not a for-loop header after all.
                    last_ident = None;
                    break;
                }
                if let Some(id) = tok.ident() {
                    last_ident = Some(id);
                }
                j += 1;
                if j > i + 40 {
                    last_ident = None;
                    break;
                }
            }
            if let (Some(name), false) = (last_ident, saw_call) {
                if names.contains(name) {
                    ctx.emit(
                        out,
                        "determinism",
                        t.line,
                        format!(
                            "`for … in {name}` iterates a hash collection in estimator \
                             code; hash order is nondeterministic"
                        ),
                    );
                }
            }
        }
    }
}

/// Identifiers declared in this file with a `HashMap`/`HashSet` type:
/// `name: [std::collections::]HashMap<…>` (fields, params, annotated
/// lets) and `[let [mut]] name = HashMap::new()/with_capacity()`.
fn hash_typed_names(ctx: &FileCtx) -> BTreeSet<String> {
    let toks = &ctx.tokens;
    let mut names = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk back over an optional `std :: collections ::` path.
        let mut j = i;
        while j >= 2
            && toks[j - 1].is_punct(':')
            && toks[j - 2].is_punct(':')
            && j >= 3
            && toks[j - 3].ident().is_some()
        {
            j -= 3;
        }
        let Some(before) = j.checked_sub(1) else {
            continue;
        };
        if toks[before].is_punct(':') {
            // `name : HashMap` — but not a path `::`.
            if before >= 1 && toks[before - 1].is_punct(':') {
                continue;
            }
            if let Some(name) = before.checked_sub(1).and_then(|k| toks[k].ident()) {
                names.insert(name.to_string());
            }
        } else if toks[before].is_punct('=') {
            // `name = HashMap::new()` / `let mut name = …`.
            if let Some(name) = before.checked_sub(1).and_then(|k| toks[k].ident()) {
                names.insert(name.to_string());
            }
        }
    }
    names
}
