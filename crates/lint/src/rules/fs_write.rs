//! Rule `fs-write`: filesystem mutation is the journal's monopoly.
//!
//! The crash-recovery story (DESIGN.md §12) holds only if every byte the
//! estimation stack persists flows through the write-ahead journal's
//! framed, checksummed, torn-tail-tolerant writer. A stray `fs::write`
//! or hand-opened `File` in core or service library code creates durable
//! state that recovery knows nothing about — it won't be replayed, won't
//! be repaired after a torn tail, and can disagree with the journal
//! after a crash. Binaries, tests, examples and benches stay free to
//! touch the filesystem (CLIs write traces, tests build fixtures).

use crate::config::Config;
use crate::context::{FileCtx, Finding};
use crate::symbols::FS_WRITE_FNS;

/// Scans for `fs::<mutator>`, `File::create` / `File::create_new`, and
/// `OpenOptions::new` in library code of the journaled crates, outside
/// the journal module itself.
pub fn check(ctx: &FileCtx, cfg: &Config, out: &mut Vec<Finding>) {
    let scoped = Config::matches(ctx.path, &cfg.fs_write_paths)
        && !Config::matches(ctx.path, &cfg.fs_write_exempt);
    if !scoped || !ctx.role.is_library() {
        return;
    }
    let toks = &ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.is_test_code(i) {
            continue;
        }
        let Some(head) = t.ident() else {
            continue;
        };
        // Path-call position: `head::tail(…)`.
        let at = |k: usize| toks.get(i + k);
        let path_call = at(1).is_some_and(|t| t.is_punct(':'))
            && at(2).is_some_and(|t| t.is_punct(':'))
            && at(4).is_some_and(|t| t.is_punct('('));
        if !path_call {
            continue;
        }
        let Some(tail) = at(3).and_then(|t| t.ident()) else {
            continue;
        };
        let banned = match head {
            "fs" => FS_WRITE_FNS.contains(&tail),
            "File" => tail == "create" || tail == "create_new",
            "OpenOptions" => tail == "new",
            _ => false,
        };
        if banned {
            ctx.emit(
                out,
                "fs-write",
                t.line,
                format!(
                    "direct `{head}::{tail}(…)` writes the filesystem outside the \
                     journal; durable state that recovery cannot replay breaks the \
                     crash-only model — persist through crates/service/src/journal.rs"
                ),
            );
        }
    }
}
