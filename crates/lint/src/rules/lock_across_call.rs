//! Rule `lock-across-call`: no `Mutex`/`RwLock` guard held across a
//! `Platform`/`ApiBackend` fetch.
//!
//! A backend fetch is the slowest thing the service/API stack does — a
//! real deployment pays a network round trip per call. Holding a lock
//! guard across one turns that latency into contention: every thread
//! that touches the same lock (other workers, the coalescer, metrics
//! readers) stalls for the duration of the fetch, and the singleflight
//! liveness check can misread the stall as a crashed leader. The
//! workspace convention is therefore *resolve under the lock, fetch
//! outside it* — see the coalescing layer, which releases the flight
//! table before the leader's fetch and only re-locks to publish.
//!
//! The replay reuses `lock-order`'s guard model: a `let`-bound guard is
//! held to the end of its block, an inline guard to the end of its
//! statement. Any backend-method call token reached while at least one
//! guard is live is a finding at the call site.

use super::lock_order;
use crate::config::Config;
use crate::context::{FileCtx, Finding};

/// The backend surface: `ApiBackend` fetches and the raw `Platform`
/// accessors they wrap (the same set the `charging` rule meters).
use crate::symbols::RAW_METHODS as BACKEND_METHODS;

/// Replays guard acquisitions per function and flags backend calls made
/// while any guard is live.
pub fn check(ctx: &FileCtx, cfg: &Config, out: &mut Vec<Finding>) {
    if !Config::matches(ctx.path, &cfg.lock_across_call_paths) || !ctx.role.is_library() {
        return;
    }
    let fields = lock_order::lock_fields(ctx);
    if fields.is_empty() {
        return;
    }
    let toks = &ctx.tokens;
    for f in &ctx.fns {
        if ctx.is_test_code(f.fn_idx) {
            continue;
        }
        let fn_name = toks
            .get(f.fn_idx + 1)
            .and_then(|t| t.ident())
            .unwrap_or("?");
        // (field, acquisition_depth, held_to_block_end) — same guard
        // lifetime model as `lock-order`.
        let mut live: Vec<(String, i32, bool)> = Vec::new();
        let mut depth = 0i32;
        let mut i = f.body_open;
        while i <= f.body_close {
            let t = &toks[i];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                live.retain(|(_, d, _)| *d <= depth);
            } else if t.is_punct(';') {
                // Statement end: inline guards drop.
                live.retain(|(_, d, held)| *held && *d <= depth);
            } else if let Some(m) = t.ident() {
                // Method call position: `recv.method(`.
                let is_call = i >= 1
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
                if !is_call {
                    i += 1;
                    continue;
                }
                if m == "lock" || m == "read" || m == "write" {
                    if let Some(field) = i
                        .checked_sub(2)
                        .and_then(|r| toks[r].ident())
                        .filter(|f| fields.contains(*f))
                    {
                        let held = lock_order::statement_binds(toks, i, f.body_open);
                        live.push((field.to_string(), depth, held));
                    }
                } else if BACKEND_METHODS.contains(&m) && !live.is_empty() {
                    let held: Vec<&str> = live.iter().map(|(f, _, _)| f.as_str()).collect();
                    ctx.emit(
                        out,
                        "lock-across-call",
                        t.line,
                        format!(
                            "`.{m}(…)` in `{fn_name}` while holding guard(s) `{}` — a \
                             stalled backend call blocks every thread contending for \
                             the lock; drop the guard before fetching",
                            held.join("`, `")
                        ),
                    );
                }
            }
            i += 1;
        }
    }
}
