//! Rule `hygiene`: crate-level guard rails.
//!
//! Two checks: every crate root must carry `#![forbid(unsafe_code)]`
//! (the whole workspace is safe Rust; keep it provable), and
//! estimate-result types must be `#[must_use]` — dropping an `Estimate`
//! or `JobOutcome` on the floor means an API budget was spent for
//! nothing, which should never compile silently.

use crate::config::Config;
use crate::context::{FileCtx, Finding};

/// Runs both hygiene checks on `ctx`.
pub fn check(ctx: &FileCtx, cfg: &Config, out: &mut Vec<Finding>) {
    if cfg.hygiene_lib_roots.iter().any(|p| p == ctx.path) {
        check_forbid_unsafe(ctx, out);
    }
    check_must_use(ctx, cfg, out);
}

/// `#![forbid(unsafe_code)]` must appear in the crate root.
fn check_forbid_unsafe(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let toks = &ctx.tokens;
    let found = toks.iter().enumerate().any(|(i, t)| {
        t.is_ident("forbid")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("unsafe_code"))
    });
    if !found {
        ctx.emit(
            out,
            "hygiene",
            1,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        );
    }
}

/// Estimate-result type declarations must carry `#[must_use]`.
fn check_must_use(ctx: &FileCtx, cfg: &Config, out: &mut Vec<Finding>) {
    if !ctx.role.is_library() {
        return;
    }
    let toks = &ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("struct") || t.is_ident("enum")) || ctx.is_test_code(i) {
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) else {
            continue;
        };
        if !cfg.must_use_types.iter().any(|n| n == name) {
            continue;
        }
        // A declaration is followed by `{`, `<`, `(` or `;` — a `use`
        // or an expression mention is not.
        if !toks.get(i + 2).is_some_and(|t| {
            t.is_punct('{') || t.is_punct('<') || t.is_punct('(') || t.is_punct(';')
        }) {
            continue;
        }
        // Scan the attribute window before the declaration for
        // `must_use`, stopping at the previous item boundary.
        let mut j = i;
        let mut found = false;
        let mut steps = 0;
        while j > 0 && steps < 120 {
            j -= 1;
            steps += 1;
            let p = &toks[j];
            if p.is_punct(';') || p.is_punct('{') || p.is_punct('}') {
                break;
            }
            if p.is_ident("must_use") {
                found = true;
                break;
            }
        }
        if !found {
            ctx.emit(
                out,
                "hygiene",
                t.line,
                format!(
                    "`{name}` is an estimate-result type and must be `#[must_use]` — \
                     dropping one discards paid-for API spend"
                ),
            );
        }
    }
}
