//! Rule `charging`: all API traffic goes through the metered stack.
//!
//! Every platform fetch must be charged to a budget and meter
//! (`MicroblogClient` → `ResilientClient` → `CachingClient`), or quota
//! accounting, logical charging and the cost figures all silently drift.
//! Outside the metered client itself, calling `ApiBackend` fetch methods
//! or raw `Platform` accessors (`search_posts`, `timeline`, `followers`,
//! `followees`) bypasses that discipline. Ground-truth oracles and tests
//! are exempt (they deliberately read the world for free).

use crate::config::Config;
use crate::context::{FileCtx, Finding};

/// Uncharged data-access methods: `ApiBackend` fetches and raw
/// `Platform` accessors.
const RAW_METHODS: [&str; 7] = [
    "fetch_search",
    "fetch_timeline",
    "fetch_connections",
    "search_posts",
    "timeline",
    "followers",
    "followees",
];

/// Scans for direct backend/platform calls outside the metered stack.
pub fn check(ctx: &FileCtx, cfg: &Config, out: &mut Vec<Finding>) {
    if !Config::matches(ctx.path, &cfg.charging_paths)
        || Config::matches(ctx.path, &cfg.charging_exempt)
        || !ctx.role.is_library()
    {
        return;
    }
    let toks = &ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.is_test_code(i) {
            continue;
        }
        let Some(m) = t.ident().filter(|m| RAW_METHODS.contains(m)) else {
            continue;
        };
        // Method call position: `recv.method(` — a field access or a
        // definition (`fn timeline(`) doesn't match.
        let is_call =
            i >= 1 && toks[i - 1].is_punct('.') && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
        if is_call {
            ctx.emit(
                out,
                "charging",
                t.line,
                format!(
                    "direct `.{m}(…)` bypasses the metered client stack; route \
                     through CachingClient/ResilientClient so the call is charged"
                ),
            );
        }
    }
}
