//! Rule `charging`: all API traffic goes through the metered stack.
//!
//! Every platform fetch must be charged to a budget and meter
//! (`MicroblogClient` → `ResilientClient` → `CachingClient`), or quota
//! accounting, logical charging and the cost figures all silently drift.
//! Outside the metered client itself, calling `ApiBackend` fetch methods
//! or raw `Platform` accessors (`search_posts`, `timeline`, `followers`,
//! `followees`) bypasses that discipline. Ground-truth oracles and tests
//! are exempt (they deliberately read the world for free).
//!
//! The same discipline covers instrumentation: inside estimator/walker
//! code (the `determinism` path set) a raw `TraceSink::record(…)` write
//! bypasses `Tracer::emit`, which is where phase/level attribution and
//! per-category sampling happen — so `.record(` is banned there too.

use crate::config::Config;
use crate::context::{FileCtx, Finding};
use crate::symbols::RAW_METHODS;

/// Raw trace-sink writes. Estimator/walker instrumentation must go
/// through `Tracer::emit` / span helpers (which stamp the ambient walk
/// phase and level and honor per-category sampling); pushing an event
/// straight into a `TraceSink` produces unattributable records that
/// `ma-cli trace --summary` cannot charge to a phase.
const RAW_SINK_METHODS: [&str; 1] = ["record"];

/// Scans for direct backend/platform calls outside the metered stack,
/// and for raw trace-sink writes inside estimator/walker code.
pub fn check(ctx: &FileCtx, cfg: &Config, out: &mut Vec<Finding>) {
    let metered = Config::matches(ctx.path, &cfg.charging_paths)
        && !Config::matches(ctx.path, &cfg.charging_exempt);
    let sink_scope = Config::matches(ctx.path, &cfg.determinism_paths);
    if (!metered && !sink_scope) || !ctx.role.is_library() {
        return;
    }
    let toks = &ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.is_test_code(i) {
            continue;
        }
        let Some(m) = t.ident() else {
            continue;
        };
        // Method call position: `recv.method(` — a field access or a
        // definition (`fn timeline(`) doesn't match.
        let is_call =
            i >= 1 && toks[i - 1].is_punct('.') && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
        if !is_call {
            continue;
        }
        if metered && RAW_METHODS.contains(&m) {
            ctx.emit(
                out,
                "charging",
                t.line,
                format!(
                    "direct `.{m}(…)` bypasses the metered client stack; route \
                     through CachingClient/ResilientClient so the call is charged"
                ),
            );
        } else if sink_scope && RAW_SINK_METHODS.contains(&m) {
            ctx.emit(
                out,
                "charging",
                t.line,
                format!(
                    "raw trace-sink `.{m}(…)` in walker code bypasses Tracer::emit; \
                     emit through the tracer so the event carries phase/level \
                     attribution and respects sampling"
                ),
            );
        }
    }
}
