#![forbid(unsafe_code)]
//! `ma-lint` — the workspace invariant analyzer.
//!
//! The repo's core guarantee is that estimates are bit-identical whether
//! runs are isolated, cached or fault-injected. That guarantee rests on
//! conventions — all time through the simulated clock, all API traffic
//! through the metered client stack, no hash-order arithmetic in
//! estimator paths — that the compiler cannot enforce. This crate turns
//! them into CI-gated invariants with a self-contained token-level
//! analyzer (no external dependencies; the workspace is offline).
//!
//! Since v2 the analyzer is two-phase. Phase 1 runs per file (in
//! parallel across a worker pool): token-level rules, lock-edge
//! extraction and symbol-table construction ([`symbols`]). Phase 2 runs
//! once over the assembled workspace: a call graph ([`callgraph`]) built
//! from every file's symbols, interprocedural re-grounding of the
//! charging/lock/fs rules ([`rules::interproc`]), checkpoint-coverage
//! checking, and lock-order cycle detection.
//!
//! See DESIGN.md §9 and §13 for the rule catalog and the
//! suppression/baseline workflow. The entry points are
//! [`analyze_source`] (one in-memory file, used by the fixture
//! self-tests), [`analyze_sources`] (a set of in-memory files analyzed
//! as one workspace — fixture tests for interprocedural rules) and
//! [`analyze_workspace`] (walks `crates/*/src`, `crates/*/tests`,
//! `examples/` and `tests/`).

pub mod baseline;
pub mod callgraph;
pub mod config;
pub mod context;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod symbols;

use baseline::{gate, Baseline};
use callgraph::CallGraph;
use config::Config;
use context::{FileCtx, Finding};
use report::Report;
use rules::lock_order::LockEdge;
use std::path::{Path, PathBuf};

/// Per-file analysis output: findings plus this file's contribution to
/// the global lock graph.
pub struct FileAnalysis {
    /// Findings after inline suppression.
    pub findings: Vec<Finding>,
    /// Lock-acquisition edges (cycle detection happens globally).
    pub lock_edges: Vec<LockEdge>,
}

/// Phase-1 output for one file: everything later phases need, with the
/// source text already dropped.
struct PerFile {
    findings: Vec<Finding>,
    lock_edges: Vec<LockEdge>,
    symbols: symbols::FileSymbols,
}

/// Workspace-level analysis over a set of files: per-file findings plus
/// the interprocedural rules that need the whole symbol table.
pub struct WorkspaceAnalysis {
    /// All findings, sorted by (file, line, rule). Lock-order *cycle*
    /// findings are not included — callers that want them run
    /// [`rules::lock_order::check_cycles`] over [`Self::lock_edges`].
    pub findings: Vec<Finding>,
    /// Lock-acquisition edges from every file.
    pub lock_edges: Vec<LockEdge>,
    /// The assembled call graph (exposed for golden-edge tests).
    pub graph: CallGraph,
}

/// Phase 1: token rules + lock edges + symbol table for one file.
fn analyze_file(path: &str, source: &str, cfg: &Config) -> PerFile {
    let ctx = FileCtx::new(path, source);
    let mut findings = Vec::new();
    rules::wall_clock::check(&ctx, cfg, &mut findings);
    rules::panic_safety::check(&ctx, cfg, &mut findings);
    rules::determinism::check(&ctx, cfg, &mut findings);
    rules::charging::check(&ctx, cfg, &mut findings);
    rules::blocking_fetch::check(&ctx, cfg, &mut findings);
    rules::fs_write::check(&ctx, cfg, &mut findings);
    rules::lock_across_call::check(&ctx, cfg, &mut findings);
    rules::hygiene::check(&ctx, cfg, &mut findings);
    rules::rng_confinement::check(&ctx, cfg, &mut findings);
    let lock_edges = rules::lock_order::extract(&ctx, cfg);
    // Malformed suppression directives are findings themselves: a typo'd
    // allow would otherwise silently stop suppressing.
    for (line, msg) in &ctx.bad_directives {
        findings.push(Finding {
            rule: "suppression",
            file: path.to_string(),
            line: *line,
            message: msg.clone(),
        });
    }
    let symbols = symbols::extract(&ctx);
    PerFile {
        findings,
        lock_edges,
        symbols,
    }
}

/// Phase 2: assemble per-file results into a workspace analysis — build
/// the call graph, run the interprocedural rules, sort.
fn assemble(per: Vec<PerFile>, cfg: &Config) -> WorkspaceAnalysis {
    let mut findings = Vec::new();
    let mut lock_edges = Vec::new();
    let mut files = Vec::with_capacity(per.len());
    for mut p in per {
        findings.append(&mut p.findings);
        lock_edges.append(&mut p.lock_edges);
        files.push(p.symbols);
    }
    let graph = CallGraph::build(&files);
    rules::interproc::check(&files, &graph, cfg, &mut findings);
    rules::checkpoint_coverage::check(&files, cfg, &mut findings);
    rules::schema_closed::check(&files, cfg, &mut findings);
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    WorkspaceAnalysis {
        findings,
        lock_edges,
        graph,
    }
}

/// Analyzes a set of in-memory files as one workspace. `files` pairs a
/// workspace-relative path (`/` separators) with its source text. This
/// is the unit the interprocedural fixture tests drive directly.
pub fn analyze_sources(files: &[(&str, &str)], cfg: &Config) -> WorkspaceAnalysis {
    let per: Vec<PerFile> = files
        .iter()
        .map(|(path, source)| analyze_file(path, source, cfg))
        .collect();
    assemble(per, cfg)
}

/// Analyzes one file's source under `path` (workspace-relative, `/`
/// separators). Interprocedural rules still run — calls that resolve
/// within the file are propagated — but cross-file edges obviously
/// cannot exist.
pub fn analyze_source(path: &str, source: &str, cfg: &Config) -> FileAnalysis {
    let ws = analyze_sources(&[(path, source)], cfg);
    FileAnalysis {
        findings: ws.findings,
        lock_edges: ws.lock_edges,
    }
}

/// Walks the workspace at `root`, analyzes every eligible `.rs` file
/// (phase 1 parallelized across a small worker pool) and gates the
/// result against `baseline`.
pub fn analyze_workspace(
    root: &Path,
    cfg: &Config,
    baseline: &Baseline,
) -> std::io::Result<Report> {
    let started = std::time::Instant::now();
    let files = collect_files(root, cfg)?;
    let files_scanned = files.len();
    let sources: Vec<(String, String)> = files
        .into_iter()
        .map(|rel| {
            let source = std::fs::read_to_string(root.join(&rel))?;
            Ok((rel, source))
        })
        .collect::<std::io::Result<_>>()?;
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
        .min(sources.len().max(1));
    let per = analyze_parallel(&sources, cfg, workers);
    let mut ws = assemble(per, cfg);
    rules::lock_order::check_cycles(&ws.lock_edges, &mut ws.findings);
    ws.findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    let findings = ws.findings;
    Ok(Report {
        files_scanned,
        workers,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        gate: gate(&findings, baseline),
        findings,
    })
}

/// Runs phase 1 over `sources` on `workers` threads. Files are claimed
/// from a shared atomic cursor; results carry their input index so the
/// output order is deterministic regardless of scheduling.
fn analyze_parallel(sources: &[(String, String)], cfg: &Config, workers: usize) -> Vec<PerFile> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    if workers <= 1 || sources.len() <= 1 {
        return sources
            .iter()
            .map(|(rel, src)| analyze_file(rel, src, cfg))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, PerFile)> = Vec::with_capacity(sources.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let cursor = &cursor;
            handles.push(scope.spawn(move || {
                let mut done = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some((rel, src)) = sources.get(i) else {
                        break;
                    };
                    done.push((i, analyze_file(rel, src, cfg)));
                }
                done
            }));
        }
        for h in handles {
            // A panic in a worker (a lexer bug, say) propagates rather
            // than silently dropping that file's findings.
            tagged.extend(h.join().expect("analysis worker panicked"));
        }
    });
    tagged.sort_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, p)| p).collect()
}

/// Collects workspace-relative paths of every `.rs` file to analyze:
/// `crates/*/{src,tests,examples,benches}`, plus the workspace-level
/// `examples/` and `tests/` directories, minus [`Config::skip`].
pub fn collect_files(root: &Path, cfg: &Config) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let dir = entry?.path();
            if !dir.is_dir() {
                continue;
            }
            for sub in ["src", "tests", "examples", "benches"] {
                walk_rs(&dir.join(sub), root, cfg, &mut out)?;
            }
        }
    }
    for top in ["examples", "tests"] {
        walk_rs(&root.join(top), root, cfg, &mut out)?;
    }
    out.sort();
    Ok(out)
}

fn walk_rs(dir: &Path, root: &Path, cfg: &Config, out: &mut Vec<String>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut stack: Vec<PathBuf> = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                if !Config::matches(&rel, &cfg.skip) {
                    out.push(rel);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_typo_is_itself_a_finding() {
        let src = "// ma-lint: alow(panic-safety) reason=\"typo\"\nfn f() {}\n";
        let a = analyze_source("crates/core/src/x.rs", src, &Config::default());
        assert_eq!(a.findings.len(), 1);
        assert_eq!(a.findings[0].rule, "suppression");
    }

    #[test]
    fn clean_file_has_no_findings() {
        let src = "fn f(x: Option<u32>) -> Option<u32> { x.map(|v| v + 1) }\n";
        let a = analyze_source("crates/core/src/x.rs", src, &Config::default());
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn parallel_matches_sequential() {
        let cfg = Config::default();
        let sources: Vec<(String, String)> = (0..12)
            .map(|i| {
                (
                    format!("crates/core/src/f{i}.rs"),
                    format!("fn f{i}() {{ let _ = std::time::Instant::now(); }}\n"),
                )
            })
            .collect();
        let seq = analyze_parallel(&sources, &cfg, 1);
        let par = analyze_parallel(&sources, &cfg, 4);
        let flat = |v: &[PerFile]| -> Vec<(String, u32)> {
            v.iter()
                .flat_map(|p| p.findings.iter().map(|f| (f.file.clone(), f.line)))
                .collect()
        };
        assert_eq!(flat(&seq), flat(&par));
        assert_eq!(seq.len(), par.len());
    }
}
