#![forbid(unsafe_code)]
//! `ma-lint` — the workspace invariant analyzer.
//!
//! The repo's core guarantee is that estimates are bit-identical whether
//! runs are isolated, cached or fault-injected. That guarantee rests on
//! conventions — all time through the simulated clock, all API traffic
//! through the metered client stack, no hash-order arithmetic in
//! estimator paths — that the compiler cannot enforce. This crate turns
//! them into CI-gated invariants with a self-contained token-level
//! analyzer (no external dependencies; the workspace is offline).
//!
//! See DESIGN.md §9 for the rule catalog and the suppression/baseline
//! workflow. The entry points are [`analyze_source`] (one in-memory
//! file, used by the fixture self-tests) and [`analyze_workspace`]
//! (walks `crates/*/src`, `crates/*/tests`, `examples/` and `tests/`).

pub mod baseline;
pub mod config;
pub mod context;
pub mod lexer;
pub mod report;
pub mod rules;

use baseline::{gate, Baseline};
use config::Config;
use context::{FileCtx, Finding};
use report::Report;
use rules::lock_order::LockEdge;
use std::path::{Path, PathBuf};

/// Per-file analysis output: findings plus this file's contribution to
/// the global lock graph.
pub struct FileAnalysis {
    /// Findings after inline suppression.
    pub findings: Vec<Finding>,
    /// Lock-acquisition edges (cycle detection happens globally).
    pub lock_edges: Vec<LockEdge>,
}

/// Analyzes one file's source under `path` (workspace-relative, `/`
/// separators). This is the unit the fixture tests drive directly.
pub fn analyze_source(path: &str, source: &str, cfg: &Config) -> FileAnalysis {
    let ctx = FileCtx::new(path, source);
    let mut findings = Vec::new();
    rules::wall_clock::check(&ctx, cfg, &mut findings);
    rules::panic_safety::check(&ctx, cfg, &mut findings);
    rules::determinism::check(&ctx, cfg, &mut findings);
    rules::charging::check(&ctx, cfg, &mut findings);
    rules::fs_write::check(&ctx, cfg, &mut findings);
    rules::lock_across_call::check(&ctx, cfg, &mut findings);
    rules::hygiene::check(&ctx, cfg, &mut findings);
    let lock_edges = rules::lock_order::extract(&ctx, cfg);
    // Malformed suppression directives are findings themselves: a typo'd
    // allow would otherwise silently stop suppressing.
    for (line, msg) in &ctx.bad_directives {
        findings.push(Finding {
            rule: "suppression",
            file: path.to_string(),
            line: *line,
            message: msg.clone(),
        });
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    FileAnalysis {
        findings,
        lock_edges,
    }
}

/// Walks the workspace at `root`, analyzes every eligible `.rs` file and
/// gates the result against `baseline`.
pub fn analyze_workspace(
    root: &Path,
    cfg: &Config,
    baseline: &Baseline,
) -> std::io::Result<Report> {
    let files = collect_files(root, cfg)?;
    let mut findings = Vec::new();
    let mut edges = Vec::new();
    let files_scanned = files.len();
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))?;
        let mut analysis = analyze_source(&rel, &source, cfg);
        findings.append(&mut analysis.findings);
        edges.append(&mut analysis.lock_edges);
    }
    rules::lock_order::check_cycles(&edges, &mut findings);
    findings
        .sort_by(|a, b| (a.file.clone(), a.line, a.rule).cmp(&(b.file.clone(), b.line, b.rule)));
    Ok(Report {
        files_scanned,
        gate: gate(&findings, baseline),
        findings,
    })
}

/// Collects workspace-relative paths of every `.rs` file to analyze:
/// `crates/*/{src,tests,examples,benches}`, plus the workspace-level
/// `examples/` and `tests/` directories, minus [`Config::skip`].
pub fn collect_files(root: &Path, cfg: &Config) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let dir = entry?.path();
            if !dir.is_dir() {
                continue;
            }
            for sub in ["src", "tests", "examples", "benches"] {
                walk_rs(&dir.join(sub), root, cfg, &mut out)?;
            }
        }
    }
    for top in ["examples", "tests"] {
        walk_rs(&root.join(top), root, cfg, &mut out)?;
    }
    out.sort();
    Ok(out)
}

fn walk_rs(dir: &Path, root: &Path, cfg: &Config, out: &mut Vec<String>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut stack: Vec<PathBuf> = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                if !Config::matches(&rel, &cfg.skip) {
                    out.push(rel);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_typo_is_itself_a_finding() {
        let src = "// ma-lint: alow(panic-safety) reason=\"typo\"\nfn f() {}\n";
        let a = analyze_source("crates/core/src/x.rs", src, &Config::default());
        assert_eq!(a.findings.len(), 1);
        assert_eq!(a.findings[0].rule, "suppression");
    }

    #[test]
    fn clean_file_has_no_findings() {
        let src = "fn f(x: Option<u32>) -> Option<u32> { x.map(|v| v + 1) }\n";
        let a = analyze_source("crates/core/src/x.rs", src, &Config::default());
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }
}
