//! Workspace call graph: resolution heuristics + transitive summaries.
//!
//! Built from every file's [`FileSymbols`], the graph resolves call
//! sites to definitions and propagates the per-function effect facts
//! ([`crate::symbols`]) transitively, breadth-first, so each reachable
//! fact carries a shortest witness chain ("`a` → `b` → `.timeline(…)`").
//!
//! ## Resolution heuristics (and their known unsoundness)
//!
//! * `self.m(…)` → the caller's `impl` type's `m`. Misses trait-default
//!   methods inherited from another type.
//! * `x.m(…)` with `x` typed by a parameter/`let`/field → `(type, m)`.
//!   Wrapper generics are unwrapped one layer (`Arc<T>` → `T`); trait
//!   objects resolve only when the *trait* block defines `m` with a body.
//! * `module::f(…)` → `f` in the file whose derived module name matches;
//!   falls back to a globally unique `f`.
//! * `f(…)` bare → same file first, then globally unique.
//! * Opaque receivers (chains, temporaries) resolve only when the name
//!   is globally unique **and** not a common std method name — the
//!   blocklist below keeps `.clone()`/`.len()` from wiring everything to
//!   whatever happens to define them.
//!
//! Both error directions exist: missed edges (trait dispatch through a
//! `dyn` object, closures, macro bodies) make the interprocedural rules
//! under-report; name-collision edges could over-report. The workspace
//! gate plus the fixture suite bound the damage in practice, and every
//! propagated finding prints its witness chain so a false edge is
//! auditable at a glance.

use crate::symbols::{FileSymbols, FnSym, Receiver, FACT_COUNT};
use std::collections::BTreeMap;

/// Method names too generic to resolve through an opaque receiver.
const COMMON_METHODS: [&str; 58] = [
    "new",
    "clone",
    "len",
    "is_empty",
    "iter",
    "into_iter",
    "next",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "contains",
    "contains_key",
    "entry",
    "or_default",
    "or_insert",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "expect",
    "map",
    "and_then",
    "ok",
    "err",
    "ok_or",
    "push_str",
    "to_string",
    "into",
    "from",
    "as_ref",
    "as_str",
    "as_bytes",
    "collect",
    "extend",
    "sort",
    "retain",
    "drain",
    "clear",
    "take",
    "replace",
    "min",
    "max",
    "abs",
    "fmt",
    "cmp",
    "hash",
    "default",
    "lock",
    "read",
    "write",
    "record",
    "emit",
    "send",
    "recv",
    "flush",
];

/// A resolved edge: caller → callee at a call site.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Index of the calling function.
    pub caller: usize,
    /// Index of the called function.
    pub callee: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
}

/// Why a propagated fact holds for a function.
#[derive(Clone, Debug)]
pub struct Reach {
    /// Hop count from this function to the direct evidence (0 = direct).
    pub hops: u32,
    /// Next hop toward the evidence: `(callee index, call line)`.
    pub via: Option<(usize, u32)>,
    /// The direct evidence description at the chain's end.
    pub evidence: String,
}

/// The assembled workspace call graph.
pub struct CallGraph {
    /// All functions, flattened in file order; indices are stable ids.
    pub fns: Vec<FnSym>,
    /// Resolved edges.
    pub edges: Vec<Edge>,
    /// `edges` indexed by callee, as `(caller, line)` — the direction
    /// facts propagate.
    callers_of: Vec<Vec<(usize, u32)>>,
    /// Per caller, per call-site index: resolved callee ids.
    resolved: Vec<Vec<Vec<usize>>>,
}

impl CallGraph {
    /// Builds the graph from per-file symbols.
    pub fn build(files: &[FileSymbols]) -> CallGraph {
        let mut fns: Vec<FnSym> = Vec::new();
        for fs in files {
            fns.extend(fs.fns.iter().cloned());
        }
        // Lookup maps. Values are sorted fn indices (deterministic).
        let mut by_type_method: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut by_module_fn: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut by_file_fn: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (id, f) in fns.iter().enumerate() {
            if let Some(ty) = &f.impl_type {
                by_type_method.entry((ty, &f.name)).or_default().push(id);
            }
            by_module_fn
                .entry((&f.module, &f.name))
                .or_default()
                .push(id);
            by_file_fn.entry((&f.file, &f.name)).or_default().push(id);
            by_name.entry(&f.name).or_default().push(id);
        }
        let unique = |name: &str| -> Vec<usize> {
            if COMMON_METHODS.contains(&name) {
                return Vec::new();
            }
            match by_name.get(name) {
                Some(ids) if ids.len() == 1 => ids.clone(),
                _ => Vec::new(),
            }
        };
        let mut edges = Vec::new();
        let mut resolved: Vec<Vec<Vec<usize>>> = Vec::with_capacity(fns.len());
        for (caller, f) in fns.iter().enumerate() {
            let mut per_call = Vec::with_capacity(f.calls.len());
            for c in &f.calls {
                let targets: Vec<usize> = match &c.recv {
                    Receiver::SelfType => f
                        .impl_type
                        .as_deref()
                        .and_then(|ty| by_type_method.get(&(ty, c.name.as_str())).cloned())
                        .unwrap_or_default(),
                    Receiver::Typed(ty) => by_type_method
                        .get(&(ty.as_str(), c.name.as_str()))
                        .cloned()
                        .unwrap_or_default(),
                    Receiver::Module(m) => by_module_fn
                        .get(&(m.as_str(), c.name.as_str()))
                        .cloned()
                        .unwrap_or_else(|| unique(&c.name)),
                    Receiver::Bare => by_file_fn
                        .get(&(f.file.as_str(), c.name.as_str()))
                        .cloned()
                        .unwrap_or_else(|| unique(&c.name)),
                    Receiver::Opaque => unique(&c.name),
                };
                for &callee in &targets {
                    edges.push(Edge {
                        caller,
                        callee,
                        line: c.line,
                    });
                }
                per_call.push(targets);
            }
            resolved.push(per_call);
        }
        let mut callers_of = vec![Vec::new(); fns.len()];
        for e in &edges {
            callers_of[e.callee].push((e.caller, e.line));
        }
        CallGraph {
            fns,
            edges,
            callers_of,
            resolved,
        }
    }

    /// A function's display name: `Type::name` or `module::name`.
    pub fn display(&self, id: usize) -> String {
        let f = &self.fns[id];
        match &f.impl_type {
            Some(ty) => format!("{ty}::{}", f.name),
            None => format!("{}::{}", f.module, f.name),
        }
    }

    /// Propagates fact `fact` transitively over reversed edges.
    ///
    /// `sealed(fn)` marks boundary functions: they neither seed nor relay
    /// the fact, which is how exempt files (the metered client for
    /// fetches, the journal for fs writes) terminate chains — a fetch
    /// *behind* the seal is by definition the sanctioned path.
    ///
    /// BFS by hop count yields shortest witness chains deterministically.
    pub fn propagate(&self, fact: usize, sealed: impl Fn(&FnSym) -> bool) -> Vec<Option<Reach>> {
        assert!(fact < FACT_COUNT);
        let mut reach: Vec<Option<Reach>> = vec![None; self.fns.len()];
        let mut frontier: Vec<usize> = Vec::new();
        for (id, f) in self.fns.iter().enumerate() {
            if f.facts.has(fact) && !sealed(f) {
                reach[id] = Some(Reach {
                    hops: 0,
                    via: None,
                    evidence: f.why[fact]
                        .clone()
                        .unwrap_or_else(|| format!("direct evidence in `{}`", self.display(id))),
                });
                frontier.push(id);
            }
        }
        let mut hops = 0u32;
        while !frontier.is_empty() {
            hops += 1;
            let mut next = Vec::new();
            for &g in &frontier {
                let evidence = reach[g]
                    .as_ref()
                    .map(|r| r.evidence.clone())
                    .unwrap_or_default();
                for &(caller, line) in &self.callers_of[g] {
                    if reach[caller].is_some() || sealed(&self.fns[caller]) {
                        continue;
                    }
                    reach[caller] = Some(Reach {
                        hops,
                        via: Some((g, line)),
                        evidence: evidence.clone(),
                    });
                    next.push(caller);
                }
            }
            next.sort_unstable();
            next.dedup();
            frontier = next;
        }
        reach
    }

    /// Renders the witness chain for function `id` under a `reach` map:
    /// `a → b → <evidence>`. The chain is capped for readability.
    pub fn chain(&self, reach: &[Option<Reach>], id: usize) -> String {
        let mut parts = Vec::new();
        let mut cur = id;
        let mut guard = 0;
        while let Some(r) = reach.get(cur).and_then(|r| r.as_ref()) {
            guard += 1;
            if guard > 8 {
                parts.push("…".to_string());
                break;
            }
            match r.via {
                Some((next, _)) => {
                    parts.push(format!("`{}`", self.display(cur)));
                    cur = next;
                }
                None => {
                    parts.push(format!("`{}`", self.display(cur)));
                    parts.push(r.evidence.clone());
                    break;
                }
            }
        }
        parts.join(" → ")
    }

    /// Resolved callee ids for call site `call_idx` of function
    /// `caller` (indices into `fns[caller].calls`).
    pub fn callees_at(&self, caller: usize, call_idx: usize) -> &[usize] {
        &self.resolved[caller][call_idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileCtx;
    use crate::symbols::{extract, FACT_FETCH};

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let syms: Vec<FileSymbols> = files
            .iter()
            .map(|(p, s)| extract(&FileCtx::new(p, s)))
            .collect();
        CallGraph::build(&syms)
    }

    #[test]
    fn two_hop_fetch_reaches_caller() {
        let g = graph_of(&[(
            "crates/core/src/a.rs",
            "fn outer(p: &Platform) { middle(p); }\n\
             fn middle(p: &Platform) { inner(p); }\n\
             fn inner(p: &Platform) { p.timeline(0); }\n",
        )]);
        let reach = g.propagate(FACT_FETCH, |_| false);
        let outer = g.fns.iter().position(|f| f.name == "outer").unwrap();
        let r = reach[outer].as_ref().expect("outer reaches fetch");
        assert_eq!(r.hops, 2);
        let chain = g.chain(&reach, outer);
        assert!(
            chain.contains("outer") && chain.contains("timeline"),
            "{chain}"
        );
    }

    #[test]
    fn seal_terminates_propagation() {
        let g = graph_of(&[
            (
                "crates/api/src/client.rs",
                "impl MicroblogClient { fn degree(&self, p: &Platform) -> usize { p.followers(0).len() } }\n",
            ),
            (
                "crates/core/src/walk.rs",
                "fn step(c: &MicroblogClient, p: &Platform) { c.degree(p); }\n",
            ),
        ]);
        let sealed = |f: &FnSym| f.file == "crates/api/src/client.rs";
        let reach = g.propagate(FACT_FETCH, sealed);
        let step = g.fns.iter().position(|f| f.name == "step").unwrap();
        assert!(reach[step].is_none(), "sealed callee must not propagate");
        let open = g.propagate(FACT_FETCH, |_| false);
        assert!(open[step].is_some(), "without the seal the fact flows");
    }

    #[test]
    fn cycles_terminate() {
        let g = graph_of(&[(
            "crates/core/src/a.rs",
            "fn a(p: &Platform) { b(p); }\nfn b(p: &Platform) { a(p); p.followers(1); }\n",
        )]);
        let reach = g.propagate(FACT_FETCH, |_| false);
        assert!(reach.iter().filter(|r| r.is_some()).count() == 2);
    }

    #[test]
    fn common_method_names_do_not_wire_through_opaque_receivers() {
        let g = graph_of(&[
            (
                "crates/core/src/a.rs",
                "impl Thing { fn clone(&self) -> Thing { raw(self.p) } }\nfn raw(p: &Platform) { p.timeline(0); }\n",
            ),
            (
                "crates/service/src/b.rs",
                "fn tidy(x: &Unknowable) { x.make().clone(); }\n",
            ),
        ]);
        let reach = g.propagate(FACT_FETCH, |_| false);
        let tidy = g.fns.iter().position(|f| f.name == "tidy").unwrap();
        assert!(reach[tidy].is_none());
    }
}
