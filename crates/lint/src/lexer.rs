//! A lightweight, lossy Rust lexer.
//!
//! `ma-lint` rules pattern-match over token streams, not syntax trees, so
//! the lexer only has to get four things right:
//!
//! * identifiers and punctuation arrive as separate tokens with accurate
//!   line numbers;
//! * string/char literals are opaque (their contents can never trip a
//!   rule);
//! * comments are stripped from the token stream but retained separately
//!   so suppression directives (`// ma-lint: allow(...)`) can be parsed;
//! * brace depth can be recovered by replaying `{`/`}` tokens, which is
//!   what the scope-sensitive rules (lock order, test-module detection)
//!   build on.
//!
//! It is intentionally *not* a full lexer: numeric literal suffixes,
//! nested generic disambiguation and the raw-identifier syntax are all
//! handled just precisely enough for rule matching to be reliable on this
//! workspace.

/// What a token is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`foo`, `fn`, `r#match` arrives as `match`).
    Ident(String),
    /// A lifetime such as `'a` (label content not preserved).
    Lifetime,
    /// A string, raw-string, char or byte literal (contents dropped).
    Literal,
    /// A numeric literal (contents dropped).
    Number,
    /// A single punctuation character: `{ } ( ) [ ] . , ; : ! # & = < >` …
    Punct(char),
}

/// One token plus where it starts.
#[derive(Clone, Debug)]
pub struct Token {
    /// The token itself.
    pub kind: TokenKind,
    /// Raw source text of string/char literals (quotes included), kept
    /// so vocabulary rules can read event-name literals. `None` for
    /// every other token kind — literal *contents* stay opaque to the
    /// pattern-matching rules, which compare `kind` only.
    pub text: Option<String>,
    /// 1-based source line.
    pub line: u32,
}

impl Token {
    /// The identifier text, when this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// The contents of a plain `"…"` string literal, when this token is
    /// one. Raw/byte/char literals and strings carrying escapes return
    /// `None` — no closed-vocabulary name needs either.
    pub fn literal_str(&self) -> Option<&str> {
        if self.kind != TokenKind::Literal {
            return None;
        }
        let inner = self.text.as_deref()?.strip_prefix('"')?.strip_suffix('"')?;
        if inner.contains('\\') || inner.contains('"') {
            return None;
        }
        Some(inner)
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(i) if i == s)
    }
}

/// A comment, kept out-of-band for suppression parsing.
#[derive(Clone, Debug)]
pub struct Comment {
    /// The comment text without its `//` / `/* */` delimiters, trimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Whether anything other than whitespace preceded it on its line
    /// (trailing comments suppress their own line; leading ones the next).
    pub trailing: bool,
}

/// The result of lexing one file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// The code tokens, in order.
    pub tokens: Vec<Token>,
    /// All comments, in order.
    pub comments: Vec<Comment>,
}

/// Lexes `source` into tokens and comments. Never fails: unexpected
/// bytes are skipped, and an unterminated literal swallows the rest of
/// the file (acceptable for an advisory linter).
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut line_has_code = false;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                line_has_code = false;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut end = start;
                while end < bytes.len() && bytes[end] != b'\n' {
                    end += 1;
                }
                comments.push(Comment {
                    text: source[start..end].trim().to_string(),
                    line,
                    trailing: line_has_code,
                });
                i = end;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let trailing = line_has_code;
                let start = i + 2;
                let mut depth = 1u32;
                let mut j = start;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                // Terminated: `j` sits just past `*/`, so `j - 2` is the
                // `*` (ASCII, always a char boundary). Unterminated at
                // EOF: take everything — backing up two *bytes* could
                // split a multibyte character and panic the slice.
                let end = if depth == 0 { j - 2 } else { j }.max(start);
                comments.push(Comment {
                    text: source[start..end].trim().to_string(),
                    line: start_line,
                    trailing,
                });
                i = j;
                line_has_code = false;
            }
            '"' => {
                line_has_code = true;
                let start_line = line;
                let end = skip_string(bytes, i, &mut line);
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: source.get(i..end).map(str::to_string),
                    line: start_line,
                });
                i = end;
            }
            'r' | 'b' if starts_raw_or_byte_string(bytes, i) => {
                line_has_code = true;
                let start_line = line;
                let end = skip_raw_or_byte_string(bytes, i, &mut line);
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: source.get(i..end).map(str::to_string),
                    line: start_line,
                });
                i = end;
            }
            'b' if bytes.get(i + 1) == Some(&b'\'') => {
                // Byte-char literal `b'x'` / `b'\''`: one opaque token,
                // not an ident `b` followed by whatever the quote starts.
                line_has_code = true;
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: None,
                    line,
                });
                i = skip_char_literal(bytes, i + 1, &mut line);
            }
            '\'' => {
                line_has_code = true;
                // Disambiguate lifetime `'a` from char `'a'`: a lifetime is
                // a quote + ident *not* followed by a closing quote.
                let mut j = i + 1;
                while j < bytes.len() && is_ident_continue(bytes[j]) {
                    j += 1;
                }
                if j > i + 1 && bytes.get(j) != Some(&b'\'') {
                    tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: None,
                        line,
                    });
                    i = j;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: None,
                        line,
                    });
                    i = skip_char_literal(bytes, i, &mut line);
                }
            }
            c if c.is_ascii_digit() => {
                line_has_code = true;
                tokens.push(Token {
                    kind: TokenKind::Number,
                    text: None,
                    line,
                });
                i += 1;
                while i < bytes.len() && (is_ident_continue(bytes[i]) || bytes[i] == b'.') {
                    // `0..n` range: stop before `..` so the punct survives.
                    if bytes[i] == b'.' && bytes.get(i + 1) == Some(&b'.') {
                        break;
                    }
                    i += 1;
                }
            }
            c if is_ident_start(c as u8) => {
                // Escape skips (`\x` is two bytes whatever follows) can
                // leave `i` inside a multibyte character; resynchronize
                // before slicing or the index panics.
                if !source.is_char_boundary(i) {
                    i += 1;
                    continue;
                }
                line_has_code = true;
                let start = i;
                i += 1;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                let mut text = &source[start..i];
                // Raw identifiers compare equal to their bare form.
                if let Some(stripped) = text.strip_prefix("r#") {
                    text = stripped;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(text.to_string()),
                    text: None,
                    line,
                });
            }
            c => {
                line_has_code = true;
                tokens.push(Token {
                    kind: TokenKind::Punct(c),
                    text: None,
                    line,
                });
                i += 1;
            }
        }
    }
    Lexed { tokens, comments }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// `r"…"`, `r#"…"#`, `br"…"`, `b"…"` detection at position `i`.
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        while bytes.get(j) == Some(&b'#') {
            j += 1;
        }
    }
    // Must land on a quote and have consumed at least the prefix char;
    // a bare ident like `being` must not match.
    bytes.get(j) == Some(&b'"') && j > i
}

fn skip_string(bytes: &[u8], start: usize, line: &mut u32) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

fn skip_raw_or_byte_string(bytes: &[u8], start: usize, line: &mut u32) -> usize {
    let mut i = start;
    if bytes[i] == b'b' {
        i += 1;
    }
    let raw = bytes.get(i) == Some(&b'r');
    if raw {
        i += 1;
    }
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(bytes.get(i), Some(&b'"'));
    i += 1;
    if !raw {
        // Plain byte string: escapes apply.
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => return i + 1,
                b'\n' => {
                    *line += 1;
                    i += 1;
                }
                _ => i += 1,
            }
        }
        return i;
    }
    // Raw string: ends at `"` followed by `hashes` hash marks.
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if bytes[i] == b'"' {
            let mut k = 0usize;
            while k < hashes && bytes.get(i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

fn skip_char_literal(bytes: &[u8], start: usize, line: &mut u32) -> usize {
    let mut i = start + 1;
    let mut steps = 0;
    while i < bytes.len() && steps < 12 {
        match bytes[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
        steps += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn idents_and_puncts_with_lines() {
        let lx = lex("fn main() {\n    x.unwrap();\n}\n");
        let unwrap = lx.tokens.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert_eq!(unwrap.line, 2);
        assert!(lx.tokens.iter().any(|t| t.is_punct('{')));
        assert!(lx.tokens.iter().any(|t| t.is_punct('}')));
    }

    #[test]
    fn string_contents_are_opaque() {
        let lx = lex(r#"let s = "x.unwrap() Instant::now()";"#);
        assert_eq!(idents(r#"let s = "x.unwrap()";"#), vec!["let", "s"]);
        assert_eq!(
            lx.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            1
        );
    }

    #[test]
    fn raw_strings_and_escapes() {
        assert_eq!(
            idents(r##"let s = r#"a "quoted" unwrap()"#; end"##),
            vec!["let", "s", "end"]
        );
        assert_eq!(
            idents(r#"let s = "esc \" unwrap()"; end"#),
            vec!["let", "s", "end"]
        );
        assert_eq!(
            idents(r#"let b = b"bytes.unwrap()"; end"#),
            vec!["let", "b", "end"]
        );
    }

    #[test]
    fn literal_str_reads_plain_strings_only() {
        let lx = lex(r#"emit(Category::Walk, "step", &[]); let c = 'x'; let e = "a\"b";"#);
        let strs: Vec<&str> = lx.tokens.iter().filter_map(|t| t.literal_str()).collect();
        // The escaped string and the char literal stay opaque.
        assert_eq!(strs, vec!["step"]);
        let raw = lex(r##"let s = r#"raw"#;"##);
        assert!(raw.tokens.iter().all(|t| t.literal_str().is_none()));
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let lx = lex("let a = 1; // ma-lint: allow(x) reason=\"y\"\n/* block\nunwrap() */\nlet b;");
        assert_eq!(lx.comments.len(), 2);
        assert!(lx.comments[0].trailing);
        assert!(lx.comments[0].text.starts_with("ma-lint:"));
        assert!(!lx.comments[1].trailing);
        assert_eq!(lx.comments[1].line, 2);
        assert!(!lx.tokens.iter().any(|t| t.is_ident("unwrap")));
        let b = lx.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lx = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let lx = lex("for i in 0..10 { a[i]; }");
        let dots = lx.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn raw_strings_with_multi_hash_guards() {
        // The inner `"#` must not close a `##`-guarded raw string.
        assert_eq!(
            idents(r###"let s = r##"contains "# and unwrap()"##; end"###),
            vec!["let", "s", "end"]
        );
        assert_eq!(
            idents(r###"let s = br##"bytes "# unwrap()"##; end"###),
            vec!["let", "s", "end"]
        );
    }

    #[test]
    fn nested_block_comments() {
        let lx = lex("/* outer /* inner unwrap() */ still comment */ let after;");
        assert_eq!(lx.comments.len(), 1);
        assert!(lx.comments[0].text.contains("inner"));
        assert_eq!(idents("/* a /* b */ c */ let after;"), vec!["let", "after"]);
    }

    #[test]
    fn unterminated_block_comment_with_multibyte_tail_does_not_panic() {
        // Regression: slicing `j - 2` bytes back at EOF could split a
        // multibyte character and panic.
        let lx = lex("let a; /* déjà‑vu");
        assert_eq!(lx.comments.len(), 1);
        assert!(lx.comments[0].text.starts_with("déjà"));
        let lx = lex("/*é");
        assert_eq!(lx.comments.len(), 1);
    }

    #[test]
    fn quote_bearing_char_and_byte_literals() {
        // A char literal holding a double quote must not open a string.
        assert_eq!(
            idents(r#"let c = '"'; let s = "x"; end"#),
            vec!["let", "c", "let", "s", "end"]
        );
        // Byte-char literals are one opaque token, not ident + char.
        assert_eq!(idents(r#"let c = b'"'; end"#), vec!["let", "c", "end"]);
        assert_eq!(idents(r#"let c = b'\''; end"#), vec!["let", "c", "end"]);
        let lx = lex(r#"let c = b'x';"#);
        assert!(!lx.tokens.iter().any(|t| t.is_ident("b")));
        assert_eq!(
            lx.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            1
        );
    }
}
