//! Per-file analysis context: tokens plus derived structure.
//!
//! Everything the rules share is computed once per file here: which
//! token ranges are `#[cfg(test)]`/`#[test]` code, where function bodies
//! begin and end, and which lines carry suppression directives.

use crate::config::FileRole;
use crate::lexer::{lex, Comment, Lexed, Token};

/// A finding one rule produced on one line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// The rule id (see [`crate::config::RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

/// A parsed `ma-lint: allow(...)` directive.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// The rules it silences.
    pub rules: Vec<String>,
    /// The mandatory justification.
    pub reason: String,
    /// Whole-file (`allow-file`) or line-scoped (`allow`).
    pub whole_file: bool,
    /// The line(s) a line-scoped directive covers.
    pub lines: Vec<u32>,
    /// Where the directive itself sits (for diagnostics).
    pub at: u32,
}

/// One function body, for scope-sensitive rules.
#[derive(Clone, Copy, Debug)]
pub struct FnSpan {
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Token index of the body's `{`.
    pub body_open: usize,
    /// Token index of the body's matching `}`.
    pub body_close: usize,
}

/// The shared per-file context rules run against.
pub struct FileCtx<'a> {
    /// Workspace-relative path with `/` separators.
    pub path: &'a str,
    /// Where the file sits (test dir, binary, example, bench).
    pub role: FileRole,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Comments, for suppression parsing.
    pub comments: Vec<Comment>,
    /// `in_test[i]` — whether token `i` is inside `#[cfg(test)]` or
    /// `#[test]` code.
    pub in_test: Vec<bool>,
    /// Function bodies, in source order.
    pub fns: Vec<FnSpan>,
    /// Parsed suppression directives.
    pub suppressions: Vec<Suppression>,
    /// Malformed directives (missing reason / unknown shape).
    pub bad_directives: Vec<(u32, String)>,
}

impl<'a> FileCtx<'a> {
    /// Lexes `source` and derives the context.
    pub fn new(path: &'a str, source: &str) -> FileCtx<'a> {
        let Lexed { tokens, comments } = lex(source);
        let in_test = mark_test_spans(&tokens);
        let fns = find_fns(&tokens);
        let (suppressions, bad_directives) = parse_suppressions(&comments, &tokens);
        FileCtx {
            path,
            role: FileRole::of(path),
            tokens,
            comments,
            in_test,
            fns,
            suppressions,
            bad_directives,
        }
    }

    /// Whether the token at `idx` is inside test-gated code (or the
    /// whole file is an integration test / bench).
    pub fn is_test_code(&self, idx: usize) -> bool {
        self.role.integration_test
            || self.role.bench
            || self.in_test.get(idx).copied().unwrap_or(false)
    }

    /// Whether a finding of `rule` at `line` is covered by a directive.
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressions
            .iter()
            .any(|s| s.rules.iter().any(|r| r == rule) && (s.whole_file || s.lines.contains(&line)))
    }

    /// Emits `finding` into `out` unless suppressed.
    pub fn emit(&self, out: &mut Vec<Finding>, rule: &'static str, line: u32, message: String) {
        if !self.suppressed(rule, line) {
            out.push(Finding {
                rule,
                file: self.path.to_string(),
                line,
                message,
            });
        }
    }

    /// Token index → matching close brace for the `{` at `open`.
    pub fn matching_brace(&self, open: usize) -> Option<usize> {
        matching_brace(&self.tokens, open)
    }
}

/// Finds the `}` matching the `{` at token index `open`.
pub fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    debug_assert!(tokens[open].is_punct('{'));
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Marks tokens inside `#[cfg(test)] mod …` blocks and `#[test] fn`
/// bodies. Attribute stacks (`#[test] #[ignore] fn`) are handled by
/// scanning forward over consecutive attributes.
fn mark_test_spans(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let attr_close = match matching_bracket(tokens, i + 1) {
                Some(c) => c,
                None => break,
            };
            if attr_is_test(&tokens[i + 2..attr_close]) {
                // Skip any further stacked attributes, then mark the item
                // body (the next top-level `{ … }`).
                let mut j = attr_close + 1;
                while tokens.get(j).is_some_and(|t| t.is_punct('#'))
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    match matching_bracket(tokens, j + 1) {
                        Some(c) => j = c + 1,
                        None => return in_test,
                    }
                }
                // Find the item's opening brace, stopping at `;` (a
                // test-gated `use` or declaration has no body).
                let mut k = j;
                let mut body = None;
                while let Some(t) = tokens.get(k) {
                    if t.is_punct('{') {
                        body = Some(k);
                        break;
                    }
                    if t.is_punct(';') {
                        break;
                    }
                    k += 1;
                }
                if let Some(open) = body {
                    if let Some(close) = matching_brace(tokens, open) {
                        for slot in &mut in_test[i..=close] {
                            *slot = true;
                        }
                        i = close + 1;
                        continue;
                    }
                }
                i = k + 1;
                continue;
            }
            i = attr_close + 1;
            continue;
        }
        i += 1;
    }
    in_test
}

/// Whether an attribute body (tokens between `[` and `]`) gates on test:
/// `test`, `cfg(test)`, `cfg(all(test, …))`, `tokio::test` etc.
fn attr_is_test(body: &[Token]) -> bool {
    let mut idents = body.iter().filter_map(|t| t.ident());
    match idents.next() {
        Some("test") => true,
        Some("cfg") => body.iter().any(|t| t.is_ident("test")),
        Some(_) => body.iter().any(|t| t.is_ident("test")),
        None => false,
    }
}

/// Finds the `]` matching the `[` at token index `open`.
fn matching_bracket(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Locates every `fn` body: after the name and signature, the first `{`
/// before a `;` opens the body (trait method declarations have none).
fn find_fns(tokens: &[Token]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") {
            let mut j = i + 1;
            let mut body = None;
            // Walk to the body `{`, skipping the parameter list and any
            // where-clause; `;` ends a bodyless declaration. Generic
            // bounds can contain `{` only inside const generics, which
            // this workspace doesn't use in signatures.
            let mut paren = 0i32;
            while let Some(t) = tokens.get(j) {
                if t.is_punct('(') {
                    paren += 1;
                } else if t.is_punct(')') {
                    paren -= 1;
                } else if paren == 0 && t.is_punct('{') {
                    body = Some(j);
                    break;
                } else if paren == 0 && t.is_punct(';') {
                    break;
                }
                j += 1;
            }
            if let Some(open) = body {
                if let Some(close) = matching_brace(tokens, open) {
                    fns.push(FnSpan {
                        fn_idx: i,
                        body_open: open,
                        body_close: close,
                    });
                    // Nested fns are rare; scanning from inside the body
                    // keeps them visible as their own spans.
                    i = open + 1;
                    continue;
                }
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    fns
}

/// Parses `ma-lint: allow(rule, …) reason="…"` and
/// `ma-lint: allow-file(rule, …) reason="…"` comments.
///
/// A trailing comment covers its own line; a leading comment covers the
/// next line that has code on it.
fn parse_suppressions(
    comments: &[Comment],
    tokens: &[Token],
) -> (Vec<Suppression>, Vec<(u32, String)>) {
    let mut out = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        let Some(rest) = c.text.strip_prefix("ma-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let (whole_file, rest) = if let Some(r) = rest.strip_prefix("allow-file") {
            (true, r)
        } else if let Some(r) = rest.strip_prefix("allow") {
            (false, r)
        } else {
            bad.push((
                c.line,
                format!("unrecognized ma-lint directive `{}`", c.text),
            ));
            continue;
        };
        let rest = rest.trim_start();
        let Some(close) = rest.starts_with('(').then(|| rest.find(')')).flatten() else {
            bad.push((
                c.line,
                "directive needs `(rule, …)` after allow".to_string(),
            ));
            continue;
        };
        let rules: Vec<String> = rest[1..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let tail = rest[close + 1..].trim();
        let reason = tail
            .strip_prefix("reason=")
            .map(|r| r.trim().trim_matches('"').trim())
            .unwrap_or("");
        if rules.is_empty() {
            bad.push((c.line, "directive names no rules".to_string()));
            continue;
        }
        if reason.is_empty() {
            bad.push((
                c.line,
                format!(
                    "allow({}) has no reason — suppressions must say why",
                    rules.join(", ")
                ),
            ));
            continue;
        }
        let lines = if whole_file {
            Vec::new()
        } else if c.trailing {
            vec![c.line]
        } else {
            // Leading comment: cover the next line carrying code.
            let next = tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > c.line)
                .unwrap_or(c.line + 1);
            vec![next]
        };
        out.push(Suppression {
            rules,
            reason: reason.to_string(),
            whole_file,
            lines,
            at: c.line,
        });
    }
    (out, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_spans_cover_cfg_test_modules() {
        let src =
            "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let ctx = FileCtx::new("crates/x/src/a.rs", src);
        let unwraps: Vec<usize> = ctx
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!ctx.is_test_code(unwraps[0]));
        assert!(ctx.is_test_code(unwraps[1]));
    }

    #[test]
    fn test_attr_fn_with_stacked_attributes() {
        let src = "#[test]\n#[ignore]\nfn t() { y.unwrap(); }\nfn lib() { x.unwrap(); }\n";
        let ctx = FileCtx::new("crates/x/src/a.rs", src);
        let unwraps: Vec<usize> = ctx
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert!(ctx.is_test_code(unwraps[0]));
        assert!(!ctx.is_test_code(unwraps[1]));
    }

    #[test]
    fn fn_spans_found() {
        let src = "impl A { fn one(&self) -> u32 { 1 } }\nfn two() { { nested(); } }\ntrait T { fn decl(&self); }\n";
        let ctx = FileCtx::new("crates/x/src/a.rs", src);
        assert_eq!(ctx.fns.len(), 2);
    }

    #[test]
    fn suppressions_trailing_and_leading() {
        let src = "a.unwrap(); // ma-lint: allow(panic-safety) reason=\"checked above\"\n// ma-lint: allow(wall-clock) reason=\"bench only\"\nInstant::now();\n";
        let ctx = FileCtx::new("crates/x/src/a.rs", src);
        assert_eq!(ctx.suppressions.len(), 2);
        assert!(ctx.suppressed("panic-safety", 1));
        assert!(ctx.suppressed("wall-clock", 3));
        assert!(!ctx.suppressed("wall-clock", 1));
    }

    #[test]
    fn directive_without_reason_is_bad() {
        let src = "// ma-lint: allow(panic-safety)\nx.unwrap();\n";
        let ctx = FileCtx::new("crates/x/src/a.rs", src);
        assert!(ctx.suppressions.is_empty());
        assert_eq!(ctx.bad_directives.len(), 1);
        assert!(!ctx.suppressed("panic-safety", 2));
    }

    #[test]
    fn allow_file_covers_everything() {
        let src = "// ma-lint: allow-file(determinism) reason=\"order never feeds arithmetic here\"\nfn f() {}\n";
        let ctx = FileCtx::new("crates/x/src/a.rs", src);
        assert!(ctx.suppressed("determinism", 999));
    }
}
