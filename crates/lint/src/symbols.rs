//! Per-file symbol extraction: the facts the call graph is built from.
//!
//! One pass over a file's [`FileCtx`] produces an owned [`FileSymbols`]:
//! every function definition (qualified by enclosing `impl`/`trait` type
//! and by a file-derived module name), every call site inside it with a
//! best-effort receiver classification, the function's *direct* effect
//! facts (raw fetch, fs mutation, RNG use, charging, lock acquisition),
//! plus struct definitions/uses for the `checkpoint-coverage` rule.
//!
//! Extraction is deliberately lossy — it rides the same token stream the
//! rules use — but it only has to be precise enough for the resolution
//! heuristics in [`crate::callgraph`] (documented there, with their known
//! unsoundness) to reconstruct this workspace's call edges.

use crate::config::FileRole;
use crate::context::{matching_brace, FileCtx, Suppression};
use crate::lexer::Token;
use crate::rules::lock_order;
use std::collections::BTreeMap;

/// Uncharged data-access methods: `ApiBackend` fetches and raw
/// `Platform` accessors. Shared by the `charging` and `lock-across-call`
/// rules and by call-graph fact seeding.
pub const RAW_METHODS: [&str; 7] = [
    "fetch_search",
    "fetch_timeline",
    "fetch_connections",
    "search_posts",
    "timeline",
    "followers",
    "followees",
];

/// `std::fs` free functions that mutate the filesystem (read-side
/// functions are fine). Shared by `fs-write` and fact seeding.
pub const FS_WRITE_FNS: [&str; 9] = [
    "write",
    "create_dir",
    "create_dir_all",
    "remove_file",
    "remove_dir",
    "remove_dir_all",
    "rename",
    "copy",
    "set_permissions",
];

/// RNG constructors (path or method position). `thread_rng` and
/// `from_entropy` are unseedable and therefore banned outright by
/// `rng-confinement`; the seeded ones are confined to sampler seams.
pub const RNG_CONSTRUCTORS: [&str; 6] = [
    "thread_rng",
    "from_entropy",
    "from_seed",
    "seed_from_u64",
    "from_rng",
    "from_state",
];

/// RNG draw methods (method position only).
pub const RNG_DRAWS: [&str; 9] = [
    "gen",
    "gen_range",
    "gen_bool",
    "gen_ratio",
    "next_u32",
    "next_u64",
    "next_f64",
    "fill_bytes",
    "random",
];

/// The per-function summary lattice: one bit per effect. Facts are
/// seeded here from direct evidence and propagated transitively by
/// [`crate::callgraph::CallGraph`].
pub const FACT_FETCH: usize = 0;
/// Mutates the filesystem directly.
pub const FACT_FSWRITE: usize = 1;
/// Constructs or draws from an RNG directly.
pub const FACT_RNG: usize = 2;
/// Acquires a `Mutex`/`RwLock` declared in its file.
pub const FACT_LOCK: usize = 3;
/// Calls into the charging seam (`.charge(…)` / `trace_charge`).
pub const FACT_CHARGE: usize = 4;
/// Number of facts in the lattice.
pub const FACT_COUNT: usize = 5;

/// A function's direct effect facts, one bit each.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Facts(pub u8);

impl Facts {
    /// Sets fact `f`.
    pub fn set(&mut self, f: usize) {
        self.0 |= 1 << f;
    }

    /// Whether fact `f` is set.
    pub fn has(self, f: usize) -> bool {
        self.0 & (1 << f) != 0
    }
}

/// How a call's receiver was classified.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Receiver {
    /// `self.method(…)` — resolve against the caller's `impl` type.
    SelfType,
    /// `x.method(…)` where `x`'s type was recovered from a parameter,
    /// `let` binding or struct field: resolve against that type.
    Typed(String),
    /// `module::function(…)` with a lowercase path head.
    Module(String),
    /// `function(…)` with no path — same-file first, then unique global.
    Bare,
    /// Receiver unknown (chained calls, temporaries): resolved only when
    /// the name is globally unique and not a common std method.
    Opaque,
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// The called name (method or function).
    pub name: String,
    /// Receiver classification.
    pub recv: Receiver,
    /// 1-based line of the call.
    pub line: u32,
    /// Lock fields whose guards are live at this call (guard model
    /// shared with `lock-order`).
    pub guards: Vec<String>,
    /// Whether the call sits in test-gated code.
    pub in_test: bool,
}

/// One function definition with its summary seed.
#[derive(Clone, Debug)]
pub struct FnSym {
    /// The function's name.
    pub name: String,
    /// Enclosing `impl`/`trait` type, when any.
    pub impl_type: Option<String>,
    /// File-derived module name (`srw.rs` → `srw`, `lib.rs` → crate dir).
    pub module: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the definition is test-gated.
    pub is_test: bool,
    /// Whether the file is library code (vs test/bin/example/bench).
    pub library: bool,
    /// Direct effect facts.
    pub facts: Facts,
    /// Witness text per direct fact (for hop-chain messages).
    pub why: [Option<String>; FACT_COUNT],
    /// 1-based line of each fact's first direct evidence (for checking
    /// whether an inline suppression at the source seals the chain).
    pub fact_line: [Option<u32>; FACT_COUNT],
    /// Call sites, in source order.
    pub calls: Vec<CallSite>,
}

/// A struct definition (used by `checkpoint-coverage`).
#[derive(Clone, Debug)]
pub struct StructDef {
    /// The struct's name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Named fields, in order (empty for tuple/unit structs).
    pub fields: Vec<String>,
    /// Idents inside the attributes directly above the definition
    /// (derive lists land here: `Serialize`, `Deserialize`, …).
    pub attr_idents: Vec<String>,
    /// Lines of `skip`-carrying attributes *inside* the body (a
    /// `#[serde(skip)]` field silently drops state from checkpoints).
    pub skip_attr_lines: Vec<u32>,
}

/// A struct literal or pattern (`Name { … }`) observed in code.
#[derive(Clone, Debug)]
pub struct StructUse {
    /// The struct name.
    pub name: String,
    /// 1-based line.
    pub line: u32,
    /// Whether the body contains a `..` rest (functional update in a
    /// literal, rest pattern in a match/let).
    pub has_rest: bool,
    /// Whether the use sits in test-gated code.
    pub in_test: bool,
}

/// Everything the workspace phase needs from one file.
#[derive(Clone, Debug)]
pub struct FileSymbols {
    /// Workspace-relative path.
    pub file: String,
    /// File role (test/bin/example/bench classification).
    pub role: FileRole,
    /// File-derived module name.
    pub module: String,
    /// Function definitions.
    pub fns: Vec<FnSym>,
    /// Struct definitions.
    pub structs: Vec<StructDef>,
    /// Struct literal/pattern uses.
    pub struct_uses: Vec<StructUse>,
    /// Inline suppressions, copied so workspace-phase findings honor
    /// `ma-lint: allow(...)` the same way per-file rules do.
    pub suppressions: Vec<Suppression>,
    /// Trace-vocabulary facts for the `schema-closed` rule.
    pub schema: crate::rules::schema_closed::SchemaFacts,
}

impl FileSymbols {
    /// Whether a workspace-phase finding of `rule` at `line` is covered
    /// by an inline directive in this file.
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressions
            .iter()
            .any(|s| s.rules.iter().any(|r| r == rule) && (s.whole_file || s.lines.contains(&line)))
    }
}

/// Keywords that can precede `(` without being a call.
const KEYWORDS: [&str; 24] = [
    "if", "else", "while", "match", "for", "loop", "return", "let", "in", "as", "mut", "ref",
    "move", "fn", "impl", "trait", "struct", "enum", "mod", "where", "use", "pub", "unsafe",
    "await",
];

/// Type-position wrappers unwrapped when recovering a receiver type
/// (`Arc<Mutex<T>>` → follow into the generics; the lock itself is
/// handled by the guard model, not the type map).
const TYPE_WRAPPERS: [&str; 7] = ["Arc", "Rc", "Box", "Option", "RefCell", "Cell", "Vec"];

/// Extracts this file's symbols from an already-built context.
pub fn extract(ctx: &FileCtx) -> FileSymbols {
    let toks = &ctx.tokens;
    let impls = impl_ranges(toks);
    let (structs, field_types) = struct_defs(ctx);
    let struct_uses = struct_uses(ctx);
    let lock_fields = lock_order::lock_fields(ctx);
    let module = module_name(ctx.path);
    let mut fns = Vec::new();
    for f in &ctx.fns {
        let name = match toks.get(f.fn_idx + 1).and_then(|t| t.ident()) {
            Some(n) => n.to_string(),
            None => continue,
        };
        let impl_type = impls
            .iter()
            .filter(|(open, close, _)| *open < f.fn_idx && f.body_close <= *close)
            .min_by_key(|(open, close, _)| close - open)
            .map(|(_, _, ty)| ty.clone());
        let mut sym = FnSym {
            name,
            impl_type,
            module: module.clone(),
            file: ctx.path.to_string(),
            line: toks[f.fn_idx].line,
            is_test: ctx.is_test_code(f.fn_idx),
            library: ctx.role.is_library(),
            facts: Facts::default(),
            why: Default::default(),
            fact_line: Default::default(),
            calls: Vec::new(),
        };
        let locals = param_types(toks, f.fn_idx, f.body_open);
        scan_body(ctx, f, &locals, &field_types, &lock_fields, &mut sym);
        fns.push(sym);
    }
    FileSymbols {
        file: ctx.path.to_string(),
        role: ctx.role,
        module,
        fns,
        structs,
        struct_uses,
        suppressions: ctx.suppressions.clone(),
        schema: crate::rules::schema_closed::harvest(ctx),
    }
}

/// File path → module name: the file stem, except `mod.rs`/`lib.rs`/
/// `main.rs`, which take their directory's name (for `lib.rs` that is
/// `src`, so we go one more level up to the crate directory).
fn module_name(path: &str) -> String {
    let parts: Vec<&str> = path.split('/').collect();
    let stem = parts
        .last()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("");
    if stem != "mod" && stem != "lib" && stem != "main" {
        return stem.to_string();
    }
    let mut dirs = parts[..parts.len() - 1].iter().rev();
    match dirs.next() {
        Some(&"src") => dirs.next().copied().unwrap_or("").to_string(),
        Some(d) => d.to_string(),
        None => String::new(),
    }
}

/// Finds `impl`/`trait` body token ranges with the implemented type's
/// name (`impl Trait for Type` → `Type`; `trait Name` → `Name`, so
/// default methods resolve against the trait).
fn impl_ranges(toks: &[Token]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let kw_impl = toks[i].is_ident("impl");
        let kw_trait = toks[i].is_ident("trait");
        if !kw_impl && !kw_trait {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // Skip the generic parameter list.
        if toks.get(j).is_some_and(|t| t.is_punct('<')) {
            let mut angle = 0i32;
            while let Some(t) = toks.get(j) {
                if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Read type paths up to the body `{`; the segment after `for`
        // (when present) names the implementing type.
        let mut ty: Option<String> = None;
        let mut in_where = false;
        let mut angle = 0i32;
        while let Some(t) = toks.get(j) {
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
            } else if angle == 0 {
                if t.is_punct('{') {
                    break;
                }
                if t.is_punct(';') {
                    // A bodyless `impl`/`trait` declaration: nothing to index.
                    ty = None;
                    break;
                }
                if t.is_ident("for") {
                    // `impl Trait for Type`: the implementing type follows.
                    ty = None;
                } else if t.is_ident("where") {
                    // Bound idents must not overwrite the captured type.
                    in_where = true;
                } else if let Some(id) = t.ident() {
                    if !in_where {
                        ty = Some(id.to_string());
                    }
                }
            }
            j += 1;
        }
        if let (Some(ty), Some(open)) = (
            ty,
            toks.get(j).is_some_and(|t| t.is_punct('{')).then_some(j),
        ) {
            if let Some(close) = matching_brace(toks, open) {
                out.push((open, close, ty));
                // Nested impls (e.g. inside fn bodies) are rare; keep
                // scanning from inside so they are still indexed.
                i = open + 1;
                continue;
            }
        }
        i = j + 1;
    }
    out
}

/// Parses the receiver-relevant head of a type expression starting at
/// `j`: skips `&`/`mut`/`dyn`/`impl`/lifetimes, descends through one
/// layer of wrapper generics, and follows `::` paths to their last
/// segment. `&mut Arc<api::MicroblogClient>` → `MicroblogClient`.
fn type_head(toks: &[Token], mut j: usize, end: usize) -> Option<String> {
    let mut hops = 0;
    while j < end && hops < 32 {
        hops += 1;
        let t = toks.get(j)?;
        if t.is_punct('&') || t.is_punct('*') || t.kind == crate::lexer::TokenKind::Lifetime {
            j += 1;
            continue;
        }
        if t.is_ident("mut") || t.is_ident("dyn") || t.is_ident("impl") || t.is_ident("const") {
            j += 1;
            continue;
        }
        let id = t.ident()?;
        // Wrapper with generics: descend.
        if TYPE_WRAPPERS.contains(&id) && toks.get(j + 1).is_some_and(|t| t.is_punct('<')) {
            j += 2;
            continue;
        }
        // Path: follow `a::b::C` to the last segment.
        let mut last = id.to_string();
        let mut k = j;
        while toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
        {
            match toks.get(k + 3).and_then(|t| t.ident()) {
                Some(seg) => {
                    last = seg.to_string();
                    k += 3;
                }
                None => break,
            }
        }
        return Some(last);
    }
    None
}

/// Recovers `name → type` for the function's parameters (the signature
/// between the name's `(` and its matching `)`).
fn param_types(toks: &[Token], fn_idx: usize, body_open: usize) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let mut open = None;
    for (k, t) in toks.iter().enumerate().take(body_open).skip(fn_idx) {
        if t.is_punct('(') {
            open = Some(k);
            break;
        }
    }
    let Some(open) = open else { return out };
    let mut depth = 0i32;
    let mut close = open;
    for (k, t) in toks.iter().enumerate().take(body_open + 1).skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                close = k;
                break;
            }
        }
    }
    let mut k = open + 1;
    while k < close {
        // `name :` at the top level of the parameter list.
        let is_name = toks[k].ident().is_some()
            && toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(k + 2).is_some_and(|t| t.is_punct(':'));
        if is_name {
            if let (Some(name), Some(ty)) = (toks[k].ident(), type_head(toks, k + 2, close)) {
                out.insert(name.to_string(), ty);
            }
            // Skip to the next top-level comma.
            let mut d = 0i32;
            k += 2;
            while k < close {
                let t = &toks[k];
                if t.is_punct('(') || t.is_punct('<') || t.is_punct('[') {
                    d += 1;
                } else if t.is_punct(')') || t.is_punct('>') || t.is_punct(']') {
                    d -= 1;
                } else if t.is_punct(',') && d <= 0 {
                    break;
                }
                k += 1;
            }
        }
        k += 1;
    }
    out
}

/// Extracts struct definitions plus a merged `field → type` map used to
/// type `self.field.method(…)` receivers.
fn struct_defs(ctx: &FileCtx) -> (Vec<StructDef>, BTreeMap<String, String>) {
    let toks = &ctx.tokens;
    let mut defs = Vec::new();
    let mut field_types = BTreeMap::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("struct") {
            i += 1;
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) else {
            i += 1;
            continue;
        };
        // Attributes directly above: walk back over `# [ … ]` groups
        // (skipping `pub`/doc tokens is unnecessary — attrs are adjacent).
        let mut attr_idents = Vec::new();
        let mut back = i;
        if toks
            .get(back.wrapping_sub(1))
            .is_some_and(|t| t.is_ident("pub"))
        {
            back -= 1;
        }
        while back >= 2 && toks[back - 1].is_punct(']') {
            // Find the matching `[` then its leading `#`.
            let mut depth = 0i32;
            let mut k = back - 1;
            loop {
                if toks[k].is_punct(']') {
                    depth += 1;
                } else if toks[k].is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 {
                    break;
                }
                k -= 1;
            }
            if k >= 1 && toks[k - 1].is_punct('#') {
                for t in &toks[k..back] {
                    if let Some(id) = t.ident() {
                        attr_idents.push(id.to_string());
                    }
                }
                back = k - 1;
            } else {
                break;
            }
        }
        // Body: `{ fields }` for named structs; `(`/`;` for tuple/unit.
        let mut j = i + 2;
        let mut angle = 0i32;
        let mut body = None;
        while let Some(t) = toks.get(j) {
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
            } else if angle == 0 {
                if t.is_punct('{') {
                    body = Some(j);
                    break;
                }
                if t.is_punct(';') || t.is_punct('(') {
                    break;
                }
            }
            j += 1;
        }
        let def_line = toks[i].line;
        let mut fields = Vec::new();
        let mut skip_attr_lines = Vec::new();
        if let Some(open) = body {
            if let Some(close) = matching_brace(toks, open) {
                let mut k = open + 1;
                let mut in_attr = 0i32;
                while k < close {
                    let t = &toks[k];
                    if t.is_punct('[') && k >= 1 && toks[k - 1].is_punct('#') {
                        in_attr += 1;
                    } else if in_attr > 0 {
                        if t.is_punct(']') {
                            in_attr -= 1;
                        } else if t.is_ident("skip") {
                            skip_attr_lines.push(t.line);
                        }
                    } else if t.ident().is_some()
                        && toks.get(k + 1).is_some_and(|p| p.is_punct(':'))
                        && !toks.get(k + 2).is_some_and(|p| p.is_punct(':'))
                        && !toks.get(k.wrapping_sub(1)).is_some_and(|p| p.is_punct(':'))
                    {
                        let fname = t.ident().unwrap_or("").to_string();
                        if let Some(ty) = type_head(toks, k + 2, close) {
                            field_types.insert(fname.clone(), ty);
                        }
                        fields.push(fname);
                    }
                    k += 1;
                }
                i = close + 1;
                defs.push(StructDef {
                    name: name.to_string(),
                    line: def_line,
                    fields,
                    attr_idents,
                    skip_attr_lines,
                });
                continue;
            }
        }
        defs.push(StructDef {
            name: name.to_string(),
            line: def_line,
            fields,
            attr_idents,
            skip_attr_lines,
        });
        i = j + 1;
    }
    (defs, field_types)
}

/// Finds struct literal/pattern uses: `Name { … }` where `Name` is
/// uppercase and the preceding token puts it in expression/pattern
/// position (after `(`, `,`, `=`, `{`, `[`, `&`, `let`, `return`,
/// `else`, `=>`; *not* after `->`, `impl`, `for`, `struct`, …).
fn struct_uses(ctx: &FileCtx) -> Vec<StructUse> {
    let toks = &ctx.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if !name.starts_with(|c: char| c.is_ascii_uppercase()) {
            continue;
        }
        let Some(open) = i
            .checked_add(1)
            .filter(|&n| toks.get(n).is_some_and(|t| t.is_punct('{')))
        else {
            continue;
        };
        let positional = match i.checked_sub(1).map(|p| &toks[p]) {
            // Start of file: item position, not an expression.
            None => false,
            Some(prev) => {
                if prev.is_punct('>') {
                    // `=> Name {` is a match arm; `-> Name {` is a return
                    // type followed by the function body.
                    i >= 2 && toks[i - 2].is_punct('=')
                } else {
                    prev.is_punct('(')
                        || prev.is_punct(',')
                        || prev.is_punct('=')
                        || prev.is_punct('{')
                        || prev.is_punct('[')
                        || prev.is_punct('&')
                        || prev.is_ident("let")
                        || prev.is_ident("return")
                        || prev.is_ident("else")
                        || prev.is_ident("Some")
                        || prev.is_ident("Ok")
                }
            }
        };
        if !positional {
            continue;
        }
        let Some(close) = matching_brace(toks, open) else {
            continue;
        };
        // `..` rest: adjacent dots at the body's top level, directly
        // after `{` or `,` (a range in field-value position follows a
        // number/ident instead).
        let mut has_rest = false;
        let mut depth = 0i32;
        for k in open..close {
            let tk = &toks[k];
            if tk.is_punct('{') || tk.is_punct('(') || tk.is_punct('[') {
                depth += 1;
            } else if tk.is_punct('}') || tk.is_punct(')') || tk.is_punct(']') {
                depth -= 1;
            } else if depth == 1
                && tk.is_punct('.')
                && toks.get(k + 1).is_some_and(|t| t.is_punct('.'))
                && (toks[k - 1].is_punct('{') || toks[k - 1].is_punct(','))
            {
                has_rest = true;
            }
        }
        out.push(StructUse {
            name: name.to_string(),
            line: t.line,
            has_rest,
            in_test: ctx.is_test_code(i),
        });
    }
    out
}

/// Walks one function body: classifies call sites, replays lock guards
/// (same lifetime model as `lock-order`), tracks `let` types, and seeds
/// the direct facts.
fn scan_body(
    ctx: &FileCtx,
    f: &crate::context::FnSpan,
    params: &BTreeMap<String, String>,
    field_types: &BTreeMap<String, String>,
    lock_fields: &std::collections::BTreeSet<String>,
    sym: &mut FnSym,
) {
    let toks = &ctx.tokens;
    let mut locals = params.clone();
    // (field, acquisition_depth, held_to_block_end)
    let mut live: Vec<(String, i32, bool)> = Vec::new();
    let mut depth = 0i32;
    let mut i = f.body_open;
    while i <= f.body_close {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            live.retain(|(_, d, _)| *d <= depth);
        } else if t.is_punct(';') {
            live.retain(|(_, d, held)| *held && *d <= depth);
        } else if t.is_ident("let") {
            // `let [mut] name : Type = …` or `let [mut] name = Type::…`.
            let mut k = i + 1;
            if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            if let Some(name) = toks.get(k).and_then(|t| t.ident()) {
                if toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                    && !toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
                {
                    if let Some(ty) = type_head(toks, k + 2, f.body_close) {
                        locals.insert(name.to_string(), ty);
                    }
                } else if toks.get(k + 1).is_some_and(|t| t.is_punct('=')) {
                    // Constructor inference: `let x = Type::…`.
                    let is_ctor = toks
                        .get(k + 2)
                        .and_then(|t| t.ident())
                        .is_some_and(|id| id.starts_with(|c: char| c.is_ascii_uppercase()))
                        && toks.get(k + 3).is_some_and(|t| t.is_punct(':'))
                        && toks.get(k + 4).is_some_and(|t| t.is_punct(':'));
                    if is_ctor {
                        if let Some(ty) = toks.get(k + 2).and_then(|t| t.ident()) {
                            locals.insert(name.to_string(), ty.to_string());
                        }
                    }
                }
            }
        } else if let Some(m) = t.ident() {
            let is_open_paren = toks.get(i + 1).is_some_and(|t| t.is_punct('('));
            if is_open_paren && !KEYWORDS.contains(&m) {
                let prev = i.checked_sub(1).map(|p| &toks[p]);
                let in_test = ctx.is_test_code(i);
                let method = prev.is_some_and(|p| p.is_punct('.'));
                let path_call = i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':');
                let def = prev.is_some_and(|p| p.is_ident("fn"));
                if !def && (method || path_call || prev.is_none() || classify_bare(prev)) {
                    let recv = if method {
                        receiver_of(toks, i, &locals, field_types)
                    } else if path_call {
                        match i.checked_sub(3).and_then(|h| toks[h].ident()) {
                            Some(head) if head.starts_with(|c: char| c.is_ascii_uppercase()) => {
                                Receiver::Typed(head.to_string())
                            }
                            Some(head) => Receiver::Module(head.to_string()),
                            None => Receiver::Opaque,
                        }
                    } else {
                        Receiver::Bare
                    };
                    seed_facts(
                        toks,
                        i,
                        m,
                        method,
                        path_call,
                        lock_fields,
                        &mut live,
                        depth,
                        sym,
                        in_test,
                    );
                    sym.calls.push(CallSite {
                        name: m.to_string(),
                        recv,
                        line: t.line,
                        guards: live.iter().map(|(g, _, _)| g.clone()).collect(),
                        in_test,
                    });
                }
            }
        }
        i += 1;
    }
}

/// Whether a name token preceded by `prev` is a bare function call
/// (excludes field access, paths — handled elsewhere — and `fn` defs).
fn classify_bare(prev: Option<&Token>) -> bool {
    match prev {
        None => true,
        Some(p) => !(p.is_punct('.') || p.is_punct(':') || p.is_ident("fn")),
    }
}

/// Classifies a method call's receiver at `i` (the method-name token).
fn receiver_of(
    toks: &[Token],
    i: usize,
    locals: &BTreeMap<String, String>,
    field_types: &BTreeMap<String, String>,
) -> Receiver {
    let Some(r) = i.checked_sub(2).and_then(|k| toks[k].ident()) else {
        return Receiver::Opaque;
    };
    if r == "self" {
        return Receiver::SelfType;
    }
    // `self.field.method(…)` — type the field through the struct map.
    let via_self = i >= 4 && toks[i - 3].is_punct('.') && toks[i - 4].is_ident("self");
    if via_self {
        if let Some(ty) = field_types.get(r) {
            return Receiver::Typed(ty.clone());
        }
        return Receiver::Opaque;
    }
    // Plain `x.method(…)`: a chained receiver (`a.b().method(…)`) has a
    // `.` two tokens further back and `x` is then a method name itself.
    let chained = i >= 3 && toks[i - 3].is_punct('.');
    if chained {
        return Receiver::Opaque;
    }
    if let Some(ty) = locals.get(r).or_else(|| field_types.get(r)) {
        return Receiver::Typed(ty.clone());
    }
    Receiver::Opaque
}

/// Seeds direct facts for the call at token `i` and updates the live
/// guard set for `lock`/`read`/`write` acquisitions.
#[allow(clippy::too_many_arguments)]
fn seed_facts(
    toks: &[Token],
    i: usize,
    m: &str,
    method: bool,
    path_call: bool,
    lock_fields: &std::collections::BTreeSet<String>,
    live: &mut Vec<(String, i32, bool)>,
    depth: i32,
    sym: &mut FnSym,
    in_test: bool,
) {
    let line = toks[i].line;
    let head = || i.checked_sub(3).and_then(|h| toks[h].ident()).unwrap_or("");
    if method && RAW_METHODS.contains(&m) && !in_test {
        sym.facts.set(FACT_FETCH);
        if sym.why[FACT_FETCH].is_none() {
            sym.why[FACT_FETCH] = Some(format!(".{m}(…) at {}:{line}", sym.file));
            sym.fact_line[FACT_FETCH] = Some(line);
        }
    }
    if path_call && !in_test {
        let h = head();
        let fs_hit = (h == "fs" && FS_WRITE_FNS.contains(&m))
            || (h == "File" && (m == "create" || m == "create_new"))
            || (h == "OpenOptions" && m == "new");
        if fs_hit {
            sym.facts.set(FACT_FSWRITE);
            if sym.why[FACT_FSWRITE].is_none() {
                sym.why[FACT_FSWRITE] = Some(format!("{h}::{m}(…) at {}:{line}", sym.file));
                sym.fact_line[FACT_FSWRITE] = Some(line);
            }
        }
    }
    if !in_test && ((method && RNG_DRAWS.contains(&m)) || RNG_CONSTRUCTORS.contains(&m)) {
        sym.facts.set(FACT_RNG);
        if sym.why[FACT_RNG].is_none() {
            sym.why[FACT_RNG] = Some(format!("{m}(…) at {}:{line}", sym.file));
            sym.fact_line[FACT_RNG] = Some(line);
        }
    }
    if method && (m == "charge" || m == "trace_charge") {
        sym.facts.set(FACT_CHARGE);
    }
    if method && (m == "lock" || m == "read" || m == "write") {
        if let Some(field) = i
            .checked_sub(2)
            .and_then(|r| toks[r].ident())
            .filter(|f| lock_fields.contains(*f))
        {
            sym.facts.set(FACT_LOCK);
            let held = lock_order::statement_binds(toks, i, 0);
            live.push((field.to_string(), depth, held));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym_of(src: &str) -> FileSymbols {
        let ctx = FileCtx::new("crates/core/src/helper.rs", src);
        extract(&ctx)
    }

    #[test]
    fn fn_qualification_and_calls() {
        let s = sym_of(
            "impl Walker {\n  fn step(&mut self, g: &QueryGraph) {\n    self.advance();\n    g.neighbors_into(1);\n    helper();\n    journal::replay();\n  }\n}\nfn helper() {}\n",
        );
        assert_eq!(s.fns.len(), 2);
        let step = &s.fns[0];
        assert_eq!(step.impl_type.as_deref(), Some("Walker"));
        assert_eq!(step.module, "helper");
        let kinds: Vec<(&str, &Receiver)> = step
            .calls
            .iter()
            .map(|c| (c.name.as_str(), &c.recv))
            .collect();
        assert!(kinds.contains(&("advance", &Receiver::SelfType)));
        assert!(kinds.contains(&("neighbors_into", &Receiver::Typed("QueryGraph".into()))));
        assert!(kinds.contains(&("helper", &Receiver::Bare)));
        assert!(kinds.contains(&("replay", &Receiver::Module("journal".into()))));
    }

    #[test]
    fn direct_facts_seeded() {
        let s = sym_of(
            "fn fetches(p: &Platform) { p.timeline(1); }\nfn writes() { fs::write(\"a\", \"b\"); }\nfn draws(rng: &mut Rng) { rng.gen_range(0..4); }\n",
        );
        assert!(s.fns[0].facts.has(FACT_FETCH));
        assert!(!s.fns[0].facts.has(FACT_FSWRITE));
        assert!(s.fns[1].facts.has(FACT_FSWRITE));
        assert!(s.fns[2].facts.has(FACT_RNG));
        assert!(s.fns[0].why[FACT_FETCH]
            .as_deref()
            .unwrap()
            .contains("timeline"));
    }

    #[test]
    fn guards_recorded_at_call_sites() {
        let s = sym_of(
            "struct S { table: Mutex<u32> }\nimpl S {\n  fn f(&self) {\n    let g = self.table.lock();\n    helper();\n  }\n}\n",
        );
        let f = s.fns.iter().find(|f| f.name == "f").expect("fn f");
        let call = f.calls.iter().find(|c| c.name == "helper").expect("call");
        assert_eq!(call.guards, vec!["table".to_string()]);
        assert!(f.facts.has(FACT_LOCK));
    }

    #[test]
    fn struct_defs_and_uses() {
        let s = sym_of(
            "#[derive(Serialize, Deserialize)]\npub struct SrwState { pub node: u64, pub steps: u64 }\nfn make(node: u64) -> SrwState {\n  SrwState { node, steps: 0 }\n}\nfn partial(old: SrwState) -> SrwState {\n  SrwState { node: 1, ..old }\n}\n",
        );
        let d = &s.structs[0];
        assert_eq!(d.name, "SrwState");
        assert_eq!(d.fields, vec!["node", "steps"]);
        assert!(d.attr_idents.iter().any(|a| a == "Serialize"));
        let uses: Vec<(&str, bool)> = s
            .struct_uses
            .iter()
            .map(|u| (u.name.as_str(), u.has_rest))
            .collect();
        assert!(uses.contains(&("SrwState", false)));
        assert!(uses.contains(&("SrwState", true)));
        // The `-> SrwState {` return types must NOT count as uses.
        assert_eq!(uses.len(), 2, "{uses:?}");
    }
}
