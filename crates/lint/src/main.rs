//! The `ma-lint` CLI.
//!
//! ```text
//! cargo run -p ma-lint [--release] -- [OPTIONS]
//!
//!   --root <dir>        workspace root (default: .)
//!   --baseline <path>   baseline file (default: <root>/lint-baseline.toml;
//!                       a missing file means an empty baseline)
//!   --write-baseline    rewrite the baseline to absorb all current findings
//!   --json              print the JSON report to stdout instead of text
//!   --json-out <path>   additionally write the JSON report to a file (CI artifact)
//! ```
//!
//! Exit codes: 0 = gate passes, 1 = new (unbaselined) findings,
//! 2 = usage or I/O error.

use ma_lint::baseline::Baseline;
use ma_lint::config::Config;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    json: bool,
    json_out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        baseline: None,
        write_baseline: false,
        json: false,
        json_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => args.root = PathBuf::from(it.next().ok_or("--root needs a value")?),
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a value")?))
            }
            "--write-baseline" => args.write_baseline = true,
            "--json" => args.json = true,
            "--json-out" => {
                args.json_out = Some(PathBuf::from(it.next().ok_or("--json-out needs a value")?))
            }
            "--help" | "-h" => {
                return Err("usage: ma-lint [--root <dir>] [--baseline <path>] \
                            [--write-baseline] [--json] [--json-out <path>]"
                    .to_string())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| args.root.join("lint-baseline.toml"));
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(msg) => {
                eprintln!("ma-lint: {}: {msg}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => Baseline::default(),
    };
    let cfg = Config::default();
    let report = match ma_lint::analyze_workspace(&args.root, &cfg, &baseline) {
        Ok(r) => r,
        Err(err) => {
            eprintln!("ma-lint: failed to scan {}: {err}", args.root.display());
            return ExitCode::from(2);
        }
    };
    if args.write_baseline {
        let fresh = Baseline::from_findings(&report.findings);
        if let Err(err) = std::fs::write(&baseline_path, fresh.to_toml()) {
            eprintln!("ma-lint: cannot write {}: {err}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "ma-lint: wrote {} entr{} to {}",
            fresh.counts.len(),
            if fresh.counts.len() == 1 { "y" } else { "ies" },
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }
    if let Some(path) = &args.json_out {
        if let Err(err) = std::fs::write(path, report.render_json()) {
            eprintln!("ma-lint: cannot write {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }
    if args.json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
