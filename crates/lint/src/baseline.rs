//! The checked-in findings baseline.
//!
//! A baseline lets the gate start at **zero new findings** without first
//! fixing every historical one: `lint-baseline.toml` records, per
//! `rule:file` key, how many findings are grandfathered. The CI gate
//! fails only when a key's live count exceeds its baselined count, and
//! reports stale entries (live < baselined) so the file ratchets down to
//! empty over time.
//!
//! The format is a deliberately tiny TOML subset — one `[counts]` table
//! of `"rule:path" = n` entries — parsed by hand because the workspace
//! is offline and the linter must stay dependency-free.

use crate::context::Finding;
use std::collections::BTreeMap;

/// Parsed baseline: `rule:file` → grandfathered finding count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// The grandfathered counts.
    pub counts: BTreeMap<String, u32>,
}

impl Baseline {
    /// Parses the baseline file format. Lines are comments (`#`), the
    /// `[counts]` header, or `"rule:path" = n`.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut counts = BTreeMap::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') || line == "[counts]" {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                format!("baseline line {}: expected `\"rule:path\" = n`", lineno + 1)
            })?;
            let key = key.trim().trim_matches('"');
            if !key.contains(':') {
                return Err(format!(
                    "baseline line {}: key `{key}` is not `rule:path`",
                    lineno + 1
                ));
            }
            let n: u32 = value.trim().parse().map_err(|_| {
                format!(
                    "baseline line {}: `{}` is not a count",
                    lineno + 1,
                    value.trim()
                )
            })?;
            counts.insert(key.to_string(), n);
        }
        Ok(Baseline { counts })
    }

    /// Serializes back to the file format.
    pub fn to_toml(&self) -> String {
        let mut out = String::from(
            "# ma-lint baseline — grandfathered findings per rule:file.\n\
             # Regenerate with `cargo run -p ma-lint -- --write-baseline`;\n\
             # the goal is for this file to stay empty.\n\
             [counts]\n",
        );
        for (key, n) in &self.counts {
            out.push_str(&format!("\"{key}\" = {n}\n"));
        }
        out
    }

    /// Builds the baseline that would make `findings` pass exactly.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut counts: BTreeMap<String, u32> = BTreeMap::new();
        for f in findings {
            *counts.entry(format!("{}:{}", f.rule, f.file)).or_default() += 1;
        }
        Baseline { counts }
    }
}

/// The result of gating `findings` against a baseline.
#[derive(Clone, Debug, Default)]
pub struct GateResult {
    /// Findings not covered by the baseline — these fail the gate.
    pub new: Vec<Finding>,
    /// Findings absorbed by baseline counts.
    pub baselined: usize,
    /// Baseline keys whose live count dropped below the recorded one
    /// (ratchet the file down).
    pub stale: Vec<(String, u32, u32)>,
}

/// Applies `baseline` to `findings`. Within a `rule:file` key the first
/// `n` findings (in line order) are absorbed; the rest are new.
pub fn gate(findings: &[Finding], baseline: &Baseline) -> GateResult {
    let mut live: BTreeMap<String, Vec<&Finding>> = BTreeMap::new();
    for f in findings {
        live.entry(format!("{}:{}", f.rule, f.file))
            .or_default()
            .push(f);
    }
    let mut result = GateResult::default();
    for (key, group) in &live {
        let allowed = baseline.counts.get(key).copied().unwrap_or(0) as usize;
        result.baselined += group.len().min(allowed);
        for f in group.iter().skip(allowed) {
            result.new.push((*f).clone());
        }
    }
    for (key, &n) in &baseline.counts {
        let seen = live.get(key).map_or(0, |g| g.len()) as u32;
        if seen < n {
            result.stale.push((key.clone(), n, seen));
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, line: u32) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message: String::new(),
        }
    }

    #[test]
    fn parse_roundtrip() {
        let b = Baseline::parse(
            "# comment\n[counts]\n\"panic-safety:crates/core/src/view.rs\" = 3\n\"wall-clock:a.rs\" = 1\n",
        )
        .unwrap();
        assert_eq!(b.counts.len(), 2);
        let again = Baseline::parse(&b.to_toml()).unwrap();
        assert_eq!(b, again);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("nonsense\n").is_err());
        assert!(Baseline::parse("\"no-colon\" = 1\n").is_err());
        assert!(Baseline::parse("\"a:b\" = many\n").is_err());
    }

    #[test]
    fn gate_absorbs_up_to_count_and_flags_the_rest() {
        let findings = vec![
            finding("panic-safety", "a.rs", 1),
            finding("panic-safety", "a.rs", 2),
            finding("panic-safety", "a.rs", 3),
            finding("wall-clock", "b.rs", 9),
        ];
        let baseline = Baseline::parse("\"panic-safety:a.rs\" = 2\n").unwrap();
        let r = gate(&findings, &baseline);
        assert_eq!(r.baselined, 2);
        assert_eq!(r.new.len(), 2);
        assert!(r.new.iter().any(|f| f.rule == "wall-clock"));
        assert!(r.stale.is_empty());
    }

    #[test]
    fn gate_reports_stale_entries() {
        let baseline = Baseline::parse("\"charging:gone.rs\" = 4\n").unwrap();
        let r = gate(&[], &baseline);
        assert!(r.new.is_empty());
        assert_eq!(r.stale, vec![("charging:gone.rs".to_string(), 4, 0)]);
    }
}
