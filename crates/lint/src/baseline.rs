//! The checked-in findings baseline.
//!
//! A baseline lets the gate start at **zero new findings** without first
//! fixing every historical one: `lint-baseline.toml` records, per
//! `rule:file` key, how many findings are grandfathered. The CI gate
//! fails only when a key's live count exceeds its baselined count, and
//! reports stale entries (live < baselined) so the file ratchets down to
//! empty over time.
//!
//! Since v2 the file also carries a `[rule-totals]` table: a hard
//! per-rule ceiling on the *total* live findings for that rule across
//! the workspace. The per-file `[counts]` gate alone has a loophole —
//! re-running `--write-baseline` after moving code shuffles findings
//! between keys without anyone noticing the total crept up. The ceiling
//! closes it: a rule's workspace total may never exceed its recorded
//! cap, regardless of how the findings are distributed. Legacy baselines
//! without a `[rule-totals]` table get an implicit cap equal to the sum
//! of that rule's `[counts]` entries.
//!
//! The format is a deliberately tiny TOML subset — two tables of
//! `"key" = n` entries — parsed by hand because the workspace is offline
//! and the linter must stay dependency-free.

use crate::context::Finding;
use std::collections::BTreeMap;

/// Parsed baseline: grandfathered per-file counts plus per-rule caps.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `rule:file` → grandfathered finding count.
    pub counts: BTreeMap<String, u32>,
    /// `rule` → hard ceiling on the workspace-wide live total.
    pub rule_totals: BTreeMap<String, u32>,
}

impl Baseline {
    /// Parses the baseline file format. Lines are comments (`#`), a
    /// `[counts]` / `[rule-totals]` table header, or `"key" = n`.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut counts = BTreeMap::new();
        let mut rule_totals = BTreeMap::new();
        let mut in_totals = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[counts]" {
                in_totals = false;
                continue;
            }
            if line == "[rule-totals]" {
                in_totals = true;
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("baseline line {}: expected `\"key\" = n`", lineno + 1))?;
            let key = key.trim().trim_matches('"');
            let n: u32 = value.trim().parse().map_err(|_| {
                format!(
                    "baseline line {}: `{}` is not a count",
                    lineno + 1,
                    value.trim()
                )
            })?;
            if in_totals {
                if key.contains(':') {
                    return Err(format!(
                        "baseline line {}: rule-totals key `{key}` must be a bare rule name",
                        lineno + 1
                    ));
                }
                rule_totals.insert(key.to_string(), n);
            } else {
                if !key.contains(':') {
                    return Err(format!(
                        "baseline line {}: key `{key}` is not `rule:path`",
                        lineno + 1
                    ));
                }
                counts.insert(key.to_string(), n);
            }
        }
        Ok(Baseline {
            counts,
            rule_totals,
        })
    }

    /// The ceiling for `rule`: the recorded `[rule-totals]` entry, or —
    /// for legacy baselines without one — the sum of the rule's
    /// `[counts]` entries.
    pub fn rule_cap(&self, rule: &str) -> u32 {
        if let Some(&cap) = self.rule_totals.get(rule) {
            return cap;
        }
        self.counts
            .iter()
            .filter(|(k, _)| k.split_once(':').is_some_and(|(r, _)| r == rule))
            .map(|(_, &n)| n)
            .sum()
    }

    /// Serializes back to the file format (always the v2 per-rule form).
    pub fn to_toml(&self) -> String {
        let mut out = String::from(
            "# ma-lint baseline — grandfathered findings per rule:file, plus a\n\
             # hard per-rule ceiling on the workspace-wide total.\n\
             # Regenerate with `cargo run -p ma-lint -- --write-baseline`;\n\
             # the goal is for this file to stay empty.\n\
             [counts]\n",
        );
        for (key, n) in &self.counts {
            out.push_str(&format!("\"{key}\" = {n}\n"));
        }
        out.push_str("\n[rule-totals]\n");
        for (rule, n) in &self.rule_totals {
            out.push_str(&format!("\"{rule}\" = {n}\n"));
        }
        out
    }

    /// Builds the baseline that would make `findings` pass exactly.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut counts: BTreeMap<String, u32> = BTreeMap::new();
        let mut rule_totals: BTreeMap<String, u32> = BTreeMap::new();
        for f in findings {
            *counts.entry(format!("{}:{}", f.rule, f.file)).or_default() += 1;
            *rule_totals.entry(f.rule.to_string()).or_default() += 1;
        }
        Baseline {
            counts,
            rule_totals,
        }
    }
}

/// The result of gating `findings` against a baseline.
#[derive(Clone, Debug, Default)]
pub struct GateResult {
    /// Findings not covered by the baseline — these fail the gate.
    pub new: Vec<Finding>,
    /// Findings absorbed by baseline counts.
    pub baselined: usize,
    /// Baseline keys whose live count dropped below the recorded one
    /// (ratchet the file down).
    pub stale: Vec<(String, u32, u32)>,
    /// Rules whose workspace-wide live total exceeds the per-rule cap:
    /// `(rule, cap, live)`. These fail the gate even when every finding
    /// is individually baselined.
    pub rule_regressions: Vec<(String, u32, u32)>,
}

/// Applies `baseline` to `findings`. Within a `rule:file` key the first
/// `n` findings (in line order) are absorbed; the rest are new. On top
/// of that, each rule's live total is checked against its ceiling.
pub fn gate(findings: &[Finding], baseline: &Baseline) -> GateResult {
    let mut live: BTreeMap<String, Vec<&Finding>> = BTreeMap::new();
    let mut per_rule: BTreeMap<&'static str, u32> = BTreeMap::new();
    for f in findings {
        live.entry(format!("{}:{}", f.rule, f.file))
            .or_default()
            .push(f);
        *per_rule.entry(f.rule).or_default() += 1;
    }
    let mut result = GateResult::default();
    for (key, group) in &live {
        let allowed = baseline.counts.get(key).copied().unwrap_or(0) as usize;
        result.baselined += group.len().min(allowed);
        for f in group.iter().skip(allowed) {
            result.new.push((*f).clone());
        }
    }
    for (key, &n) in &baseline.counts {
        let seen = live.get(key).map_or(0, |g| g.len()) as u32;
        if seen < n {
            result.stale.push((key.clone(), n, seen));
        }
    }
    for (&rule, &total) in &per_rule {
        let cap = baseline.rule_cap(rule);
        if total > cap {
            result.rule_regressions.push((rule.to_string(), cap, total));
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, line: u32) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message: String::new(),
        }
    }

    #[test]
    fn parse_roundtrip() {
        let b = Baseline::parse(
            "# comment\n[counts]\n\"panic-safety:crates/core/src/view.rs\" = 3\n\"wall-clock:a.rs\" = 1\n\n[rule-totals]\n\"panic-safety\" = 3\n\"wall-clock\" = 1\n",
        )
        .unwrap();
        assert_eq!(b.counts.len(), 2);
        assert_eq!(b.rule_totals.len(), 2);
        let again = Baseline::parse(&b.to_toml()).unwrap();
        assert_eq!(b, again);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("nonsense\n").is_err());
        assert!(Baseline::parse("\"no-colon\" = 1\n").is_err());
        assert!(Baseline::parse("\"a:b\" = many\n").is_err());
        assert!(Baseline::parse("[rule-totals]\n\"rule:with-path\" = 1\n").is_err());
    }

    #[test]
    fn gate_absorbs_up_to_count_and_flags_the_rest() {
        let findings = vec![
            finding("panic-safety", "a.rs", 1),
            finding("panic-safety", "a.rs", 2),
            finding("panic-safety", "a.rs", 3),
            finding("wall-clock", "b.rs", 9),
        ];
        let baseline = Baseline::parse("\"panic-safety:a.rs\" = 2\n").unwrap();
        let r = gate(&findings, &baseline);
        assert_eq!(r.baselined, 2);
        assert_eq!(r.new.len(), 2);
        assert!(r.new.iter().any(|f| f.rule == "wall-clock"));
        assert!(r.stale.is_empty());
    }

    #[test]
    fn gate_reports_stale_entries() {
        let baseline = Baseline::parse("\"charging:gone.rs\" = 4\n").unwrap();
        let r = gate(&[], &baseline);
        assert!(r.new.is_empty());
        assert_eq!(r.stale, vec![("charging:gone.rs".to_string(), 4, 0)]);
    }

    #[test]
    fn legacy_cap_is_sum_of_counts() {
        let baseline = Baseline::parse("\"charging:a.rs\" = 2\n\"charging:b.rs\" = 1\n").unwrap();
        assert_eq!(baseline.rule_cap("charging"), 3);
        assert_eq!(baseline.rule_cap("wall-clock"), 0);
    }

    #[test]
    fn rule_total_ceiling_catches_shuffled_findings() {
        // Three live findings, all individually covered by per-file
        // counts — but the recorded rule total says two. The ratchet
        // fires even though `new` is empty.
        let findings = vec![
            finding("charging", "a.rs", 1),
            finding("charging", "a.rs", 2),
            finding("charging", "b.rs", 3),
        ];
        let baseline = Baseline::parse(
            "[counts]\n\"charging:a.rs\" = 2\n\"charging:b.rs\" = 1\n\n[rule-totals]\n\"charging\" = 2\n",
        )
        .unwrap();
        let r = gate(&findings, &baseline);
        assert!(r.new.is_empty());
        assert_eq!(r.rule_regressions, vec![("charging".to_string(), 2, 3)]);
    }

    #[test]
    fn from_findings_records_rule_totals() {
        let findings = vec![
            finding("charging", "a.rs", 1),
            finding("charging", "b.rs", 2),
            finding("fs-write", "c.rs", 3),
        ];
        let b = Baseline::from_findings(&findings);
        assert_eq!(b.rule_totals.get("charging"), Some(&2));
        assert_eq!(b.rule_totals.get("fs-write"), Some(&1));
        let r = gate(&findings, &b);
        assert!(r.new.is_empty() && r.rule_regressions.is_empty());
    }
}
