//! What each rule applies to.
//!
//! `ma-lint` is a *workspace* linter: the rule set and its allowlists
//! encode this repository's conventions (see DESIGN.md §9 and §13), so
//! the defaults live in code rather than in a config file. Paths are
//! workspace-relative with `/` separators; matching is by prefix, so
//! `crates/bench/` covers every file under that crate.

/// Rule identifiers, as used in findings, suppression comments and the
/// baseline file.
pub const RULES: [&str; 13] = [
    "wall-clock",
    "panic-safety",
    "determinism",
    "charging",
    "lock-order",
    "lock-across-call",
    "hygiene",
    "fs-write",
    "rng-confinement",
    "checkpoint-coverage",
    "schema-closed",
    "blocking-fetch-in-chain",
    "suppression",
];

/// The analyzer's configuration. [`Config::default`] is the workspace
/// policy; tests build custom ones to aim rules at fixture files.
#[derive(Clone, Debug)]
pub struct Config {
    /// Path prefixes never scanned at all.
    pub skip: Vec<String>,
    /// Path prefixes where wall-clock time is legitimate (benchmarks
    /// time real hardware; everything else uses the simulated clock).
    pub wall_clock_allowed: Vec<String>,
    /// Crates whose library code must be panic-free (prefixes of the
    /// form `crates/<name>/src/`).
    pub panic_safety_paths: Vec<String>,
    /// Estimator/walker/estimate paths where hash-order iteration can
    /// feed arithmetic and is therefore forbidden.
    pub determinism_paths: Vec<String>,
    /// Paths that must route API traffic through the metered client
    /// stack rather than calling `Platform`/`ApiBackend` directly.
    pub charging_paths: Vec<String>,
    /// Paths exempt from the charging rule *within* the above (the
    /// metered stack itself). These are also the call-graph *boundary*:
    /// a fetch reached through a function defined here counts as
    /// charged, so the interprocedural rule does not cross into it.
    pub charging_exempt: Vec<String>,
    /// Paths whose `Mutex`/`RwLock` acquisitions feed the global
    /// lock-order graph.
    pub lock_order_paths: Vec<String>,
    /// Paths where a lock guard may not be held across a
    /// `Platform`/`ApiBackend` fetch (a stalled backend call would block
    /// every thread contending for the lock).
    pub lock_across_call_paths: Vec<String>,
    /// Paths whose library code may not mutate the filesystem directly
    /// (durable state must flow through the write-ahead journal, or
    /// crash recovery cannot replay it).
    pub fs_write_paths: Vec<String>,
    /// Paths exempt from the fs-write rule *within* the above (the
    /// journal writer itself). Like `charging_exempt`, this seals the
    /// call graph: filesystem mutation behind these functions is the
    /// sanctioned durable-state path.
    pub fs_write_exempt: Vec<String>,
    /// Paths scanned by the `rng-confinement` rule: library code here
    /// may not construct or draw from RNGs unless also under
    /// `rng_allowed_paths`. Randomness outside the sampler seams breaks
    /// seeded reproducibility (checkpoint resume, byte-identical
    /// traces).
    pub rng_scope_paths: Vec<String>,
    /// Sampler modules and deliberate randomness seams *within*
    /// `rng_scope_paths` where RNG use is the point: the walker family,
    /// the checkpoint RNG capture/restore, interval-selection pilots,
    /// the analyzer's run-RNG construction, and the resilient client's
    /// seeded jitter.
    pub rng_allowed_paths: Vec<String>,
    /// Files whose `event_names` / `span_names` tables publish the
    /// closed trace vocabulary (the obs schema module).
    pub schema_vocab_files: Vec<String>,
    /// Paths whose tracer call sites (`emit` / `span_start` /
    /// `span_end` with literal category + name) must stay inside that
    /// vocabulary.
    pub schema_use_paths: Vec<String>,
    /// Files defining the checkpoint state structs the
    /// `checkpoint-coverage` rule guards (struct names ending in
    /// `State` plus `WalkerCheckpoint` itself).
    pub checkpoint_state_files: Vec<String>,
    /// Paths where constructions/destructurings of those state structs
    /// must be field-exhaustive (no `..` rest patterns that would let a
    /// newly added field silently default or be dropped on resume).
    pub checkpoint_use_paths: Vec<String>,
    /// Walker chain code where bare blocking client fetches
    /// (`.search(…)`, `.user_timeline(…)`, `.connections(…)`) are
    /// forbidden: a direct call stalls every interleaved chain for a
    /// full RTT instead of flowing through the announced fetch pipeline.
    pub blocking_fetch_paths: Vec<String>,
    /// Crate-root files that must carry `#![forbid(unsafe_code)]`.
    pub hygiene_lib_roots: Vec<String>,
    /// Type names that must be declared `#[must_use]` (estimate-result
    /// types: dropping one silently discards an estimate).
    pub must_use_types: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        let s = |v: &[&str]| v.iter().map(|p| p.to_string()).collect::<Vec<_>>();
        Config {
            skip: s(&[
                "vendor/",
                "target/",
                // The linter's own fixtures deliberately violate every rule.
                "crates/lint/tests/fixtures/",
                "crates/verify/tests/fixtures/",
            ]),
            wall_clock_allowed: s(&[
                // Benchmarks measure real hardware time by definition.
                "crates/bench/",
                // The linter times its own scan (reported in --json);
                // nothing estimate-bearing runs here.
                "crates/lint/",
            ]),
            panic_safety_paths: s(&[
                "crates/api/src/",
                "crates/core/src/",
                "crates/graph/src/",
                "crates/obs/src/",
                "crates/platform/src/",
                "crates/service/src/",
            ]),
            determinism_paths: s(&[
                "crates/core/src/walker/",
                "crates/core/src/analyzer.rs",
                "crates/core/src/estimate.rs",
                "crates/core/src/interval.rs",
                "crates/core/src/level.rs",
                "crates/core/src/seeds.rs",
                "crates/core/src/view.rs",
                "crates/graph/src/walk.rs",
            ]),
            charging_paths: s(&["crates/api/src/", "crates/core/src/", "crates/service/src/"]),
            charging_exempt: s(&[
                // The metered client stack is where direct backend calls
                // are supposed to live.
                "crates/api/src/client.rs",
                // The fetch scheduler prefetches *below* the metering
                // seam by design: results are buffered uncharged and the
                // consuming client charges on consumption (stranded
                // prefetches are rolled back, never billed).
                "crates/api/src/sched.rs",
                // The ground-truth oracle reads the simulator's omniscient
                // view for free by design (evaluation only, never inside an
                // estimator); it also seals interprocedural propagation so
                // `ground_truth` callers are not flagged.
                "crates/platform/src/truth.rs",
            ]),
            lock_order_paths: s(&["crates/api/src/", "crates/obs/src/", "crates/service/src/"]),
            lock_across_call_paths: s(&["crates/api/src/", "crates/service/src/"]),
            fs_write_paths: s(&["crates/core/src/", "crates/service/src/"]),
            fs_write_exempt: s(&[
                // The journal *is* the sanctioned durable-state writer.
                "crates/service/src/journal.rs",
            ]),
            rng_scope_paths: s(&[
                "crates/api/src/",
                "crates/core/src/",
                "crates/obs/src/",
                "crates/service/src/",
            ]),
            rng_allowed_paths: s(&[
                // The sampler family: randomness is the algorithm.
                "crates/core/src/walker/",
                // RNG stream capture/restore for crash recovery.
                "crates/core/src/checkpoint.rs",
                // Pilot walks during MA-TARW interval selection.
                "crates/core/src/interval.rs",
                // The run-RNG construction seam (seed → ChaCha stream).
                "crates/core/src/analyzer.rs",
                // Seeded SplitMix64 jitter for decorrelated backoff.
                "crates/api/src/resilient.rs",
            ]),
            schema_vocab_files: s(&["crates/obs/src/schema.rs"]),
            schema_use_paths: s(&[
                "crates/api/src/",
                "crates/core/src/",
                "crates/obs/src/",
                "crates/service/src/",
            ]),
            checkpoint_state_files: s(&["crates/core/src/checkpoint.rs"]),
            checkpoint_use_paths: s(&["crates/core/src/"]),
            blocking_fetch_paths: s(&["crates/core/src/walker/"]),
            hygiene_lib_roots: s(&[
                "crates/api/src/lib.rs",
                "crates/bench/src/lib.rs",
                "crates/core/src/lib.rs",
                "crates/graph/src/lib.rs",
                "crates/lint/src/lib.rs",
                "crates/obs/src/lib.rs",
                "crates/platform/src/lib.rs",
                "crates/service/src/lib.rs",
                "crates/verify/src/lib.rs",
            ]),
            must_use_types: s(&["Estimate", "RunReport", "JobOutcome"]),
        }
    }
}

impl Config {
    /// Whether `path` starts with any of `prefixes`.
    pub fn matches(path: &str, prefixes: &[String]) -> bool {
        prefixes.iter().any(|p| path.starts_with(p.as_str()))
    }
}

/// Where a file sits in the workspace — rules use this to skip test,
/// binary and example code where the library invariants don't apply.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FileRole {
    /// Under a crate's `tests/` directory (integration tests).
    pub integration_test: bool,
    /// A binary target (`src/bin/…` or `src/main.rs`).
    pub binary: bool,
    /// Under an `examples/` directory.
    pub example: bool,
    /// Under a `benches/` directory.
    pub bench: bool,
}

impl FileRole {
    /// Classifies a workspace-relative path.
    pub fn of(path: &str) -> FileRole {
        FileRole {
            integration_test: path.contains("/tests/") || path.starts_with("tests/"),
            binary: path.contains("/src/bin/") || path.ends_with("/main.rs"),
            example: path.contains("/examples/") || path.starts_with("examples/"),
            bench: path.contains("/benches/"),
        }
    }

    /// Library code: the part of a crate other crates link against.
    pub fn is_library(self) -> bool {
        !self.integration_test && !self.binary && !self.example && !self.bench
    }
}
