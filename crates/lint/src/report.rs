//! Human-readable and JSON rendering of a lint run.
//!
//! JSON is hand-serialized (the linter is dependency-free by design);
//! the schema is stable for CI consumption:
//!
//! ```json
//! {
//!   "files_scanned": 63,
//!   "workers": 4,
//!   "wall_ms": 41.502,
//!   "findings": [{"rule": "…", "file": "…", "line": 12, "message": "…", "baselined": false}],
//!   "new_findings": 1,
//!   "baselined_findings": 0,
//!   "stale_baseline": ["rule:file (4 baselined, 2 live)"],
//!   "rule_regressions": [{"rule": "…", "cap": 2, "live": 3}]
//! }
//! ```

use crate::baseline::GateResult;
use crate::context::Finding;

/// Everything one run produced.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Files analyzed.
    pub files_scanned: usize,
    /// Worker threads used for the per-file phase.
    pub workers: usize,
    /// End-to-end wall time of the run, in milliseconds.
    pub wall_ms: f64,
    /// All findings after inline suppression, before the baseline gate.
    pub findings: Vec<Finding>,
    /// The baseline gate's verdict.
    pub gate: GateResult,
}

impl Report {
    /// Whether the gate passes (no unbaselined findings and no rule
    /// over its per-rule ceiling).
    pub fn ok(&self) -> bool {
        self.gate.new.is_empty() && self.gate.rule_regressions.is_empty()
    }

    /// Renders the human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let newset: std::collections::BTreeSet<(String, u32, &'static str)> = self
            .gate
            .new
            .iter()
            .map(|f| (f.file.clone(), f.line, f.rule))
            .collect();
        for f in &self.findings {
            let status = if newset.contains(&(f.file.clone(), f.line, f.rule)) {
                "error"
            } else {
                "baselined"
            };
            out.push_str(&format!(
                "{status}[{rule}] {file}:{line}: {msg}\n",
                rule = f.rule,
                file = f.file,
                line = f.line,
                msg = f.message
            ));
        }
        for (key, baselined, live) in &self.gate.stale {
            out.push_str(&format!(
                "stale-baseline: {key} records {baselined} finding(s) but only {live} remain — \
                 ratchet the baseline down\n"
            ));
        }
        for (rule, cap, live) in &self.gate.rule_regressions {
            out.push_str(&format!(
                "rule-regression: `{rule}` has {live} live finding(s) but its ceiling is \
                 {cap} — the workspace total for this rule may not grow\n"
            ));
        }
        out.push_str(&format!(
            "ma-lint: {files} file(s) scanned in {ms:.1} ms ({workers} worker(s)), \
             {new} new finding(s), {base} baselined, {stale} stale baseline entr{ies}, \
             {regress} rule regression(s)\n",
            files = self.files_scanned,
            ms = self.wall_ms,
            workers = self.workers,
            new = self.gate.new.len(),
            base = self.gate.baselined,
            stale = self.gate.stale.len(),
            ies = if self.gate.stale.len() == 1 {
                "y"
            } else {
                "ies"
            },
            regress = self.gate.rule_regressions.len(),
        ));
        out
    }

    /// Renders the JSON report.
    pub fn render_json(&self) -> String {
        let newset: std::collections::BTreeSet<(String, u32, &'static str)> = self
            .gate
            .new
            .iter()
            .map(|f| (f.file.clone(), f.line, f.rule))
            .collect();
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str(&format!("  \"wall_ms\": {:.3},\n", self.wall_ms));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let baselined = !newset.contains(&(f.file.clone(), f.line, f.rule));
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"baselined\": {}}}",
                json_str(f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
                baselined
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str(&format!("  \"new_findings\": {},\n", self.gate.new.len()));
        out.push_str(&format!(
            "  \"baselined_findings\": {},\n",
            self.gate.baselined
        ));
        out.push_str("  \"stale_baseline\": [");
        for (i, (key, baselined, live)) in self.gate.stale.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(&format!(
                "{key} ({baselined} baselined, {live} live)"
            )));
        }
        out.push_str("],\n");
        out.push_str("  \"rule_regressions\": [");
        for (i, (rule, cap, live)) in self.gate.rule_regressions.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"rule\": {}, \"cap\": {cap}, \"live\": {live}}}",
                json_str(rule)
            ));
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{gate, Baseline};

    #[test]
    fn json_is_well_formed_and_escaped() {
        let findings = vec![Finding {
            rule: "panic-safety",
            file: "a \"b\".rs".to_string(),
            line: 3,
            message: "needs\nescaping\\here".to_string(),
        }];
        let report = Report {
            files_scanned: 1,
            workers: 2,
            wall_ms: 1.25,
            gate: gate(&findings, &Baseline::default()),
            findings,
        };
        let json = report.render_json();
        assert!(json.contains("\\\"b\\\""));
        assert!(json.contains("needs\\nescaping\\\\here"));
        assert!(json.contains("\"new_findings\": 1"));
        assert!(json.contains("\"workers\": 2"));
        assert!(json.contains("\"wall_ms\": 1.250"));
        assert!(json.contains("{\"rule\": \"panic-safety\", \"cap\": 0, \"live\": 1}"));
        assert!(!report.ok());
    }

    #[test]
    fn text_marks_baselined_vs_error() {
        let findings = vec![
            Finding {
                rule: "charging",
                file: "x.rs".to_string(),
                line: 1,
                message: "m".to_string(),
            },
            Finding {
                rule: "charging",
                file: "x.rs".to_string(),
                line: 2,
                message: "m".to_string(),
            },
        ];
        let baseline = Baseline::parse("\"charging:x.rs\" = 1\n").unwrap();
        let report = Report {
            files_scanned: 1,
            workers: 1,
            wall_ms: 0.5,
            gate: gate(&findings, &baseline),
            findings,
        };
        let text = report.render_text();
        assert!(text.contains("baselined[charging] x.rs:1"));
        assert!(text.contains("error[charging] x.rs:2"));
        assert!(text.contains("1 new finding(s), 1 baselined"));
        assert!(text.contains("rule-regression: `charging` has 2 live finding(s)"));
        assert!(!report.ok());
    }
}
