//! Workspace-level analysis tests: golden call-graph edges over a small
//! fixture crate, cross-file interprocedural propagation, and the
//! receiver-resolution heuristics.

use ma_lint::analyze_sources;
use ma_lint::config::Config;

/// The edge list as `caller → callee` display strings, sorted.
fn edges(ws: &ma_lint::WorkspaceAnalysis) -> Vec<String> {
    let mut out: Vec<String> = ws
        .graph
        .edges
        .iter()
        .map(|e| {
            format!(
                "{} -> {}",
                ws.graph.display(e.caller),
                ws.graph.display(e.callee)
            )
        })
        .collect();
    out.sort();
    out.dedup();
    out
}

#[test]
fn golden_call_graph_edges_over_fixture_crate() {
    let files = [
        (
            "crates/core/src/outer_mod.rs",
            "pub struct Driver;\n\
             impl Driver {\n\
                 pub fn run(&self, p: &Platform) -> usize {\n\
                     self.prepare();\n\
                     mid::helper(p)\n\
                 }\n\
                 fn prepare(&self) {}\n\
             }\n",
        ),
        (
            "crates/core/src/mid.rs",
            "pub fn helper(p: &Platform) -> usize {\n\
                 leaf(p)\n\
             }\n\
             fn leaf(p: &Platform) -> usize {\n\
                 p.search_posts(\"q\").len()\n\
             }\n",
        ),
    ];
    let ws = analyze_sources(&files, &Config::default());
    assert_eq!(
        edges(&ws),
        vec![
            "Driver::run -> Driver::prepare".to_string(),
            "Driver::run -> mid::helper".to_string(),
            "mid::helper -> mid::leaf".to_string(),
        ]
    );
}

#[test]
fn cross_file_chain_is_flagged_at_every_caller() {
    let files = [
        (
            "crates/core/src/outer_mod.rs",
            "pub fn outer(p: &Platform) -> usize {\n    mid::helper(p)\n}\n",
        ),
        (
            "crates/core/src/mid.rs",
            "pub fn helper(p: &Platform) -> usize {\n    leaf(p)\n}\n\
             fn leaf(p: &Platform) -> usize {\n    p.search_posts(\"q\").len()\n}\n",
        ),
    ];
    let ws = analyze_sources(&files, &Config::default());
    let charging: Vec<_> = ws
        .findings
        .iter()
        .filter(|f| f.rule == "charging")
        .collect();
    // Direct `.search_posts(` in mid.rs, the helper→leaf call in mid.rs,
    // and the cross-file outer→helper call in outer_mod.rs.
    assert_eq!(charging.len(), 3, "{charging:?}");
    assert!(
        charging
            .iter()
            .any(|f| f.file == "crates/core/src/outer_mod.rs" && f.message.contains("2 hop(s)")),
        "cross-file caller must carry the two-hop witness: {charging:?}"
    );
}

#[test]
fn method_calls_resolve_by_receiver_type() {
    let files = [(
        "crates/core/src/outer_mod.rs",
        "pub struct Walker { pos: u64 }\n\
         impl Walker {\n\
             pub fn step(&mut self, p: &Platform) -> usize {\n\
                 p.timeline(self.pos).len()\n\
             }\n\
         }\n\
         pub fn drive(p: &Platform) -> usize {\n\
             let mut w = Walker { pos: 0 };\n\
             w.step(p)\n\
         }\n",
    )];
    let ws = analyze_sources(&files, &Config::default());
    assert!(
        edges(&ws).contains(&"outer_mod::drive -> Walker::step".to_string()),
        "typed receiver must resolve to the impl method: {:?}",
        edges(&ws)
    );
    // drive's call into the fetching method is itself a charging finding.
    assert!(
        ws.findings
            .iter()
            .any(|f| f.rule == "charging" && f.message.contains("Walker::step")),
        "{:?}",
        ws.findings
    );
}

#[test]
fn common_method_names_stay_unresolved_across_files() {
    // `get` appears as a method on an opaque receiver in one file and as
    // a fetching method in another type — the blocklist must keep them
    // unlinked rather than inventing a false chain.
    let files = [
        (
            "crates/core/src/outer_mod.rs",
            "pub fn lookup(ctx: &Ctx) -> u64 {\n    ctx.store().get(3)\n}\n",
        ),
        (
            "crates/core/src/mid.rs",
            "pub struct Cache;\n\
             impl Cache {\n\
                 pub fn get(&self, p: &Platform) -> usize {\n\
                     p.timeline(1).len()\n\
                 }\n\
             }\n",
        ),
    ];
    let ws = analyze_sources(&files, &Config::default());
    assert!(
        !edges(&ws)
            .iter()
            .any(|e| e.starts_with("outer_mod::lookup ->")),
        "opaque `get` must not link to Cache::get: {:?}",
        edges(&ws)
    );
    // Only the direct finding inside Cache::get remains.
    let charging: Vec<_> = ws
        .findings
        .iter()
        .filter(|f| f.rule == "charging")
        .collect();
    assert_eq!(charging.len(), 1, "{charging:?}");
    assert_eq!(charging[0].file, "crates/core/src/mid.rs");
}
