//! The workspace itself must pass its own linter: every invariant the
//! rules encode holds on the code as committed, with the checked-in
//! baseline (kept empty — violations are fixed or annotated, not
//! grandfathered).

use ma_lint::baseline::Baseline;
use ma_lint::config::Config;
use std::path::Path;

#[test]
fn workspace_passes_ma_lint_with_checked_in_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let baseline_path = root.join("lint-baseline.toml");
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text).expect("lint-baseline.toml parses"),
        Err(_) => Baseline::default(),
    };
    let report = ma_lint::analyze_workspace(&root, &Config::default(), &baseline)
        .expect("workspace scan succeeds");
    assert!(report.files_scanned > 50, "scan looks truncated");
    assert!(
        report.ok(),
        "unbaselined findings:\n{}",
        report.render_text()
    );
}
