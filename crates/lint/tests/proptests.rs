//! Property tests: the analysis pipeline must never panic, whatever
//! bytes it is fed. The lexer is the front line (it slices the source by
//! byte offsets), and the symbol/call-graph builders replay token
//! streams with hand-rolled cursors — both are exercised end to end
//! through `analyze_source`, which runs every rule.

use ma_lint::callgraph::CallGraph;
use ma_lint::config::Config;
use ma_lint::context::FileCtx;
use ma_lint::lexer::lex;
use ma_lint::symbols;
use proptest::prelude::*;

/// Adversarial source fragments: literal/comment openers without their
/// closers, multibyte text, and shapes the symbol walker cares about.
const FRAGMENTS: [&str; 16] = [
    "fn f() {",
    "}",
    "r#\"",
    "r##\"x\"#",
    "/*",
    "/* é /*",
    "*/",
    "b'\\''",
    "'\"'",
    "\"esc \\",
    "é字🦀",
    "x.lock().unwrap();",
    "let s = ",
    "impl T for",
    "#[derive(Serialize)] struct QState {",
    "S { a, .. }",
];

/// Arbitrary (lossily valid UTF-8) strings from raw bytes.
fn arb_source() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..512)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

/// Concatenations of adversarial fragments.
fn arb_fragments() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..FRAGMENTS.len(), 0..24).prop_map(|picks| {
        picks
            .iter()
            .map(|&i| FRAGMENTS[i])
            .collect::<Vec<_>>()
            .join("\n")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_never_panics_on_arbitrary_bytes(src in arb_source()) {
        let _ = lex(&src);
    }

    #[test]
    fn lexer_never_panics_on_adversarial_fragments(src in arb_fragments()) {
        let _ = lex(&src);
    }

    #[test]
    fn full_analysis_never_panics_on_arbitrary_source(src in arb_source()) {
        let _ = ma_lint::analyze_source("crates/core/src/fuzz.rs", &src, &Config::default());
    }

    #[test]
    fn full_analysis_never_panics_on_adversarial_fragments(src in arb_fragments()) {
        let _ = ma_lint::analyze_source("crates/core/src/fuzz.rs", &src, &Config::default());
    }

    #[test]
    fn call_graph_builder_never_panics(
        picks in proptest::collection::vec(
            proptest::collection::vec(0usize..FRAGMENTS.len(), 0..12),
            1..4,
        )
    ) {
        let files: Vec<symbols::FileSymbols> = picks
            .iter()
            .enumerate()
            .map(|(i, parts)| {
                let src = parts.iter().map(|&p| FRAGMENTS[p]).collect::<Vec<_>>().join("\n");
                let path = format!("crates/core/src/f{i}.rs");
                let ctx = FileCtx::new(&path, &src);
                symbols::extract(&ctx)
            })
            .collect();
        let graph = CallGraph::build(&files);
        for fact in 0..symbols::FACT_COUNT {
            let _ = graph.propagate(fact, |_| false);
        }
    }
}
