//! Fixture self-tests: every rule is exercised twice — once firing on a
//! violating fixture, once silenced by inline suppression on the same
//! patterns. The fixtures live under `tests/fixtures/` (excluded from
//! workspace scans by `Config::skip`) and are fed to [`ma_lint::analyze_source`]
//! under synthetic workspace paths that put them in each rule's scope.

use ma_lint::analyze_source;
use ma_lint::config::Config;
use ma_lint::context::Finding;
use ma_lint::rules::lock_order;

/// Findings for `rule` when the fixture is analyzed as library code of a
/// crate the rule applies to.
fn run(rule: &str, path: &str, source: &str) -> Vec<Finding> {
    let analysis = analyze_source(path, source, &Config::default());
    // A fixture must never trip a rule it isn't about (e.g. a stray
    // unwrap in the determinism fixture) — that would mean the fixtures
    // are entangled and a rule regression could hide.
    for f in &analysis.findings {
        assert!(
            f.rule == rule,
            "fixture for `{rule}` tripped unrelated rule `{}` at line {}: {}",
            f.rule,
            f.line,
            f.message
        );
    }
    analysis.findings
}

#[test]
fn wall_clock_fires() {
    let findings = run(
        "wall-clock",
        "crates/service/src/fixture.rs",
        include_str!("fixtures/wall_clock_fire.rs"),
    );
    // Instant::now, SystemTime::now, thread::sleep.
    assert_eq!(findings.len(), 3, "{findings:?}");
}

#[test]
fn wall_clock_suppressed() {
    let findings = run(
        "wall-clock",
        "crates/service/src/fixture.rs",
        include_str!("fixtures/wall_clock_suppressed.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn wall_clock_allowed_paths_are_exempt() {
    let findings = run(
        "wall-clock",
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/wall_clock_fire.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn panic_safety_fires() {
    let findings = run(
        "panic-safety",
        "crates/core/src/fixture.rs",
        include_str!("fixtures/panic_safety_fire.rs"),
    );
    // unwrap, expect, panic!, xs[3] — and NOT the unwrap in #[cfg(test)].
    assert_eq!(findings.len(), 4, "{findings:?}");
}

#[test]
fn panic_safety_suppressed() {
    let findings = run(
        "panic-safety",
        "crates/core/src/fixture.rs",
        include_str!("fixtures/panic_safety_suppressed.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn panic_safety_ignores_binaries() {
    let findings = run(
        "panic-safety",
        "crates/core/src/bin/fixture.rs",
        include_str!("fixtures/panic_safety_fire.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn determinism_fires() {
    let findings = run(
        "determinism",
        "crates/core/src/walker/fixture.rs",
        include_str!("fixtures/determinism_fire.rs"),
    );
    // `.iter()` on a HashMap field and `.drain()` on a HashSet binding;
    // the `.get()` point lookup stays silent.
    assert_eq!(findings.len(), 2, "{findings:?}");
}

#[test]
fn determinism_suppressed() {
    let findings = run(
        "determinism",
        "crates/core/src/walker/fixture.rs",
        include_str!("fixtures/determinism_suppressed.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn charging_fires() {
    let findings = run(
        "charging",
        "crates/core/src/fixture.rs",
        include_str!("fixtures/charging_fire.rs"),
    );
    // timeline, followers, fetch_connections, search_posts.
    assert_eq!(findings.len(), 4, "{findings:?}");
}

#[test]
fn charging_suppressed() {
    let findings = run(
        "charging",
        "crates/core/src/fixture.rs",
        include_str!("fixtures/charging_suppressed.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn charging_sink_write_fires_in_walker_code() {
    let findings = run(
        "charging",
        "crates/core/src/walker/fixture.rs",
        include_str!("fixtures/charging_sink_fire.rs"),
    );
    // The raw `sink.record(…)`; the `tracer.emit(…)` on the next line is
    // the sanctioned route and stays silent.
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("Tracer::emit"), "{findings:?}");
}

#[test]
fn charging_sink_write_suppressed() {
    let findings = run(
        "charging",
        "crates/core/src/walker/fixture.rs",
        include_str!("fixtures/charging_sink_suppressed.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn charging_sink_ban_is_scoped_to_walker_code() {
    // Histogram `.record(…)` in the service metrics registry is not a
    // trace-sink write; the ban only covers estimator/walker paths.
    let findings = run(
        "charging",
        "crates/service/src/fixture.rs",
        "fn observe(h: &Log2Histogram, v: u64) { h.record(v); }\n",
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn charging_exempts_the_metered_stack() {
    let findings = run(
        "charging",
        "crates/api/src/client.rs",
        include_str!("fixtures/charging_fire.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn fs_write_fires() {
    let findings = run(
        "fs-write",
        "crates/service/src/fixture.rs",
        include_str!("fixtures/fs_write_fire.rs"),
    );
    // create_dir_all, write, File::create, OpenOptions::new, rename —
    // and NOT the read-side `fs::read`.
    assert_eq!(findings.len(), 5, "{findings:?}");
    assert!(findings.iter().all(|f| f.message.contains("journal")));
}

#[test]
fn fs_write_suppressed() {
    let findings = run(
        "fs-write",
        "crates/service/src/fixture.rs",
        include_str!("fixtures/fs_write_suppressed.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn fs_write_exempts_the_journal_module() {
    let findings = run(
        "fs-write",
        "crates/service/src/journal.rs",
        include_str!("fixtures/fs_write_fire.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn fs_write_is_scoped_to_core_and_service_libraries() {
    for path in [
        "crates/obs/src/fixture.rs",
        "crates/service/src/bin/fixture.rs",
        "crates/service/tests/fixture.rs",
    ] {
        let findings = run("fs-write", path, include_str!("fixtures/fs_write_fire.rs"));
        assert!(findings.is_empty(), "{path}: {findings:?}");
    }
}

#[test]
fn lock_order_fires() {
    let analysis = analyze_source(
        "crates/service/src/fixture.rs",
        include_str!("fixtures/lock_order_fire.rs"),
        &Config::default(),
    );
    assert!(analysis.findings.is_empty(), "{:?}", analysis.findings);
    let mut findings = Vec::new();
    lock_order::check_cycles(&analysis.lock_edges, &mut findings);
    // The queue↔ledger cycle plus the queue self-loop, each once.
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().any(|f| f.message.contains("re-acquired")));
    assert!(findings.iter().any(|f| f.message.contains("cycle")));
}

#[test]
fn lock_order_suppressed() {
    let analysis = analyze_source(
        "crates/service/src/fixture.rs",
        include_str!("fixtures/lock_order_suppressed.rs"),
        &Config::default(),
    );
    let mut findings = Vec::new();
    lock_order::check_cycles(&analysis.lock_edges, &mut findings);
    // The annotated edge is removed from the graph: no cycle survives.
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn lock_across_call_fires() {
    // Analyzed as the metered client (charging-exempt), which is exactly
    // where raw backend calls legitimately live — and where holding a
    // guard across one would hurt the most.
    let findings = run(
        "lock-across-call",
        "crates/api/src/client.rs",
        include_str!("fixtures/lock_across_call_fire.rs"),
    );
    // The let-bound guard across `.fetch_timeline(` and the inline guard
    // enclosing `.followers(`; the scoped and sequential shapes are silent.
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().all(|f| f.message.contains("`flights`")));
}

#[test]
fn lock_across_call_suppressed() {
    let findings = run(
        "lock-across-call",
        "crates/api/src/client.rs",
        include_str!("fixtures/lock_across_call_suppressed.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn lock_across_call_is_scoped_to_service_and_api() {
    let findings = run(
        "lock-across-call",
        "crates/graph/src/fixture.rs",
        include_str!("fixtures/lock_across_call_fire.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn hygiene_fires() {
    let findings = run(
        "hygiene",
        "crates/core/src/lib.rs",
        include_str!("fixtures/hygiene_fire.rs"),
    );
    // Missing forbid(unsafe_code) + Estimate without #[must_use].
    assert_eq!(findings.len(), 2, "{findings:?}");
}

#[test]
fn hygiene_suppressed() {
    let findings = run(
        "hygiene",
        "crates/core/src/lib.rs",
        include_str!("fixtures/hygiene_suppressed.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn hygiene_clean_file_passes() {
    let findings = run(
        "hygiene",
        "crates/core/src/lib.rs",
        include_str!("fixtures/hygiene_clean.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn interproc_charging_flags_every_caller_in_the_chain() {
    let findings = run(
        "charging",
        "crates/core/src/fixture.rs",
        include_str!("fixtures/interproc_charging_fire.rs"),
    );
    // The direct `.timeline(` plus the two helper call sites above it.
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert!(
        findings.iter().any(|f| f.message.contains("2 hop(s)")),
        "{findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("helper_one") && f.message.contains("helper_two")),
        "witness chain must name the path: {findings:?}"
    );
}

#[test]
fn interproc_charging_source_annotation_seals_the_cone() {
    let findings = run(
        "charging",
        "crates/core/src/fixture.rs",
        include_str!("fixtures/interproc_charging_suppressed.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn interproc_lock_flags_guarded_call_into_fetching_helper() {
    let findings = run(
        "lock-across-call",
        "crates/api/src/client.rs",
        include_str!("fixtures/interproc_lock_fire.rs"),
    );
    // Only `orchestrate` holds a guard at its helper call; the scoped
    // variant released the guard first and stays clean.
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("`table`"), "{findings:?}");
    assert!(findings[0].message.contains("hop"), "{findings:?}");
}

#[test]
fn interproc_lock_suppressed_at_call_site() {
    let findings = run(
        "lock-across-call",
        "crates/api/src/client.rs",
        include_str!("fixtures/interproc_lock_suppressed.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn interproc_fs_write_flags_every_caller_in_the_chain() {
    let findings = run(
        "fs-write",
        "crates/core/src/fixture.rs",
        include_str!("fixtures/interproc_fs_fire.rs"),
    );
    // The direct `fs::write` plus the two callers above it.
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert!(findings.iter().all(|f| f.message.contains("journal")));
}

#[test]
fn interproc_fs_write_source_annotation_seals_the_cone() {
    let findings = run(
        "fs-write",
        "crates/core/src/fixture.rs",
        include_str!("fixtures/interproc_fs_suppressed.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn rng_confinement_fires_outside_sampler_seams() {
    let findings = run(
        "rng-confinement",
        "crates/core/src/fixture.rs",
        include_str!("fixtures/rng_confinement_fire.rs"),
    );
    // thread_rng (unseedable), seed_from_u64 (constructor), gen_range (draw).
    assert_eq!(findings.len(), 3, "{findings:?}");
}

#[test]
fn rng_confinement_allows_seeded_rng_in_sampler_paths() {
    // Inside the walker seam the seeded constructor and the draw are
    // sanctioned — but the unseedable `thread_rng` still fires.
    let findings = run(
        "rng-confinement",
        "crates/core/src/walker/fixture.rs",
        include_str!("fixtures/rng_confinement_fire.rs"),
    );
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("thread_rng"), "{findings:?}");
}

#[test]
fn rng_confinement_suppressed() {
    let findings = run(
        "rng-confinement",
        "crates/core/src/fixture.rs",
        include_str!("fixtures/rng_confinement_suppressed.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn checkpoint_coverage_fires_on_drift_prone_state() {
    let findings = run(
        "checkpoint-coverage",
        "crates/core/src/checkpoint.rs",
        include_str!("fixtures/checkpoint_coverage_fire.rs"),
    );
    // Missing derives on BrokenState, the serde-skip field, the `..` use.
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert!(
        findings.iter().any(|f| f.message.contains("BrokenState")),
        "{findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.message.contains("rest pattern")),
        "{findings:?}"
    );
}

#[test]
fn checkpoint_coverage_suppressed() {
    let findings = run(
        "checkpoint-coverage",
        "crates/core/src/checkpoint.rs",
        include_str!("fixtures/checkpoint_coverage_suppressed.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

/// Findings when `fixture` is analyzed as service library code alongside
/// the real obs schema module (which supplies the vocabulary tables).
fn run_schema_closed(fixture: &str) -> Vec<Finding> {
    let analysis = ma_lint::analyze_sources(
        &[
            (
                "crates/obs/src/schema.rs",
                include_str!("../../obs/src/schema.rs"),
            ),
            ("crates/service/src/fixture.rs", fixture),
        ],
        &Config::default(),
    );
    for f in &analysis.findings {
        assert!(
            f.rule == "schema-closed",
            "schema fixture tripped unrelated rule `{}` at {}:{}: {}",
            f.rule,
            f.file,
            f.line,
            f.message
        );
    }
    analysis.findings
}

#[test]
fn schema_closed_fires_on_unregistered_pairs() {
    let findings = run_schema_closed(include_str!("fixtures/schema_closed_fire.rs"));
    // The unregistered event name, the misfiled category and the
    // unregistered span — NOT the registered pairs or the variable name.
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("not_a_real_event") && f.message.contains("event_names")),
        "{findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("Category::Cache") && f.message.contains("settle")),
        "{findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("detour") && f.message.contains("span_names")),
        "{findings:?}"
    );
}

#[test]
fn schema_closed_suppressed() {
    let findings = run_schema_closed(include_str!("fixtures/schema_closed_suppressed.rs"));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn schema_closed_is_silent_without_a_vocabulary() {
    // Analyzed alone, no schema file contributes tables — the rule must
    // stay quiet instead of flagging every call site.
    let findings = run(
        "schema-closed",
        "crates/service/src/fixture.rs",
        include_str!("fixtures/schema_closed_fire.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn lexer_hardening_literals_are_opaque_to_rules() {
    let findings = run(
        "wall-clock",
        "crates/service/src/fixture.rs",
        include_str!("fixtures/lexer_hardening_fire.rs"),
    );
    // Only the real `Instant::now()`; the raw-string/comment/char-literal
    // decoys must stay opaque.
    assert_eq!(findings.len(), 1, "{findings:?}");
}

#[test]
fn blocking_fetch_fires_in_walker_chain_code() {
    let findings = run(
        "blocking-fetch-in-chain",
        "crates/core/src/walker/fixture.rs",
        include_str!("fixtures/blocking_fetch_fire.rs"),
    );
    // search, user_timeline, connections.
    assert_eq!(findings.len(), 3, "{findings:?}");
}

#[test]
fn blocking_fetch_suppressed() {
    let findings = run(
        "blocking-fetch-in-chain",
        "crates/core/src/walker/fixture.rs",
        include_str!("fixtures/blocking_fetch_suppressed.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn blocking_fetch_outside_chain_scope_is_exempt() {
    // The graph-view and seed modules are the sanctioned fetch seams;
    // the rule only polices walker/ chain code.
    let findings = run(
        "blocking-fetch-in-chain",
        "crates/core/src/view.rs",
        include_str!("fixtures/blocking_fetch_fire.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}
