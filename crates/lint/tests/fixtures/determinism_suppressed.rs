// Fixture: hash iteration where order provably cannot feed arithmetic.
use std::collections::HashMap;

struct Walker {
    corrections: HashMap<u32, f64>,
}

impl Walker {
    fn fold(&self) -> f64 {
        let mut total = 0.0;
        // ma-lint: allow(determinism) reason="f64 addition reordering bounded: values summed into Kahan accumulator downstream"
        for (_, v) in self.corrections.iter() {
            total += v;
        }
        total
    }
}
