// Fixture: tracer call sites outside the closed schema vocabulary. The
// registered `window` event and `job` span stay silent, as does the
// call passing its name through a variable (runtime-gated only); the
// unregistered event name, the misfiled category and the unregistered
// span all fire.
fn report(tracer: &Tracer, dynamic_name: &str) {
    tracer.emit(Category::Stats, "window", &[]);
    tracer.emit(Category::Stats, dynamic_name, &[]);
    tracer.emit(Category::Stats, "not_a_real_event", &[]);
    tracer.emit(Category::Cache, "settle", &[]);
    let id = tracer.span_start(Category::Job, "job", &[]);
    tracer.span_end(Category::Job, "job", id, &[]);
    tracer.span_start(Category::Walk, "detour", &[]);
}
