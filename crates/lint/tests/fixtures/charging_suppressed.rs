// Fixture: direct platform reads justified as ground-truth oracles.
fn ground_truth(platform: &Platform, u: UserId) -> usize {
    // ma-lint: allow(charging) reason="ground-truth oracle: deliberately free, never part of an estimate's cost"
    let posts = platform.timeline(u);
    let followers = platform.followers(u); // ma-lint: allow(charging) reason="truth computation outside any budget"
    posts.len() + followers.len()
}
