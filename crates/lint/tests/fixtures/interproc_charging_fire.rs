//! Interprocedural charging fixture: the raw fetch hides two helpers
//! deep, so the direct-call rule sees one site while the call-graph
//! propagation must flag both callers above it.

fn helper_two(p: &Platform) -> usize {
    p.timeline(7).len()
}

fn helper_one(p: &Platform) -> usize {
    helper_two(p)
}

pub fn outer(p: &Platform) -> usize {
    helper_one(p)
}
