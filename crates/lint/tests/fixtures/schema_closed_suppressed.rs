// Fixture: the same unregistered call sites, each justified inline
// (e.g. an experiment branch whose traces are never replayed in CI).
fn report(tracer: &Tracer) {
    // ma-lint: allow(schema-closed) reason="experimental event; trace never reaches the CI replay gate"
    tracer.emit(Category::Stats, "not_a_real_event", &[]);
    // ma-lint: allow(schema-closed) reason="experimental event; trace never reaches the CI replay gate"
    tracer.emit(Category::Cache, "settle", &[]);
    // ma-lint: allow(schema-closed) reason="experimental span; trace never reaches the CI replay gate"
    tracer.span_start(Category::Walk, "detour", &[]);
}
