// Fixture: every wall-clock pattern the rule must catch.
use std::thread;
use std::time::{Duration, Instant, SystemTime};

fn timing() -> Duration {
    let started = Instant::now();
    let _epoch = SystemTime::now();
    thread::sleep(Duration::from_millis(1));
    started.elapsed()
}
