//! Fixture: bare blocking client fetches inside walker chain code. Each
//! call would stall every interleaved chain for a full RTT instead of
//! flowing through QueryGraph + the announced fetch pipeline.

fn chain_step(client: &mut CachingClient<'_>, u: UserId, kw: KeywordId) {
    let hits = client.search(kw);
    let view = client.user_timeline(u);
    let nbrs = client.connections(u);
    let _ = (hits, view, nbrs);
}
