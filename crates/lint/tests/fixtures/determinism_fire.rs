// Fixture: hash-order iteration feeding estimator arithmetic.
use std::collections::{HashMap, HashSet};

struct Walker {
    corrections: HashMap<u32, f64>,
}

impl Walker {
    fn fold(&self) -> f64 {
        let mut total = 0.0;
        for (_, v) in self.corrections.iter() {
            total += v;
        }
        total
    }

    fn first_seed(&self, mut seen: HashSet<u32>) -> Option<u32> {
        for u in seen.drain() {
            return Some(u);
        }
        None
    }

    fn lookups_are_fine(&self) -> Option<f64> {
        // Point lookups don't depend on order: must NOT be flagged.
        self.corrections.get(&7).copied()
    }
}
