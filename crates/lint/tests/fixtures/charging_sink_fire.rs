// Fixture: walker code writing straight to a trace sink, skipping the
// tracer's phase/level stamping and sampling.
fn step(sink: &dyn TraceSink, tracer: &Tracer, event: TraceEvent) {
    sink.record(event);
    tracer.emit(Category::Walk, "step", &[]);
}
