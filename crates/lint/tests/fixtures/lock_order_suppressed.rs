// Fixture: the same pair, with one direction waived as provably ordered.
use parking_lot::Mutex;

struct Engine {
    queue: Mutex<Vec<u64>>,
    ledger: Mutex<Vec<u64>>,
}

impl Engine {
    fn forward(&self) {
        let q = self.queue.lock();
        let mut l = self.ledger.lock();
        l.extend(q.iter());
    }

    fn backward(&self) {
        let l = self.ledger.lock();
        // ma-lint: allow(lock-order) reason="single-threaded recovery path; engine workers are parked"
        let mut q = self.queue.lock();
        q.extend(l.iter());
    }
}
