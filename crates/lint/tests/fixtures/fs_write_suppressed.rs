// Fixture: the same writes, each justified inline.
fn persist(dir: &Path, payload: &[u8]) -> io::Result<()> {
    // ma-lint: allow(fs-write) reason="one-shot cache warmup file, rebuilt from scratch on boot; never read by recovery"
    fs::create_dir_all(dir)?;
    fs::write(dir.join("state.bin"), payload)?; // ma-lint: allow(fs-write) reason="ditto: throwaway warmup artifact"
    // ma-lint: allow(fs-write) reason="scratch spill file, deleted before shutdown"
    let _spill = File::create(dir.join("spill.tmp"))?;
    // ma-lint: allow(fs-write) reason="operator-facing side log, explicitly excluded from the recovery contract"
    let _log = OpenOptions::new().append(true).open(dir.join("side.log"))?;
    fs::rename(dir.join("spill.tmp"), dir.join("spill.bin"))?; // ma-lint: allow(fs-write) reason="atomic publish of the scratch spill"
    Ok(())
}
