// Fixture: the same held-across-fetch shapes, waived with justifications.
use parking_lot::Mutex;

struct Layer {
    flights: Mutex<Vec<u64>>,
}

impl Layer {
    fn held_across_fetch(&self, backend: &dyn ApiBackend, u: UserId) {
        let g = self.flights.lock();
        // ma-lint: allow(lock-across-call) reason="single-threaded recovery path; no contention possible"
        let t = backend.fetch_timeline(u);
        g.push(t.len() as u64);
    }

    fn inline_guard_same_statement(&self, store: &Platform, u: UserId) {
        self.flights.lock().push(store.followers(u).len() as u64); // ma-lint: allow(lock-across-call) reason="in-memory store; the fetch cannot stall"
    }
}
