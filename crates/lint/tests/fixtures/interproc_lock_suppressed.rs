//! The guarded helper call is annotated at the call site, so the
//! interprocedural lock rule stays quiet.

pub struct Flights {
    table: Mutex<Vec<u64>>,
}

fn fetch_helper(api: &Api) -> usize {
    api.fetch_timeline(3).len()
}

impl Flights {
    pub fn orchestrate(&self, api: &Api) -> usize {
        let guard = self.table.lock();
        // ma-lint: allow(lock-across-call) reason="fixture: simulated backend, no real latency"
        let n = fetch_helper(api);
        drop(guard);
        n
    }
}
