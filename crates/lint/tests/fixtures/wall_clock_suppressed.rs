// Fixture: the same patterns, each carrying a justification.
use std::thread;
use std::time::{Duration, Instant, SystemTime};

fn timing() -> Duration {
    // ma-lint: allow(wall-clock) reason="operator-facing latency probe; never feeds estimates"
    let started = Instant::now();
    let _epoch = SystemTime::now(); // ma-lint: allow(wall-clock) reason="log timestamping only"
    // ma-lint: allow(wall-clock) reason="integration smoke pacing, not simulated time"
    thread::sleep(Duration::from_millis(1));
    started.elapsed()
}
