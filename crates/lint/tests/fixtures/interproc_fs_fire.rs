//! Interprocedural fs-write fixture: the `fs::write` sits at the bottom
//! of a two-helper chain; every caller above it must be flagged too.

fn leaf(path: &str) {
    let _ = std::fs::write(path, b"x");
}

fn mid(path: &str) {
    leaf(path)
}

pub fn save(path: &str) {
    mid(path)
}
