//! RNG-confinement fixture: an unseedable constructor, a seeded
//! constructor and a draw, all outside the sampler seams.

pub fn sample(n: u64) -> u64 {
    let raw = rand::thread_rng();
    let mut rng = ChaCha8Rng::seed_from_u64(n);
    rng.gen_range(0..n)
}
