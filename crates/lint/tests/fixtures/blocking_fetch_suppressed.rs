//! Fixture: the same bare fetches, silenced by inline suppressions.

fn chain_step(client: &mut CachingClient<'_>, u: UserId, kw: KeywordId) {
    let hits = client.search(kw); // ma-lint: allow(blocking-fetch-in-chain) reason="fixture: one-off bootstrap fetch outside the round loop"
    let view = client.user_timeline(u); // ma-lint: allow(blocking-fetch-in-chain) reason="fixture: pipeline already drained at this point"
    let nbrs = client.connections(u); // ma-lint: allow(blocking-fetch-in-chain) reason="fixture: cold path, never reached mid-round"
    let _ = (hits, view, nbrs);
}
