// Fixture: the four panic paths in library code.
fn panicky(xs: &[u64], opt: Option<u64>) -> u64 {
    let a = opt.unwrap();
    let b = opt.expect("present");
    if xs.is_empty() {
        panic!("no data");
    }
    a + b + xs[3]
}

#[cfg(test)]
mod tests {
    // Test code is exempt: this unwrap must NOT be flagged.
    #[test]
    fn in_tests_unwrap_is_fine() {
        Some(1).unwrap();
    }
}
