//! Every RNG touch carries a reasoned annotation, so the rule is quiet.

pub fn sample(n: u64) -> u64 {
    // ma-lint: allow(rng-confinement) reason="fixture: entropy for a non-estimating id"
    let raw = rand::thread_rng();
    // ma-lint: allow(rng-confinement) reason="fixture: seeded from the run seed upstream"
    let mut rng = ChaCha8Rng::seed_from_u64(n);
    // ma-lint: allow(rng-confinement) reason="fixture: draw is outside any estimate path"
    rng.gen_range(0..n)
}
