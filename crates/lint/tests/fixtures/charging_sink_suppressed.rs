// Fixture: a justified raw sink write (e.g. forwarding inside a sink
// adapter that never originates events).
fn forward(inner: &dyn TraceSink, event: TraceEvent) {
    // ma-lint: allow(charging) reason="sink adapter forwards already-attributed events"
    inner.record(event);
}
