// Fixture: a crate root with no unsafe-code forbid and a bare
// estimate-result type.

#[derive(Clone, Copy, Debug)]
pub struct Estimate {
    pub value: f64,
    pub cost: u64,
}
