#![forbid(unsafe_code)]
// Fixture: a compliant crate root.

/// The estimate-result type, correctly marked.
#[must_use = "an Estimate embodies spent API budget"]
#[derive(Clone, Copy, Debug)]
pub struct Estimate {
    pub value: f64,
    pub cost: u64,
}
