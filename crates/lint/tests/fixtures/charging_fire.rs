// Fixture: direct backend/platform traffic that bypasses metering.
fn peek(platform: &Platform, backend: &dyn ApiBackend, u: UserId) -> usize {
    let posts = platform.timeline(u);
    let followers = platform.followers(u);
    let fetched = backend.fetch_connections(u);
    let found = platform.search_posts(KeywordId(0), WINDOW);
    posts.len() + followers.len() + fetched.iter().count() + found.len()
}
