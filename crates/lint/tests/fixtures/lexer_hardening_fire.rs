//! Lexer-hardening fixture: hash-guarded raw strings, nested block
//! comments and quote-bearing char literals are all opaque — only the
//! real `Instant::now()` at the end may fire.

pub fn tricky() -> String {
    let doc = r##"raw with "# inside: Instant::now() thread::sleep()"##;
    /* outer /* nested comment: SystemTime::now() */ still outer */
    let quote = '"';
    let byte = b'\'';
    format!("{doc}{quote}{byte}")
}

pub fn real_violation() -> std::time::Instant {
    std::time::Instant::now()
}
