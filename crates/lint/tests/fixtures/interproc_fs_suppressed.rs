//! Annotating the write at its source seals the caller cone.

fn leaf(path: &str) {
    // ma-lint: allow(fs-write) reason="fixture: scratch file outside the journaled state"
    let _ = std::fs::write(path, b"x");
}

fn mid(path: &str) {
    leaf(path)
}

pub fn save(path: &str) {
    mid(path)
}
