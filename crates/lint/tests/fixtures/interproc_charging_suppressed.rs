//! Suppressing the raw fetch at its source seals the whole caller cone:
//! neither the direct rule nor the interprocedural propagation may fire.

fn helper_two(p: &Platform) -> usize {
    // ma-lint: allow(charging) reason="fixture: sanctioned oracle read"
    p.timeline(7).len()
}

fn helper_one(p: &Platform) -> usize {
    helper_two(p)
}

pub fn outer(p: &Platform) -> usize {
    helper_one(p)
}
