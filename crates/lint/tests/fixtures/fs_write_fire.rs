// Fixture: durable state written outside the journal module.
fn persist(dir: &Path, payload: &[u8]) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join("state.bin"), payload)?;
    let _spill = File::create(dir.join("spill.tmp"))?;
    let _log = OpenOptions::new().append(true).open(dir.join("side.log"))?;
    fs::rename(dir.join("spill.tmp"), dir.join("spill.bin"))?;
    Ok(())
}
// Read-side access is fine: observing the filesystem creates nothing
// recovery would have to replay.
fn inspect(dir: &Path) -> io::Result<Vec<u8>> {
    let bytes = fs::read(dir.join("state.bin"))?;
    Ok(bytes)
}
