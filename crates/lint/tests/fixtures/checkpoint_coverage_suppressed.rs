//! Every checkpoint-coverage deviation carries a reasoned annotation.

use serde::{Deserialize, Serialize};

#[derive(Clone, Debug)]
// ma-lint: allow(checkpoint-coverage) reason="fixture: in-memory only, never checkpointed"
pub struct BrokenState {
    pub node: u64,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SkippyState {
    pub node: u64,
    // ma-lint: allow(checkpoint-coverage) reason="fixture: scratch is rebuilt on resume"
    #[serde(skip)]
    pub scratch: u64,
}

#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct OkState {
    pub node: u64,
    pub steps: u64,
}

pub fn resume(node: u64) -> OkState {
    // ma-lint: allow(checkpoint-coverage) reason="fixture: defaults are the documented resume semantics here"
    OkState {
        node,
        ..Default::default()
    }
}
