//! Interprocedural lock-across-call fixture: the guard is held while
//! calling a helper whose *callee* performs the backend fetch. The
//! scoped variant releases the guard before the call and stays clean.

pub struct Flights {
    table: Mutex<Vec<u64>>,
}

fn fetch_helper(api: &Api) -> usize {
    deep_fetch(api)
}

fn deep_fetch(api: &Api) -> usize {
    api.fetch_timeline(3).len()
}

impl Flights {
    pub fn orchestrate(&self, api: &Api) -> usize {
        let guard = self.table.lock();
        let n = fetch_helper(api);
        drop(guard);
        n
    }

    pub fn sequential(&self, api: &Api) -> usize {
        {
            let _guard = self.table.lock();
        }
        fetch_helper(api)
    }
}
