//! Checkpoint-coverage fixture: a state struct without serde derives, a
//! serde-skipped field, and a rest-pattern construction that would
//! silently default a newly added field.

use serde::{Deserialize, Serialize};

#[derive(Clone, Debug)]
pub struct BrokenState {
    pub node: u64,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SkippyState {
    pub node: u64,
    #[serde(skip)]
    pub scratch: u64,
}

#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct OkState {
    pub node: u64,
    pub steps: u64,
}

pub fn resume(node: u64) -> OkState {
    OkState {
        node,
        ..Default::default()
    }
}
