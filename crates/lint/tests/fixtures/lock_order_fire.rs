// Fixture: opposite acquisition orders plus a re-entrant acquisition.
use parking_lot::Mutex;

struct Engine {
    queue: Mutex<Vec<u64>>,
    ledger: Mutex<Vec<u64>>,
}

impl Engine {
    fn forward(&self) {
        let q = self.queue.lock();
        let mut l = self.ledger.lock();
        l.extend(q.iter());
    }

    fn backward(&self) {
        let l = self.ledger.lock();
        let mut q = self.queue.lock();
        q.extend(l.iter());
    }

    fn reentrant(&self) -> usize {
        let q = self.queue.lock();
        q.len() + self.queue.lock().len()
    }

    fn sequential_is_fine(&self) {
        // Inline guards drop at the statement end: no edge, no finding.
        self.queue.lock().push(1);
        self.ledger.lock().push(2);
    }
}
