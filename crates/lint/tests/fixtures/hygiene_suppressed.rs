// Fixture: hygiene findings carrying justifications.
// ma-lint: allow-file(hygiene) reason="prototype crate root pending promotion; tracked in ROADMAP"

#[derive(Clone, Copy, Debug)]
pub struct Estimate {
    pub value: f64,
    pub cost: u64,
}
