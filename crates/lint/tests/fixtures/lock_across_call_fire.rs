// Fixture: backend fetches made while a lock guard is live, plus the
// sanctioned shapes (guard dropped at block/statement end) that must
// stay silent.
use parking_lot::Mutex;

struct Layer {
    flights: Mutex<Vec<u64>>,
}

impl Layer {
    fn held_across_fetch(&self, backend: &dyn ApiBackend, u: UserId) {
        let g = self.flights.lock();
        let t = backend.fetch_timeline(u); // finding: guard `flights` live
        g.push(t.len() as u64);
    }

    fn inline_guard_same_statement(&self, store: &Platform, u: UserId) {
        // An inline guard lives to the end of its statement, so the
        // fetch inside the same expression is under the lock.
        self.flights.lock().push(store.followers(u).len() as u64); // finding
    }

    fn scoped_then_fetch(&self, backend: &dyn ApiBackend, u: UserId) {
        {
            let mut g = self.flights.lock();
            g.clear();
        }
        // Guard dropped with its block: fetching here is fine.
        let _ = backend.fetch_connections(u);
    }

    fn sequential_is_fine(&self, store: &Platform, u: UserId) {
        self.flights.lock().push(1);
        // Inline guard dropped at the previous statement's end.
        let _ = store.followees(u);
    }
}
