// Fixture: the same panic paths, justified as documented invariants.
fn panicky(xs: &[u64], opt: Option<u64>) -> u64 {
    // ma-lint: allow(panic-safety) reason="caller guarantees Some; checked at admission"
    let a = opt.unwrap();
    let b = opt.expect("present"); // ma-lint: allow(panic-safety) reason="invariant: set in constructor"
    if xs.is_empty() {
        // ma-lint: allow(panic-safety) reason="unreachable: len checked by caller"
        panic!("no data");
    }
    // ma-lint: allow(panic-safety) reason="index bound by fixed-size table"
    a + b + xs[3]
}
