//! The serve-latency telemetry time source.
//!
//! The clock originated here (PR 3) and moved to `microblog-obs` when the
//! tracing subsystem arrived, so that trace events and job latency
//! telemetry share one tick stream; this module re-exports it to keep
//! `microblog_service::{TelemetryClock, TelemetryMode}` paths stable.
//! See `crates/obs/src/clock.rs` for the semantics.

pub use microblog_obs::{TelemetryClock, TelemetryMode};
