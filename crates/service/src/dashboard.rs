//! The `ma-cli top` dashboard model: folds a stats JSONL stream into a
//! renderable operational view.
//!
//! The input is the `Category::Stats` event stream a
//! [`StatsSink`](crate::stats::StatsSink) writes (`window`, `gauges` and
//! `query` frames, one JSON object per line — see DESIGN.md §14). The
//! stream may be interleaved with arbitrary other JSONL (job responses
//! when serve shares stdout, or full trace events): anything that is not
//! a stats frame is counted and skipped, never an error. [`Dashboard`]
//! is pure state-folding — `ma-cli top` owns the I/O and the refresh
//! loop — so the whole rendering pipeline is unit-testable.

use microblog_obs::window::sparkline;
use serde::value::{field, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Sparkline history length (window emissions remembered per series).
const HISTORY: usize = 32;

/// One query row, from the latest `query` frame for that job.
#[derive(Clone, Debug, Default)]
pub struct QueryRow {
    /// Latest per-phase step marker.
    pub steps: u64,
    /// Cumulative budget spend.
    pub charged: u64,
    /// Samples kept by the final estimate.
    pub samples: u64,
    /// The settled estimate, once reported.
    pub estimate: Option<f64>,
    /// 95% CI half-width of the settled estimate.
    pub ci_half: Option<f64>,
    /// CI half-width per charged call — the paper's currency.
    pub ci_per_call: Option<f64>,
    /// Latest Geweke z attributed to this query.
    pub geweke_z: Option<f64>,
    /// Whether the job settled.
    pub done: bool,
}

/// Folds stats frames into the state `ma-cli top` renders.
#[derive(Debug, Default)]
pub struct Dashboard {
    /// Index of the latest `window` frame.
    pub win: Option<u64>,
    /// Window frames seen.
    pub windows_seen: u64,
    /// Latest per-emission deltas, keyed without the `d_` prefix.
    pub deltas: BTreeMap<String, u64>,
    /// Latest cumulative totals, keyed without the `t_` prefix.
    pub totals: BTreeMap<String, u64>,
    /// Delta histories for the sparkline rows.
    history: BTreeMap<&'static str, Vec<u64>>,
    /// Latest gauges frame, numeric fields only.
    pub gauges: BTreeMap<String, f64>,
    /// Latest convergence row per job id.
    pub queries: BTreeMap<u64, QueryRow>,
    /// Lines that were not stats frames (job output, trace events, …).
    pub skipped: u64,
}

/// Conserved-counter series charted as sparklines, in display order.
const CHARTED: [&str; 3] = ["jobs_submitted", "jobs_succeeded", "charged_calls"];

impl Dashboard {
    /// An empty dashboard.
    pub fn new() -> Self {
        Dashboard::default()
    }

    /// Folds one input line. Returns `true` when the line was a stats
    /// frame (callers refresh the screen on that), `false` for skipped
    /// foreign lines and unparsable input.
    pub fn feed_line(&mut self, line: &str) -> bool {
        let line = line.trim();
        if line.is_empty() {
            return false;
        }
        let Ok(value) = serde_json::parse_value_str(line) else {
            self.skipped += 1;
            return false;
        };
        let Some(frame) = value.as_map() else {
            self.skipped += 1;
            return false;
        };
        if field(frame, "cat").as_str() != Some("stats") {
            self.skipped += 1;
            return false;
        }
        let Some(fields) = field(frame, "fields").as_map() else {
            self.skipped += 1;
            return false;
        };
        match field(frame, "name").as_str() {
            Some("window") => self.apply_window(fields),
            Some("gauges") => self.apply_gauges(fields),
            Some("query") => self.apply_query(fields),
            _ => {
                self.skipped += 1;
                return false;
            }
        }
        true
    }

    fn apply_window(&mut self, fields: &[(String, Value)]) {
        self.windows_seen += 1;
        self.win = field(fields, "win").as_u64();
        for (key, value) in fields {
            let Some(n) = value.as_u64() else { continue };
            if let Some(name) = key.strip_prefix("d_") {
                self.deltas.insert(name.to_string(), n);
            } else if let Some(name) = key.strip_prefix("t_") {
                self.totals.insert(name.to_string(), n);
            }
        }
        for name in CHARTED {
            let value = self.deltas.get(name).copied().unwrap_or(0);
            let series = self.history.entry(name).or_default();
            series.push(value);
            if series.len() > HISTORY {
                series.remove(0);
            }
        }
    }

    fn apply_gauges(&mut self, fields: &[(String, Value)]) {
        self.gauges.clear();
        for (key, value) in fields {
            if let Some(x) = value.as_f64() {
                self.gauges.insert(key.clone(), x);
            }
        }
    }

    fn apply_query(&mut self, fields: &[(String, Value)]) {
        let Some(job) = field(fields, "job_id").as_u64() else {
            return;
        };
        let row = QueryRow {
            steps: field(fields, "steps").as_u64().unwrap_or(0),
            charged: field(fields, "charged").as_u64().unwrap_or(0),
            samples: field(fields, "samples").as_u64().unwrap_or(0),
            estimate: finite(field(fields, "estimate")),
            ci_half: finite(field(fields, "ci_half")),
            ci_per_call: finite(field(fields, "ci_per_call")),
            geweke_z: finite(field(fields, "geweke_z")),
            done: field(fields, "done").as_u64() == Some(1),
        };
        self.queries.insert(job, row);
    }

    fn total(&self, key: &str) -> u64 {
        self.totals.get(key).copied().unwrap_or(0)
    }

    fn delta(&self, key: &str) -> u64 {
        self.deltas.get(key).copied().unwrap_or(0)
    }

    fn gauge(&self, key: &str) -> f64 {
        self.gauges.get(key).copied().unwrap_or(0.0)
    }

    /// Renders the dashboard as plain text (no escape codes): a header,
    /// counter rows with the latest window's delta, gauges, sparkline
    /// histories, and one line per tracked query.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = writeln!(
            out,
            "ma-top — live estimation telemetry (window {}, {} emission(s), {} foreign line(s) skipped)",
            self.win.map_or("-".to_string(), |w| w.to_string()),
            self.windows_seen,
            self.skipped,
        );
        let _ = writeln!(
            out,
            "jobs    submitted {} (+{})  ok {}  degraded {}  failed {}",
            self.total("jobs_submitted"),
            self.delta("jobs_submitted"),
            self.total("jobs_succeeded"),
            self.total("jobs_degraded"),
            self.total("jobs_failed"),
        );
        let _ = writeln!(
            out,
            "calls   charged {} (+{})  refunded {}  actual {}  samples {}",
            self.total("charged_calls"),
            self.delta("charged_calls"),
            self.total("refunded_calls"),
            self.total("actual_calls"),
            self.total("walk_samples"),
        );
        let _ = writeln!(
            out,
            "cache   local {}  shared {}  miss {}  hit rate {:.1}%",
            self.total("local_hits"),
            self.total("shared_hits"),
            self.total("cache_misses"),
            100.0 * self.gauge("cache_hit_rate"),
        );
        let quota = if self.gauge("quota_unlimited") >= 1.0 {
            "unlimited".to_string()
        } else {
            format!("{:.0} remaining", self.gauge("quota_remaining"))
        };
        let _ = writeln!(
            out,
            "quota   consumed {:.0}  reserved {:.0}  {}  inflight {:.0}",
            self.gauge("quota_consumed"),
            self.gauge("quota_reserved"),
            quota,
            self.gauge("inflight"),
        );
        let _ = writeln!(
            out,
            "flow    breaker opens {:.0}  fast-fails {:.0}  coalesce lead/wait/abort {:.0}/{:.0}/{:.0}  peak {:.0}",
            self.gauge("breaker_opens"),
            self.gauge("breaker_fast_fails"),
            self.gauge("coalesce_leads"),
            self.gauge("coalesce_waits"),
            self.gauge("coalesce_aborts"),
            self.gauge("coalesce_peak_inflight"),
        );
        if let Some(z) = self.gauges.get("geweke_z") {
            let _ = writeln!(out, "diag    geweke z {z:+.3}");
        }
        for name in CHARTED {
            if let Some(series) = self.history.get(name) {
                let _ = writeln!(out, "history {:<14} {}", name, sparkline(series));
            }
        }
        if !self.queries.is_empty() {
            let _ = writeln!(out, "queries:");
            for (job, q) in &self.queries {
                let mut line = format!(
                    "  job {job:<4} steps {:<8} charged {:<8} samples {:<6}",
                    q.steps, q.charged, q.samples
                );
                if let Some(est) = q.estimate {
                    let _ = write!(line, " est {est:.3}");
                }
                if let Some(ci) = q.ci_half {
                    let _ = write!(line, " ci ±{ci:.3}");
                }
                if let Some(per) = q.ci_per_call {
                    let _ = write!(line, " ({per:.6}/call)");
                }
                if let Some(z) = q.geweke_z {
                    let _ = write!(line, " z {z:+.2}");
                }
                if q.done {
                    line.push_str(" done");
                }
                let _ = writeln!(out, "{line}");
            }
        }
        out
    }
}

/// A finite float field, `None` for null/absent/non-numeric.
fn finite(value: &Value) -> Option<f64> {
    value.as_f64().filter(|x| x.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window_line(win: u64, d_sub: u64, t_sub: u64, d_charged: u64, t_charged: u64) -> String {
        format!(
            "{{\"tick\":1,\"seq\":1,\"kind\":\"event\",\"cat\":\"stats\",\"name\":\"window\",\
             \"span\":null,\"phase\":\"idle\",\"level\":null,\"fields\":{{\"win\":{win},\
             \"d_jobs_submitted\":{d_sub},\"t_jobs_submitted\":{t_sub},\
             \"d_jobs_succeeded\":{d_sub},\"t_jobs_succeeded\":{t_sub},\
             \"d_charged_calls\":{d_charged},\"t_charged_calls\":{t_charged}}}}}"
        )
    }

    #[test]
    fn folds_windows_and_tracks_history() {
        let mut dash = Dashboard::new();
        assert!(dash.feed_line(&window_line(0, 2, 2, 100, 100)));
        assert!(dash.feed_line(&window_line(1, 3, 5, 40, 140)));
        assert_eq!(dash.win, Some(1));
        assert_eq!(dash.totals["jobs_submitted"], 5);
        assert_eq!(dash.deltas["charged_calls"], 40);
        let text = dash.render();
        assert!(text.contains("submitted 5 (+3)"));
        assert!(text.contains("charged 140 (+40)"));
        assert!(text.contains("history jobs_submitted"));
    }

    #[test]
    fn foreign_lines_are_skipped_not_fatal() {
        let mut dash = Dashboard::new();
        assert!(!dash.feed_line("{\"id\":1,\"status\":\"ok\",\"estimate\":12.5}"));
        assert!(!dash.feed_line("not json at all"));
        assert!(!dash.feed_line(""));
        assert!(!dash.feed_line(
            "{\"tick\":9,\"seq\":2,\"kind\":\"event\",\"cat\":\"walk\",\"name\":\"step\",\
             \"span\":null,\"phase\":\"walk\",\"level\":null,\"fields\":{}}"
        ));
        assert_eq!(dash.skipped, 3, "empty lines are ignored silently");
        assert!(dash.render().contains("3 foreign line(s) skipped"));
    }

    #[test]
    fn gauges_and_queries_render() {
        let mut dash = Dashboard::new();
        assert!(dash.feed_line(
            "{\"tick\":2,\"seq\":3,\"kind\":\"event\",\"cat\":\"stats\",\"name\":\"gauges\",\
             \"span\":null,\"phase\":\"idle\",\"level\":null,\"fields\":{\
             \"quota_consumed\":120,\"quota_reserved\":30,\"quota_unlimited\":0,\
             \"quota_remaining\":850,\"inflight\":2,\"cache_hit_rate\":0.25,\
             \"breaker_opens\":1,\"geweke_z\":-0.42}}"
        ));
        assert!(dash.feed_line(
            "{\"tick\":3,\"seq\":4,\"kind\":\"event\",\"cat\":\"stats\",\"name\":\"query\",\
             \"span\":null,\"phase\":\"idle\",\"level\":null,\"fields\":{\"job_id\":7,\
             \"steps\":400,\"charged\":200,\"samples\":50,\"estimate\":1234.5,\
             \"ci_half\":98.0,\"ci_per_call\":0.49,\"done\":1}}"
        ));
        let text = dash.render();
        assert!(text.contains("consumed 120"));
        assert!(text.contains("850 remaining"));
        assert!(text.contains("hit rate 25.0%"));
        assert!(text.contains("geweke z -0.420"));
        assert!(text.contains("job 7"));
        assert!(text.contains("est 1234.500"));
        assert!(text.contains("ci ±98.000"));
        assert!(text.contains("(0.490000/call)"));
        assert!(text.contains("done"));
    }

    #[test]
    fn unlimited_quota_renders_as_such() {
        let mut dash = Dashboard::new();
        dash.feed_line(
            "{\"tick\":2,\"seq\":3,\"kind\":\"event\",\"cat\":\"stats\",\"name\":\"gauges\",\
             \"span\":null,\"phase\":\"idle\",\"level\":null,\"fields\":{\
             \"quota_unlimited\":1,\"quota_remaining\":0}}",
        );
        assert!(dash.render().contains("unlimited"));
    }
}
