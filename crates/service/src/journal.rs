//! The write-ahead job journal.
//!
//! Crash-only operation needs one durable artifact: an append-only log
//! of every job's lifecycle — admission, quota reservation, walker
//! checkpoints, settlement — from which a restarted service can rebuild
//! exactly the in-flight work it lost. [`Journal`] is that log:
//!
//! - **Record format.** Each record is `[len: u32 LE][crc32: u32 LE]
//!   [payload]`, where the payload is the JSON encoding of a
//!   [`JournalRecord`]. Length-prefixing makes the stream seekable
//!   without parsing; the CRC makes torn or bit-flipped tails
//!   detectable.
//! - **Torn-tail tolerance.** A crash mid-append leaves a partial (or
//!   corrupt) final record. [`decode_records`] stops at the first record
//!   that fails its length, checksum, or parse check and reports how
//!   many bytes it dropped; [`Journal::open`] truncates the file back to
//!   the last good boundary so the writer never appends after garbage.
//! - **Batched durability.** Appends buffer in the OS and are fsync'd in
//!   batches: every [`SYNC_BATCH`] records, and immediately for the
//!   records recovery correctness depends on ([`JournalRecord::Settle`],
//!   [`JournalRecord::Interrupted`]). Each sync is stamped with a
//!   logical-clock tick so trace timelines can order durability points
//!   against job events.
//! - **Replay.** [`replay`] folds a record stream into a
//!   [`ReplaySummary`]: which jobs settled (and what they consumed, for
//!   [`GlobalQuota::adopt`](crate::GlobalQuota::adopt)), and which were
//!   in flight — each with its latest checkpoint — for the service to
//!   requeue. Duplicate settle records are idempotent: a job settles
//!   once no matter how often the record appears, so replay can never
//!   double-charge the quota.
//!
//! This module is the only place in `crates/service` (and `crates/core`)
//! allowed to touch `std::fs` for writing — the `fs-write` lint rule
//! keeps every other durable side effect out of the estimation stack.

use crate::clock::TelemetryClock;
use crate::request::JobSpec;
use microblog_analyzer::WalkerCheckpoint;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One journaled lifecycle event.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum JournalRecord {
    /// A job passed admission control.
    Admit {
        /// The service-assigned job id.
        job: u64,
        /// The full job specification, enough to re-run it.
        spec: JobSpec,
    },
    /// The job's budget was reserved from the global quota.
    Reserve {
        /// The job id.
        job: u64,
        /// Reserved call count (the job's budget).
        amount: u64,
    },
    /// A walker checkpoint was taken.
    Checkpoint {
        /// The job id.
        job: u64,
        /// The resumable walker state, boxed so this variant does not
        /// dwarf the others (a checkpoint is a few kilobytes).
        checkpoint: Box<WalkerCheckpoint>,
    },
    /// The job finished and its reservation was settled.
    Settle {
        /// The job id.
        job: u64,
        /// Calls actually charged (the rest of the reservation was
        /// refunded).
        used: u64,
    },
    /// The job was journaled as interrupted (shutdown drain deadline or
    /// a torn-journal crash); it is still unsettled and will be
    /// recovered on restart.
    Interrupted {
        /// The job id.
        job: u64,
    },
}

impl JournalRecord {
    /// The job id the record belongs to.
    pub fn job(&self) -> u64 {
        match self {
            JournalRecord::Admit { job, .. }
            | JournalRecord::Reserve { job, .. }
            | JournalRecord::Checkpoint { job, .. }
            | JournalRecord::Settle { job, .. }
            | JournalRecord::Interrupted { job } => *job,
        }
    }

    /// Records recovery correctness depends on; these force an fsync.
    fn is_critical(&self) -> bool {
        matches!(
            self,
            JournalRecord::Settle { .. } | JournalRecord::Interrupted { .. }
        )
    }
}

/// Appends per fsync batch (critical records sync immediately).
pub const SYNC_BATCH: u64 = 32;

/// Upper bound on a single record's payload; anything larger is treated
/// as corruption (a real checkpoint is a few kilobytes).
const MAX_RECORD: u32 = 64 << 20;

/// The journal file name inside the journal directory.
pub const JOURNAL_FILE: &str = "journal.wal";

const CRC_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                0xEDB8_8320 ^ (crc >> 1)
            } else {
                crc >> 1
            };
            bit += 1;
        }
        // ma-lint: allow(panic-safety) reason="const loop bounds i < 256 over a [u32; 256] table"
        table[i] = crc;
        i += 1;
    }
    table
}

/// IEEE CRC-32 of `bytes` (the checksum in every record header).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        // ma-lint: allow(panic-safety) reason="index masked to 0..=255; the table has 256 entries"
        crc = CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// What decoding a journal byte stream produced.
#[derive(Debug)]
pub struct DecodedJournal {
    /// Every record up to the first corrupt or partial one.
    pub records: Vec<JournalRecord>,
    /// Byte length of the valid prefix (the repair truncation point).
    pub valid_len: u64,
    /// Bytes after the valid prefix that were dropped.
    pub dropped_bytes: u64,
}

/// Decodes a journal byte stream, stopping — never panicking — at the
/// first torn, truncated, oversized, checksum-mismatched, or unparseable
/// record. Everything after the first bad record is dropped: a torn
/// write makes the rest of the stream untrustworthy.
pub fn decode_records(bytes: &[u8]) -> DecodedJournal {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while let Some(len) = le_u32_at(bytes, offset) {
        let Some(crc) = le_u32_at(bytes, offset + 4) else {
            break;
        };
        if len > MAX_RECORD {
            break;
        }
        let start = offset + 8;
        let Some(payload) = bytes.get(start..start + len as usize) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        let Ok(record) = serde_json::from_str::<JournalRecord>(text) else {
            break;
        };
        records.push(record);
        offset = start + len as usize;
    }
    DecodedJournal {
        records,
        valid_len: offset as u64,
        dropped_bytes: (bytes.len() - offset) as u64,
    }
}

/// Little-endian `u32` at byte offset `at`, or `None` past the end —
/// decoding must stay panic-free on arbitrary bytes.
fn le_u32_at(bytes: &[u8], at: usize) -> Option<u32> {
    let field = bytes.get(at..at.checked_add(4)?)?;
    let mut word = 0u32;
    for (shift, &b) in field.iter().enumerate() {
        word |= (b as u32) << (8 * shift as u32);
    }
    Some(word)
}

/// A job the journal shows as admitted but never settled; the service
/// requeues it at startup.
#[derive(Clone, Debug)]
pub struct RecoveredJob {
    /// The job id (reused, so its later records extend the same trail).
    pub job: u64,
    /// The job specification to re-run.
    pub spec: JobSpec,
    /// The latest checkpoint, when the walker got far enough to emit
    /// one; `None` restarts the job from scratch.
    pub checkpoint: Option<Box<WalkerCheckpoint>>,
    /// Whether the job was journaled as interrupted at shutdown.
    pub interrupted: bool,
}

/// The outcome of replaying a journal.
#[derive(Debug, Default)]
pub struct ReplaySummary {
    /// Valid records replayed.
    pub records: u64,
    /// Bytes dropped off a torn or corrupt tail.
    pub dropped_bytes: u64,
    /// Jobs the journal shows as settled.
    pub settled_jobs: u64,
    /// Calls those settled jobs consumed (adopted into the quota).
    pub consumed: u64,
    /// Unsettled jobs to requeue, in admission order.
    pub recovered: Vec<RecoveredJob>,
    /// First job id the restarted service may assign without colliding
    /// with a journaled one.
    pub next_job_id: u64,
}

/// Folds a decoded record stream into the state a restarted service
/// needs. Settle records are idempotent per job — replay counts a job's
/// consumption exactly once however often its settle appears, so a
/// journal can never double-charge the quota.
pub fn replay(decoded: &DecodedJournal) -> ReplaySummary {
    #[derive(Default)]
    struct JobFold {
        spec: Option<JobSpec>,
        checkpoint: Option<Box<WalkerCheckpoint>>,
        settled: Option<u64>,
        interrupted: bool,
        order: u64,
    }
    let mut jobs: std::collections::BTreeMap<u64, JobFold> = std::collections::BTreeMap::new();
    let mut admitted = 0u64;
    let mut next_job_id = 0u64;
    for record in &decoded.records {
        next_job_id = next_job_id.max(record.job() + 1);
        let fold = jobs.entry(record.job()).or_default();
        match record {
            JournalRecord::Admit { spec, .. } => {
                if fold.spec.is_none() {
                    fold.spec = Some(spec.clone());
                    fold.order = admitted;
                    admitted += 1;
                }
            }
            JournalRecord::Reserve { .. } => {}
            JournalRecord::Checkpoint { checkpoint, .. } => {
                fold.checkpoint = Some(checkpoint.clone());
            }
            JournalRecord::Settle { used, .. } => {
                // First settle wins; duplicates are replay noise.
                fold.settled.get_or_insert(*used);
            }
            JournalRecord::Interrupted { .. } => fold.interrupted = true,
        }
    }
    let mut summary = ReplaySummary {
        records: decoded.records.len() as u64,
        dropped_bytes: decoded.dropped_bytes,
        next_job_id,
        ..ReplaySummary::default()
    };
    let mut recovered: Vec<(u64, RecoveredJob)> = Vec::new();
    for (job, fold) in jobs {
        if let Some(used) = fold.settled {
            summary.settled_jobs += 1;
            summary.consumed += used;
        } else if let Some(spec) = fold.spec {
            recovered.push((
                fold.order,
                RecoveredJob {
                    job,
                    spec,
                    checkpoint: fold.checkpoint,
                    interrupted: fold.interrupted,
                },
            ));
        }
    }
    recovered.sort_by_key(|(order, _)| *order);
    summary.recovered = recovered.into_iter().map(|(_, job)| job).collect();
    summary
}

struct Writer {
    file: File,
    len: u64,
    pending: u64,
    /// Set by crash injection tearing the tail: the stream past `len` is
    /// untrustworthy, so further appends are discarded instead of being
    /// written after garbage.
    torn: bool,
}

/// The append side of the write-ahead journal. Thread-safe: workers
/// append concurrently under one mutex; the file is the only shared
/// state.
pub struct Journal {
    path: PathBuf,
    writer: Mutex<Writer>,
    clock: Arc<TelemetryClock>,
    appended: AtomicU64,
    syncs: AtomicU64,
    last_sync_tick: AtomicU64,
    dropped_appends: AtomicU64,
}

impl Journal {
    /// Opens (creating if needed) the journal in `dir`, repairs any torn
    /// tail, and returns the replay summary of what the log contained.
    pub fn open(dir: &Path, clock: Arc<TelemetryClock>) -> io::Result<(Journal, ReplaySummary)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let decoded = decode_records(&bytes);
        if decoded.dropped_bytes > 0 {
            // Repair: chop the torn tail so appends restart at the last
            // good record boundary.
            file.set_len(decoded.valid_len)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(decoded.valid_len))?;
        let summary = replay(&decoded);
        let journal = Journal {
            path,
            writer: Mutex::new(Writer {
                file,
                len: decoded.valid_len,
                pending: 0,
                torn: false,
            }),
            clock,
            appended: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            last_sync_tick: AtomicU64::new(0),
            dropped_appends: AtomicU64::new(0),
        };
        Ok((journal, summary))
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record, fsyncing per the batching policy (immediately
    /// for critical records, every [`SYNC_BATCH`] otherwise). After a
    /// torn tail the append is counted as dropped instead of written —
    /// the stream past the tear is already untrustworthy.
    pub fn append(&self, record: &JournalRecord) -> io::Result<()> {
        let payload = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let payload = payload.as_bytes();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        // Crash injection poisons this mutex when it kills a worker
        // mid-append path; the inner state is still consistent (writes
        // are whole-frame), so recover the guard rather than propagate.
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        if writer.torn {
            self.dropped_appends.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        writer.file.write_all(&frame)?;
        writer.len += frame.len() as u64;
        writer.pending += 1;
        self.appended.fetch_add(1, Ordering::Relaxed);
        if record.is_critical() || writer.pending >= SYNC_BATCH {
            self.sync_locked(&mut writer)?;
        }
        Ok(())
    }

    /// Forces an fsync of everything appended so far.
    pub fn sync(&self) -> io::Result<()> {
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        if writer.pending > 0 {
            self.sync_locked(&mut writer)?;
        }
        Ok(())
    }

    fn sync_locked(&self, writer: &mut Writer) -> io::Result<()> {
        writer.file.sync_data()?;
        writer.pending = 0;
        self.syncs.fetch_add(1, Ordering::Relaxed);
        // Stamp the durability point on the logical clock so traces can
        // order it against job events.
        self.last_sync_tick
            .store(self.clock.now().as_micros() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Crash injection: tears `drop` bytes off the journal tail,
    /// simulating a crash mid-append. Subsequent appends are discarded
    /// (and counted) until the journal is reopened and repaired.
    pub fn truncate_tail(&self, drop: u64) -> io::Result<()> {
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        writer.len = writer.len.saturating_sub(drop);
        writer.file.set_len(writer.len)?;
        writer.file.sync_data()?;
        writer.torn = true;
        Ok(())
    }

    /// Records appended (excluding drops) since this handle opened.
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Fsync batches flushed.
    pub fn syncs(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }

    /// Logical-clock tick (µs) of the most recent fsync.
    pub fn last_sync_tick(&self) -> u64 {
        self.last_sync_tick.load(Ordering::Relaxed)
    }

    /// Appends discarded after a torn tail.
    pub fn dropped_appends(&self) -> u64 {
        self.dropped_appends.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("appended", &self.appended())
            .field("syncs", &self.syncs())
            .finish()
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        let _ = self.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{TelemetryClock, TelemetryMode};
    use microblog_analyzer::query::parse::parse_query;
    use microblog_analyzer::Algorithm;
    use microblog_platform::scenario::{twitter_2013, Scale};

    fn clock() -> Arc<TelemetryClock> {
        Arc::new(TelemetryClock::new(TelemetryMode::Logical))
    }

    fn spec(budget: u64, seed: u64) -> JobSpec {
        let scenario = twitter_2013(Scale::Tiny, 2014);
        let query = parse_query(
            "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'privacy'",
            scenario.platform.keywords(),
        )
        .unwrap();
        JobSpec::new(query, Algorithm::MaTarw { interval: None }, budget, seed)
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ma-journal-{tag}-{}",
            std::process::id() as u64 ^ (tag.as_ptr() as u64)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn records_round_trip_through_the_file() {
        let dir = tempdir("roundtrip");
        let records = vec![
            JournalRecord::Admit {
                job: 0,
                spec: spec(1_000, 7),
            },
            JournalRecord::Reserve {
                job: 0,
                amount: 1_000,
            },
            JournalRecord::Settle { job: 0, used: 412 },
        ];
        {
            let (journal, summary) = Journal::open(&dir, clock()).unwrap();
            assert_eq!(summary.records, 0);
            for r in &records {
                journal.append(r).unwrap();
            }
        }
        let (_, summary) = Journal::open(&dir, clock()).unwrap();
        assert_eq!(summary.records, 3);
        assert_eq!(summary.settled_jobs, 1);
        assert_eq!(summary.consumed, 412);
        assert!(summary.recovered.is_empty());
        assert_eq!(summary.next_job_id, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsettled_jobs_are_recovered_in_admission_order() {
        let decoded = DecodedJournal {
            records: vec![
                JournalRecord::Admit {
                    job: 3,
                    spec: spec(500, 1),
                },
                JournalRecord::Admit {
                    job: 1,
                    spec: spec(700, 2),
                },
                JournalRecord::Interrupted { job: 1 },
                JournalRecord::Admit {
                    job: 2,
                    spec: spec(900, 3),
                },
                JournalRecord::Settle { job: 2, used: 900 },
            ],
            valid_len: 0,
            dropped_bytes: 0,
        };
        let summary = replay(&decoded);
        assert_eq!(summary.settled_jobs, 1);
        assert_eq!(summary.consumed, 900);
        assert_eq!(summary.next_job_id, 4);
        let ids: Vec<u64> = summary.recovered.iter().map(|r| r.job).collect();
        assert_eq!(ids, vec![3, 1], "admission order, not id order");
        assert!(summary.recovered[1].interrupted);
    }

    #[test]
    fn duplicate_settles_count_once() {
        let decoded = DecodedJournal {
            records: vec![
                JournalRecord::Admit {
                    job: 5,
                    spec: spec(400, 9),
                },
                JournalRecord::Settle { job: 5, used: 100 },
                JournalRecord::Settle { job: 5, used: 100 },
                JournalRecord::Settle { job: 5, used: 999 },
            ],
            valid_len: 0,
            dropped_bytes: 0,
        };
        let summary = replay(&decoded);
        assert_eq!(summary.settled_jobs, 1);
        assert_eq!(summary.consumed, 100, "first settle wins, exactly once");
        assert!(summary.recovered.is_empty());
    }

    #[test]
    fn torn_tail_is_repaired_on_reopen() {
        let dir = tempdir("torn");
        let good_len;
        {
            let (journal, _) = Journal::open(&dir, clock()).unwrap();
            journal
                .append(&JournalRecord::Admit {
                    job: 0,
                    spec: spec(1_000, 7),
                })
                .unwrap();
            journal.sync().unwrap();
            good_len = std::fs::metadata(journal.path()).unwrap().len();
            journal
                .append(&JournalRecord::Reserve {
                    job: 0,
                    amount: 1_000,
                })
                .unwrap();
            // Crash mid-append: lose the tail of the reserve record.
            journal.truncate_tail(5).unwrap();
            // Post-tear appends are discarded, not written after garbage.
            journal
                .append(&JournalRecord::Settle { job: 0, used: 1 })
                .unwrap();
            assert_eq!(journal.dropped_appends(), 1);
        }
        let (journal, summary) = Journal::open(&dir, clock()).unwrap();
        assert_eq!(summary.records, 1, "only the admit survived");
        assert!(summary.dropped_bytes > 0);
        assert_eq!(summary.recovered.len(), 1, "job is still in flight");
        assert_eq!(
            std::fs::metadata(journal.path()).unwrap().len(),
            good_len,
            "reopen truncates back to the last good boundary"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flips_stop_decoding_without_panic() {
        let mut bytes = Vec::new();
        for (i, record) in [
            JournalRecord::Admit {
                job: 0,
                spec: spec(100, 1),
            },
            JournalRecord::Settle { job: 0, used: 50 },
        ]
        .iter()
        .enumerate()
        {
            let payload = serde_json::to_string(record).unwrap();
            let payload = payload.as_bytes();
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&crc32(payload).to_le_bytes());
            bytes.extend_from_slice(payload);
            if i == 0 {
                // Flip a bit in the middle of the first record's payload.
                let at = bytes.len() - payload.len() / 2;
                bytes[at] ^= 0x10;
            }
        }
        let decoded = decode_records(&bytes);
        assert_eq!(decoded.records.len(), 0, "corrupt first record drops all");
        assert_eq!(decoded.valid_len, 0);
        assert_eq!(decoded.dropped_bytes, bytes.len() as u64);
        let summary = replay(&decoded);
        assert_eq!(summary.settled_jobs, 0);
    }

    #[test]
    fn critical_records_sync_immediately() {
        let dir = tempdir("sync");
        let (journal, _) = Journal::open(&dir, clock()).unwrap();
        journal
            .append(&JournalRecord::Reserve { job: 0, amount: 1 })
            .unwrap();
        assert_eq!(journal.syncs(), 0, "plain records batch");
        journal
            .append(&JournalRecord::Settle { job: 0, used: 1 })
            .unwrap();
        assert_eq!(journal.syncs(), 1, "settle forces the batch out");
        assert!(journal.last_sync_tick() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32/ISO-HDLC check: crc32(b"123456789").
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
